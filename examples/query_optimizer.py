"""Optimizer scenario: better selectivity estimates pick better join orders.

Run with::

    python examples/query_optimizer.py

A three-table star schema (fact, customers, products) is registered in the
catalog.  The same star-join query — each table carrying a local range
predicate — is optimized three times, with the catalog's statistics provided
by (a) exact selectivities, (b) the adaptive density estimator, and (c) the
textbook uniformity/independence assumptions.  The script prints the chosen
join order and the *true* cost of executing it, showing how much plan quality
is lost to bad estimates.
"""

from __future__ import annotations

from repro import (
    AdaptiveKDEEstimator,
    Catalog,
    IndependenceEstimator,
    JoinSpec,
    Optimizer,
    RangeQuery,
    correlated_table,
    gaussian_mixture_table,
    plan_regret,
    render_table,
    zipf_table,
)


def build_tables():
    fact = gaussian_mixture_table(
        80_000, dimensions=2, components=5, separation=4.0, seed=1, name="sales",
        column_names=["amount", "quantity"],
    )
    customers = zipf_table(
        10_000, dimensions=1, theta=1.1, seed=2, name="customers", column_names=["age"]
    )
    products = correlated_table(
        5_000, dimensions=2, correlation=0.7, seed=3, name="products",
        column_names=["price", "weight"],
    )
    return fact, customers, products


def main() -> None:
    fact, customers, products = build_tables()
    spec = JoinSpec(
        tables=("sales", "customers", "products"),
        filters={
            "sales": RangeQuery({"amount": (0.0, 3.0)}),
            "customers": RangeQuery({"age": (0.0, 80.0)}),
            "products": RangeQuery({"price": (-0.5, 0.5)}),
        },
        join_selectivities={
            frozenset(("sales", "customers")): 1.0 / customers.row_count,
            frozenset(("sales", "products")): 1.0 / products.row_count,
            frozenset(("customers", "products")): 1.0,
        },
    )

    configurations = {
        "exact selectivities": None,
        "adaptive density estimator": lambda: AdaptiveKDEEstimator(
            sample_size=512, bandwidth_rule="lscv"
        ),
        "uniformity + independence": lambda: IndependenceEstimator(model="uniform"),
    }

    rows = []
    for label, factory in configurations.items():
        catalog = Catalog()
        for table in (fact, customers, products):
            catalog.add_table(table)
            if factory is not None:
                catalog.attach_estimator(table.name, factory())
        optimizer = Optimizer(catalog)
        chosen = optimizer.best_plan(spec, use_estimates=True)
        regret = plan_regret(optimizer, spec)
        rows.append([label, " ⋈ ".join(chosen.order), chosen.true_cost, regret])

    print(
        render_table(
            ["statistics", "chosen join order", "true plan cost", "regret vs optimal"],
            rows,
            title="Join-order quality under different selectivity estimators",
            precision=3,
        )
    )


if __name__ == "__main__":
    main()
