"""Streaming scenario: keep selectivity statistics fresh under concept drift.

Run with::

    python examples/streaming_drift.py

A fact table receives a continuous stream of inserts whose distribution
shifts abruptly halfway through (think: a new product family starts selling).
Three synopses are maintained online:

* a decayed streaming ADE (the adaptive estimator of the paper),
* a landmark streaming ADE (no forgetting),
* a plain reservoir sample.

A static equi-depth histogram built from the pre-drift data plays the role of
the statistics a DBMS would have collected at the last ANALYZE.  After every
few batches the script reports each synopsis's error against the *current*
distribution (the most recent window of tuples).
"""

from __future__ import annotations

import numpy as np

from repro import (
    EquiDepthHistogram,
    ReservoirSamplingEstimator,
    StreamingADE,
    Table,
    UniformWorkload,
    evaluate_estimator,
    render_series,
    sudden_drift_stream,
)


def main() -> None:
    batches = 40
    batch_size = 500
    reference_window = 3000
    stream = sudden_drift_stream(
        dimensions=1, batch_size=batch_size, batches=batches, drift_at=(0.5,), shift=10.0, seed=3
    )
    columns = stream.column_names

    decayed = StreamingADE(max_kernels=256, decay=0.5 ** (1.0 / reference_window))
    landmark = StreamingADE(max_kernels=256, decay=1.0)
    reservoir = ReservoirSamplingEstimator(sample_size=256, decay=True)
    for estimator in (decayed, landmark, reservoir):
        estimator.start(columns)

    static_histogram: EquiDepthHistogram | None = None
    window: list[np.ndarray] = []
    x_values: list[int] = []
    series: dict[str, list[float]] = {}

    for index, batch in enumerate(stream):
        for estimator in (decayed, landmark, reservoir):
            estimator.insert(batch)
        window.append(batch)
        recent = np.vstack(window)[-reference_window:]
        if static_histogram is None and (index + 1) * batch_size >= reference_window:
            # "ANALYZE" ran once, before the drift.
            static_histogram = EquiDepthHistogram(buckets=64)
            static_histogram.fit(Table.from_array("snapshot", recent, columns))
        if static_histogram is None or index % 5 != 0:
            continue

        reference = Table.from_array("current", recent, columns)
        workload = UniformWorkload(reference, volume_fraction=0.1, seed=100 + index).generate(60)
        x_values.append(index)
        for name, estimator in (
            ("ade_decayed", decayed),
            ("ade_landmark", landmark),
            ("reservoir", reservoir),
            ("static_histogram", static_histogram),
        ):
            error = evaluate_estimator(reference, estimator, workload).mean_relative_error()
            series.setdefault(name, []).append(error)

    print(
        render_series(
            "batch",
            x_values,
            series,
            title=f"Mean relative error vs. the last {reference_window} tuples "
            f"(drift at batch {batches // 2})",
        )
    )
    print()
    print(
        "The decayed streaming ADE recovers shortly after the drift while the "
        "static histogram (and, more slowly, the landmark model) keep answering "
        "from the stale distribution."
    )


if __name__ == "__main__":
    main()
