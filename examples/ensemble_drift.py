"""Drift-adaptive ensemble: one estimator that follows whichever expert wins.

Run with::

    python examples/ensemble_drift.py

A fact table receives a stream whose distribution both rotates continuously
and jumps suddenly twice — the mixed regime where no single synopsis wins:
a fast-decaying model tracks the rotation and recovers quickly after a jump
but is noisy in calm stretches, a slow-decaying model wins the calm phases
but lags after a jump, and a reservoir sample is unbiased but noisy.

An :class:`~repro.EnsembleEstimator` maintains all three as a weighted pool.
After each evaluation the true selectivities are fed back via ``observe``:
AddExp decays the weight of whoever erred (``w *= beta ** loss``), a small
fixed-share term keeps out-of-favour experts warm, and sustained ensemble
error spawns a fresh expert warm-started from the recent-row buffer.  The
script prints the per-expert and ensemble errors over time plus the final
weights, so you can watch the pool shift mass as drift phases change.
"""

from __future__ import annotations

import numpy as np

from repro import (
    EnsembleEstimator,
    Table,
    UniformWorkload,
    evaluate_estimator,
    render_series,
    rotating_drift_stream,
)
from repro.core.estimator import estimator_from_config
from repro.ensemble.policy import AddExpPolicy


def main() -> None:
    batches = 80
    batch_size = 600
    reference_window = 4000
    stream = rotating_drift_stream(
        dimensions=1,
        batch_size=batch_size,
        batches=batches,
        radius=1.0,
        revolutions=1.0,
        drift_at=(0.33, 0.66),
        shift=6.0,
        seed=11,
    )
    columns = stream.column_names

    expert_specs = [
        {"name": "streaming_ade", "max_kernels": 256, "decay": 0.5 ** (1.0 / 400), "seed": 11},
        {"name": "streaming_ade", "max_kernels": 256, "decay": 0.5 ** (1.0 / 8000), "seed": 12},
        {"name": "reservoir_sampling", "sample_size": 256, "decay": True, "seed": 13},
        {"name": "reservoir_sampling", "sample_size": 256, "decay": False, "seed": 14},
    ]
    labels = ["ade_fast", "ade_slow", "res_decayed", "res_uniform"]
    standalone = [estimator_from_config(dict(spec)) for spec in expert_specs]
    ensemble = EnsembleEstimator(
        experts=[dict(spec) for spec in expert_specs],
        policy=AddExpPolicy(share=0.02),
        beta=0.1,
        spawn_threshold=0.25,
        max_experts=6,
        seed=11,
    )
    for estimator in (*standalone, ensemble):
        estimator.start(columns)

    window: list[np.ndarray] = []
    x_values: list[int] = []
    series: dict[str, list[float]] = {}
    all_errors: dict[str, list[float]] = {}

    for index, batch in enumerate(stream):
        for estimator in (*standalone, ensemble):
            estimator.insert(batch)
        window.append(batch)
        recent = np.vstack(window)[-reference_window:]
        if (index + 1) * batch_size < reference_window:
            continue

        # Score and feed back every batch (the weights need the cadence);
        # the printed table samples every fourth evaluation point.
        reference = Table.from_array("current", recent, columns)
        workload = UniformWorkload(
            reference, volume_fraction=0.1, seed=100 + index
        ).generate(60)
        errors = {
            name: evaluate_estimator(reference, estimator, workload).mean_relative_error()
            for name, estimator in (*zip(labels, standalone), ("ensemble", ensemble))
        }
        for name, error in errors.items():
            all_errors.setdefault(name, []).append(error)
        if index % 4 == 0:
            x_values.append(index)
            for name, error in errors.items():
                series.setdefault(name, []).append(error)
        # Feedback after scoring: the ensemble learns from this workload only
        # for future evaluation points.
        ensemble.observe(workload, reference.true_selectivities(workload))

    print(
        render_series(
            "batch",
            x_values,
            series,
            title=f"Mean relative error vs. the last {reference_window} tuples "
            f"(rotation + jumps at batches {int(0.33 * batches)} and {int(0.66 * batches)})",
        )
    )
    print()
    means = {name: float(np.mean(values)) for name, values in all_errors.items()}
    best_expert = min((n for n in means if n != "ensemble"), key=means.get)
    print(f"overall mean relative error: {means}")
    print(f"best single expert: {best_expert} ({means[best_expert]:.3f})")
    print(f"ensemble:           {means['ensemble']:.3f}")
    print(f"spawned experts:    {len(ensemble.spawn_history)}")
    print("final pool:")
    for entry in ensemble.expert_summary():
        print(
            f"  {entry['expert']:<18} weight={entry['weight']:.3f} "
            f"born=round {entry['born']}"
        )


if __name__ == "__main__":
    main()
