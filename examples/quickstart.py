"""Quickstart: compile a workload once, estimate selectivities in bulk.

Run with::

    python examples/quickstart.py

The script builds a small synthetic relation, fits the adaptive KDE and the
streaming ADE synopses plus two classical baselines, then *compiles* a
workload of range queries into a :class:`~repro.workload.queries.CompiledQueries`
plan and answers it through the batch-first API: one ``estimate_batch`` call
per estimator, one vectorized ``true_selectivities`` scan for ground truth.
A final section shows the ingestion half of the same story: the streaming
synopsis swallows an insert stream through the chunked bulk path at a rate a
per-tuple loop cannot approach — and the model it builds is then *persisted*
to a versioned on-disk store and served back through an
:class:`~repro.serve.EstimatorServer`, so the synopsis survives the process
that built it (see ``examples/persistence_serving.py`` for the full
save → restart → restore → serve walkthrough).  The closing section shards
the relation: a :class:`~repro.shard.sharded.ShardedEstimator` fits one
synopsis per hash partition in parallel, answers the same compiled plan
(bitwise-equal to the monolithic histogram — the histogram family merges
shard states exactly), and refreshes a single shard without touching the
others.  The last section serves several synopses as *one* estimator: a
drift-adaptive :class:`~repro.ensemble.EnsembleEstimator` combines a
weighted pool of experts and reweights them from query feedback
(``examples/ensemble_drift.py`` is the full drifting-stream walkthrough).
The next section moves beyond pure numeric data: a schema-declared table
with dictionary-encoded categorical and string columns answers typed
predicates (IN sets, string prefixes) through the very same numeric
synopses, by lowering each typed query onto disjoint code-range boxes.
The closing section turns telemetry on: an instrumented
:class:`~repro.serve.EstimatorServer` records per-request latency
histograms and cache counters into a
:class:`~repro.obs.metrics.MetricsRegistry` (off by default — the
uninstrumented hot path pays a single branch), and the snapshot is exported
to JSON through the pluggable exporter registry
(``examples/telemetry_traffic.py`` is the full multi-tenant traffic
walkthrough).
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro import (
    AdaptiveKDEEstimator,
    Catalog,
    EnsembleEstimator,
    EquiDepthHistogram,
    EstimatorServer,
    Interval,
    MetricsRegistry,
    ModelStore,
    SamplingEstimator,
    SetMembership,
    ShardedEstimator,
    StreamingADE,
    StringPrefix,
    TypedQuery,
    TypedWorkload,
    UniformWorkload,
    compile_queries,
    evaluate_estimator,
    exporter_for_path,
    gaussian_mixture_table,
    mixed_type_table,
    render_table,
    sudden_drift_stream,
)


def main() -> None:
    # 1. A relation: 50k rows, two correlated, multimodal numeric attributes.
    table = gaussian_mixture_table(
        rows=50_000, dimensions=2, components=4, separation=4.0, seed=7, name="orders"
    )
    print(f"relation {table.name!r}: {table.row_count} rows, columns {list(table.column_names)}")

    # 2. A workload of 2000 conjunctive range queries, compiled once into a
    #    (lows, highs) bound-matrix plan aligned with the table's columns.
    workload = UniformWorkload(table, volume_fraction=0.15, seed=11).generate(2000)
    plan = compile_queries(workload, table.column_names)
    truths = table.true_selectivities(plan)
    print(f"compiled plan: {len(plan)} queries over {list(plan.columns)}")
    print(f"  exact selectivity of the first query: {truths[0]:.4f}")

    # 3. Fit the synopses (each estimator sees the same relation) and answer
    #    the whole compiled workload with a single estimate_batch call each.
    estimators = {
        "adaptive KDE (ADE)": AdaptiveKDEEstimator(sample_size=512, bandwidth_rule="lscv"),
        "streaming ADE": StreamingADE(max_kernels=256),
        "equi-depth histogram": EquiDepthHistogram(buckets=64),
        "random sample": SamplingEstimator(sample_size=512),
    }
    rows = []
    for name, estimator in estimators.items():
        estimator.fit(table)
        estimates = estimator.estimate_batch(plan)
        print(f"  {name}: estimate for the first query = {estimates[0]:.4f}")
        result = evaluate_estimator(table, estimator, plan, name=name)
        summaries = result.summaries()
        rows.append(
            [
                name,
                summaries["relative"].mean,
                summaries["q"].mean,
                result.queries_per_second,
                result.memory_bytes,
            ]
        )

    # 4. Accuracy and throughput summary over the whole workload.
    #    Kernel-family estimators answer batches through the support-culling
    #    query fast path by default: kernels whose support cannot overlap a
    #    query box are skipped via a per-dimension sorted index, matching the
    #    dense path to <=1e-12.  Pass fastpath=False to any of them (e.g.
    #    ``StreamingADE(max_kernels=256, fastpath=False)``) — or wrap calls
    #    in ``repro.fastpath_disabled()`` — to pin the dense reference path
    #    when debugging estimate-level differences.
    print()
    print(
        render_table(
            ["estimator", "rel_err_mean", "q_err_mean", "queries_per_sec", "bytes"],
            rows,
            title="Workload accuracy and throughput (2000 compiled range queries)",
        )
    )

    # 5. Streaming ingestion: the same synopsis maintained online over an
    #    insert stream.  insert() accepts batches of any size and folds them
    #    in chunked, vectorized maintenance steps — the model it builds does
    #    not depend on how the stream was sliced into insert() calls, and a
    #    stale mode is forgotten via exponential decay.  Any buffered tail is
    #    applied automatically before the first estimate (or by flush()).
    stream = sudden_drift_stream(
        dimensions=2, batch_size=1000, batches=50, drift_at=(0.5,), shift=8.0, seed=3
    )
    synopsis = StreamingADE(max_kernels=256, decay=1 - 1e-4)
    synopsis.start(stream.column_names)
    started = time.perf_counter()
    for batch in stream:
        synopsis.insert(batch)
    synopsis.flush()
    elapsed = time.perf_counter() - started
    print()
    print(
        f"streamed {stream.total_rows} drifting tuples through the synopsis in "
        f"{elapsed:.2f}s ({stream.total_rows / elapsed:,.0f} rows/s), "
        f"{synopsis.kernel_count} kernels, {synopsis.memory_bytes()} bytes"
    )

    # 6. Persistence & serving: publish the streamed synopsis into a
    #    versioned model store (atomic write-then-rename, LATEST pointer),
    #    load it back — the round-trip reproduces estimates bitwise — and
    #    serve it through a cached, swap-capable front end.
    with tempfile.TemporaryDirectory() as root:
        store = ModelStore(Path(root) / "models")
        version = store.publish("orders.streaming_ade", synopsis)
        restored = store.load("orders.streaming_ade")
        server = EstimatorServer(restored, cache_size=64)
        first = server.estimate_batch(plan)   # cold: computed by the model
        server.estimate_batch(plan)           # warm: answered from the cache
        info = server.cache_info()
        print(
            f"published v{version.version} to the model store, restored and served "
            f"{len(plan)} queries (cache hit rate {info.hit_rate:.0%}, "
            f"generation {info.generation}); first estimate {first[0]:.4f}"
        )

    # 7. Sharding: partition the relation and the synopsis.  The sharded
    #    front end is itself an estimator — fit routes one base-synopsis
    #    clone per partition (fitted in parallel), estimate_batch reduces
    #    per-shard answers (bitwise-equal to the monolithic histogram here,
    #    because the histogram family merges its shard states exactly), and
    #    one shard can be refreshed without rebuilding the rest.
    monolithic = EquiDepthHistogram(buckets=64).fit(table)
    sharded = ShardedEstimator(
        EquiDepthHistogram(buckets=64), shards=4, partitioner="hash"
    ).fit(table)
    agree = bool((sharded.estimate_batch(plan) == monolithic.estimate_batch(plan)).all())
    print()
    print(
        f"sharded equi-depth synopsis: {sharded.shard_count} shards of "
        f"{sharded.shard_row_counts().tolist()} rows, estimates bitwise-equal "
        f"to the monolithic fit: {agree}"
    )
    table.append_matrix(table.as_matrix()[:1_000])  # new rows arrive ...
    sharded.refit_shard(2, table)                   # ... refresh one shard only
    print(f"refreshed shard 2 only; synopsis now models {sharded.row_count} rows")

    # 8. The ensemble: several registry synopses served as one estimator.
    #    estimate_batch is the weight-normalised convex combination of every
    #    expert's answer; observe() feeds true selectivities back and the
    #    AddExp policy shifts weight onto whichever expert the workload (and,
    #    on a stream, the current drift phase) favours.  See
    #    examples/ensemble_drift.py for the spawn/prune lifecycle in action.
    ensemble = EnsembleEstimator(
        experts=[
            {"name": "kde", "sample_size": 512, "seed": 1},
            {"name": "equidepth", "buckets": 64},
            {"name": "reservoir_sampling", "sample_size": 512, "seed": 2},
        ],
        seed=0,
    ).fit(table)
    print()
    before = evaluate_estimator(table, ensemble, plan).mean_relative_error()
    print(f"ensemble weights before feedback: {ensemble.weights.round(3).tolist()}")
    for _ in range(20):
        ensemble.observe(plan, truths)
    after = evaluate_estimator(table, ensemble, plan).mean_relative_error()
    print(f"ensemble weights after feedback:  {ensemble.weights.round(3).tolist()}")
    print(
        f"ensemble rel_err_mean: {before:.3f} (uniform weights) -> {after:.3f} "
        "(weight shifted onto the most accurate expert)"
    )

    # 9. Typed predicates: categorical IN sets and string prefixes over a
    #    schema-declared table.  Dictionaries are sorted, so values encode to
    #    their rank and a prefix is one contiguous code interval; lowering
    #    turns each typed query into disjoint numeric boxes the (numeric-only)
    #    estimator core answers unchanged, then folds the per-box estimates
    #    back per query.  The same numeric synopsis, no estimator changes.
    shop = mixed_type_table(rows=30_000, seed=21, name="sales")
    kinds = {c: shop.schema.kind(c).value for c in shop.schema.encoded_columns}
    print()
    print(f"relation {shop.name!r}: {shop.row_count} rows, encoded columns {kinds}")
    catalog = Catalog()
    catalog.add_table(shop)
    catalog.attach_estimator(
        shop.name,
        EquiDepthHistogram(buckets=64),
        columns=["amount", "region", "product"],
    )
    query = TypedQuery(
        {
            "amount": Interval(50.0, 400.0),
            "region": SetMembership(["north", "south"]),
            "product": StringPrefix("bio"),
        }
    )
    estimate = catalog.estimate_selectivity(shop.name, query)
    exact = float(shop.true_selectivities([query])[0])
    print(
        f"  amount∈[50,400] AND region IN {{north,south}} AND product LIKE 'bio%': "
        f"estimate {estimate:.4f} vs exact {exact:.4f}"
    )
    typed_workload = TypedWorkload(
        shop, attributes=["amount", "region", "product"], seed=23
    ).generate(500)
    estimates = catalog.estimate_batch(shop.name, typed_workload)
    exacts = shop.true_selectivities(typed_workload)
    mean_abs = float(abs(estimates - exacts).mean())
    print(
        f"  500 mixed typed queries answered in one batch, "
        f"mean abs error {mean_abs:.4f}"
    )

    # 10. Telemetry: pass a MetricsRegistry to make the server record every
    #     request into a streaming log-bucketed latency histogram (p50/p99
    #     without storing samples) next to its cache and generation counters.
    #     Off by default — an unmetered server pays one branch per request.
    #     The snapshot exports through the exporter registry; the suffix
    #     picks the format (.json / .jsonl).
    registry = MetricsRegistry()
    server = EstimatorServer(
        EquiDepthHistogram(buckets=64).fit(table), cache_size=64, metrics=registry
    )
    for _ in range(5):
        server.estimate_batch(plan, tenant="quickstart")
    requests = registry.histogram("serve.request_seconds")
    print()
    print(
        f"served {requests.count} instrumented requests: "
        f"p50 {requests.quantile(0.5) * 1e3:.2f}ms, "
        f"p99 {requests.quantile(0.99) * 1e3:.2f}ms, "
        f"hit rate {server.cache_info().hit_rate:.0%}"
    )
    with tempfile.TemporaryDirectory() as root:
        out = Path(root) / "telemetry.json"
        exporter_for_path(out).export(registry.snapshot(), out)
        sections = exporter_for_path(out).load(out)
        print(
            f"exported telemetry snapshot to {out.name}: "
            f"{len(sections['counters'])} counters, "
            f"{len(sections['histograms'])} histograms"
        )
    # Beyond snapshots: a repro.TelemetryCollector samples a registry on an
    # interval into delta/rate time series (columnar CSV/parquet export,
    # self-contained HTML dashboards, tail-driven admission control) — see
    # examples/telemetry_traffic.py for the full loop.


if __name__ == "__main__":
    main()
