"""Quickstart: compile a workload once, estimate selectivities in bulk.

Run with::

    python examples/quickstart.py

The script builds a small synthetic relation, fits the adaptive KDE and the
streaming ADE synopses plus two classical baselines, then *compiles* a
workload of range queries into a :class:`~repro.workload.queries.CompiledQueries`
plan and answers it through the batch-first API: one ``estimate_batch`` call
per estimator, one vectorized ``true_selectivities`` scan for ground truth.
"""

from __future__ import annotations

from repro import (
    AdaptiveKDEEstimator,
    EquiDepthHistogram,
    SamplingEstimator,
    StreamingADE,
    UniformWorkload,
    compile_queries,
    evaluate_estimator,
    gaussian_mixture_table,
    render_table,
)


def main() -> None:
    # 1. A relation: 50k rows, two correlated, multimodal numeric attributes.
    table = gaussian_mixture_table(
        rows=50_000, dimensions=2, components=4, separation=4.0, seed=7, name="orders"
    )
    print(f"relation {table.name!r}: {table.row_count} rows, columns {list(table.column_names)}")

    # 2. A workload of 2000 conjunctive range queries, compiled once into a
    #    (lows, highs) bound-matrix plan aligned with the table's columns.
    workload = UniformWorkload(table, volume_fraction=0.15, seed=11).generate(2000)
    plan = compile_queries(workload, table.column_names)
    truths = table.true_selectivities(plan)
    print(f"compiled plan: {len(plan)} queries over {list(plan.columns)}")
    print(f"  exact selectivity of the first query: {truths[0]:.4f}")

    # 3. Fit the synopses (each estimator sees the same relation) and answer
    #    the whole compiled workload with a single estimate_batch call each.
    estimators = {
        "adaptive KDE (ADE)": AdaptiveKDEEstimator(sample_size=512, bandwidth_rule="lscv"),
        "streaming ADE": StreamingADE(max_kernels=256),
        "equi-depth histogram": EquiDepthHistogram(buckets=64),
        "random sample": SamplingEstimator(sample_size=512),
    }
    rows = []
    for name, estimator in estimators.items():
        estimator.fit(table)
        estimates = estimator.estimate_batch(plan)
        print(f"  {name}: estimate for the first query = {estimates[0]:.4f}")
        result = evaluate_estimator(table, estimator, plan, name=name)
        summaries = result.summaries()
        rows.append(
            [
                name,
                summaries["relative"].mean,
                summaries["q"].mean,
                result.queries_per_second,
                result.memory_bytes,
            ]
        )

    # 4. Accuracy and throughput summary over the whole workload.
    print()
    print(
        render_table(
            ["estimator", "rel_err_mean", "q_err_mean", "queries_per_sec", "bytes"],
            rows,
            title="Workload accuracy and throughput (2000 compiled range queries)",
        )
    )


if __name__ == "__main__":
    main()
