"""Quickstart: build an adaptive density estimator and estimate selectivities.

Run with::

    python examples/quickstart.py

The script builds a small synthetic relation, fits the adaptive KDE and the
streaming ADE synopses plus two classical baselines, and compares their
selectivity estimates against the exact answers for a random workload.
"""

from __future__ import annotations

from repro import (
    AdaptiveKDEEstimator,
    EquiDepthHistogram,
    SamplingEstimator,
    StreamingADE,
    UniformWorkload,
    evaluate_estimator,
    gaussian_mixture_table,
    render_table,
)


def main() -> None:
    # 1. A relation: 50k rows, two correlated, multimodal numeric attributes.
    table = gaussian_mixture_table(
        rows=50_000, dimensions=2, components=4, separation=4.0, seed=7, name="orders"
    )
    print(f"relation {table.name!r}: {table.row_count} rows, columns {list(table.column_names)}")

    # 2. A workload of 200 conjunctive range queries.
    workload = UniformWorkload(table, volume_fraction=0.15, seed=11).generate(200)
    example = workload[0]
    print(f"example query: {example}")
    print(f"  exact selectivity: {table.true_selectivity(example):.4f}")

    # 3. Fit the synopses (each estimator sees the same relation).
    estimators = {
        "adaptive KDE (ADE)": AdaptiveKDEEstimator(sample_size=512, bandwidth_rule="lscv"),
        "streaming ADE": StreamingADE(max_kernels=256),
        "equi-depth histogram": EquiDepthHistogram(buckets=64),
        "random sample": SamplingEstimator(sample_size=512),
    }
    rows = []
    for name, estimator in estimators.items():
        estimator.fit(table)
        print(f"  {name}: estimate for the example query = {estimator.estimate(example):.4f}")
        result = evaluate_estimator(table, estimator, workload, name=name)
        summaries = result.summaries()
        rows.append(
            [
                name,
                summaries["relative"].mean,
                summaries["q"].mean,
                summaries["q"].p95,
                result.memory_bytes,
            ]
        )

    # 4. Accuracy summary over the whole workload.
    print()
    print(
        render_table(
            ["estimator", "rel_err_mean", "q_err_mean", "q_err_p95", "bytes"],
            rows,
            title="Workload accuracy (200 range queries)",
        )
    )


if __name__ == "__main__":
    main()
