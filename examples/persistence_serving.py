"""Persistence & concurrent serving: save → restart → restore → serve.

Run with::

    python examples/persistence_serving.py

The walkthrough mirrors the lifecycle of database statistics in a production
system:

1. **Build & save** — fit a catalog of synopses over two relations and
   publish them into a versioned on-disk :class:`~repro.persist.ModelStore`
   (atomic write-then-rename publishes, ``LATEST`` pointers, prune policy).
2. **Restart** — throw the fitted objects away, as a process restart would.
3. **Restore** — rebuild the catalog's statistics from the store without
   touching the base tables: ``Catalog.restore`` re-attaches the latest
   published version of every synopsis, bitwise-identical to the saved one.
4. **Serve while ingesting** — front the streaming synopsis with an
   :class:`~repro.serve.EstimatorServer`: reader threads answer cached batch
   estimates against the published model while a writer thread keeps
   ingesting new rows into a private copy (``checkout``) and atomically
   publishes fresh versions (``publish``), each of which bumps the serving
   generation and invalidates the result cache.
"""

from __future__ import annotations

import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro import (
    Catalog,
    EquiDepthHistogram,
    EstimatorServer,
    ModelStore,
    StreamingADE,
    UniformWorkload,
    compile_queries,
    gaussian_mixture_table,
    uniform_table,
)


def build_and_save(store: ModelStore) -> tuple[Catalog, dict[str, int]]:
    """Step 1: fit synopses for two relations and publish them."""
    catalog = Catalog()
    catalog.add_table(
        gaussian_mixture_table(rows=30_000, dimensions=2, components=4, seed=7, name="orders")
    )
    catalog.add_table(uniform_table(rows=10_000, dimensions=1, seed=3, name="users"))
    catalog.attach_estimator("orders", StreamingADE(max_kernels=128))
    catalog.attach_estimator("users", EquiDepthHistogram(buckets=64))
    versions = catalog.save(store)
    return catalog, versions


def main() -> None:
    with tempfile.TemporaryDirectory() as root:
        store = ModelStore(Path(root) / "models", keep_versions=5)

        # -- 1. build & save ------------------------------------------------
        catalog, versions = build_and_save(store)
        workload = UniformWorkload(catalog.table("orders"), seed=11).generate(500)
        plan = compile_queries(workload, catalog.table("orders").column_names)
        before = catalog.estimate_batch("orders", plan)
        print(f"published {versions} into {store.root}")

        # -- 2. "restart": drop every fitted object -------------------------
        saved_header = store.describe("orders")
        del catalog
        print(
            f"restart... (store remembers: {saved_header['estimator']!r} over "
            f"{saved_header['columns']}, {saved_header['row_count']} rows)"
        )

        # -- 3. restore without refitting ----------------------------------
        catalog = Catalog()
        catalog.add_table(
            gaussian_mixture_table(rows=30_000, dimensions=2, components=4, seed=7, name="orders")
        )
        catalog.add_table(uniform_table(rows=10_000, dimensions=1, seed=3, name="users"))
        restored = catalog.restore(store)
        after = catalog.estimate_batch("orders", plan)
        print(
            f"restored {restored}; estimates bitwise-identical to the saved model: "
            f"{bool(np.array_equal(before, after))}"
        )

        # -- 4. ingest-while-serve -----------------------------------------
        server = EstimatorServer(
            catalog.estimator("orders"), cache_size=128, store=store, model_name="orders"
        )
        stop = threading.Event()
        published = []

        def writer() -> None:
            rng = np.random.default_rng(42)
            while not stop.is_set():
                model = server.checkout()          # copy-on-write: readers unaffected
                model.insert(rng.normal(8.0, 0.5, size=(2_000, 2)))
                model.flush()
                published.append(server.publish(model))  # atomic swap + store publish
                time.sleep(0.01)

        reads = {"count": 0}

        def reader() -> None:
            while not stop.is_set():
                estimates = server.estimate_batch(plan)
                assert estimates.shape == (len(plan),)
                reads["count"] += 1

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(3)
        ]
        for thread in threads:
            thread.start()
        time.sleep(1.0)
        stop.set()
        for thread in threads:
            thread.join()

        info = server.cache_info()
        print(
            f"served {reads['count']} batch reads across {len(published)} live publishes "
            f"(final generation {info.generation}, cache hit rate {info.hit_rate:.0%})"
        )
        print(
            f"store now holds versions {store.versions('orders')} of 'orders' "
            f"(prune policy keeps the newest {store.keep_versions})"
        )

        # The served model is always loadable by a fresh process.
        latest = store.load("orders")
        print(f"latest published model answers: {latest.estimate_batch(plan)[0]:.4f}")


if __name__ == "__main__":
    main()
