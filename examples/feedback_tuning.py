"""Self-tuning scenario: a dashboard workload teaches the estimator.

Run with::

    python examples/feedback_tuning.py

A dashboard repeatedly queries the same hot slice of a large relation.  Every
executed query reveals its true cardinality for free, and the executor feeds
it back into the synopsis.  The script tracks how the hold-out error of the
feedback-driven adaptive estimator (and of a self-tuning histogram baseline)
drops as feedback accumulates, while a static synopsis stays where it
started.
"""

from __future__ import annotations

from repro import (
    Executor,
    FeedbackAdaptiveEstimator,
    KDESelectivityEstimator,
    SelfTuningHistogram,
    SkewedWorkload,
    evaluate_estimator,
    gaussian_mixture_table,
    render_series,
)


def main() -> None:
    table = gaussian_mixture_table(
        rows=40_000, dimensions=2, components=4, separation=4.0, seed=5, name="events"
    )
    hot_region = dict(volume_fraction=0.1, hot_fraction=0.25, hot_probability=0.95)
    dashboard = SkewedWorkload(table, seed=6, **hot_region)
    holdout = SkewedWorkload(table, seed=7, **hot_region).generate(150)

    feedback_ade = FeedbackAdaptiveEstimator(
        base=KDESelectivityEstimator(sample_size=256), max_regions=512
    ).fit(table)
    st_histogram = SelfTuningHistogram(cells_per_dim=12, learning_rate=0.5).fit(table)
    static = KDESelectivityEstimator(sample_size=256).fit(table)

    executor = Executor(table)
    checkpoints = [0, 25, 50, 100, 200, 400]
    feedback_queries = dashboard.generate(max(checkpoints))

    x_values: list[int] = []
    series: dict[str, list[float]] = {}
    applied = 0
    for checkpoint in checkpoints:
        while applied < checkpoint:
            query = feedback_queries[applied]
            executor.execute_with_feedback(query, feedback_ade)
            st_histogram.feedback(query, table.true_selectivity(query))
            applied += 1
        x_values.append(checkpoint)
        for name, estimator in (
            ("feedback_ade", feedback_ade),
            ("self_tuning_histogram", st_histogram),
            ("static_kde", static),
        ):
            error = evaluate_estimator(table, estimator, holdout).mean_q_error()
            series.setdefault(name, []).append(error)

    print(
        render_series(
            "feedback_queries",
            x_values,
            series,
            title="Hold-out mean q-error on the hot region vs. amount of feedback",
            precision=3,
        )
    )
    print()
    print(
        f"After {max(checkpoints)} executed queries the feedback-driven estimator has seen "
        f"{feedback_ade.feedback_count} true cardinalities and keeps "
        f"{feedback_ade.record_count} correction regions "
        f"({feedback_ade.memory_bytes()} bytes in total)."
    )


if __name__ == "__main__":
    main()
