"""Telemetry + multi-tenant traffic: observe a live serving stack under load.

Run with::

    python examples/telemetry_traffic.py

The walkthrough wires the observability layer through the whole serving
stack and then drives it with the deterministic multi-tenant traffic
simulator:

1. An instrumented :class:`~repro.serve.EstimatorServer` records every
   request into a streaming log-bucketed latency histogram (constant
   memory, p50/p95/p99 readouts within one geometric bucket of the exact
   sample quantile) plus cache hit/miss counters and generation gauges —
   per tenant, when requests carry a tenant label.
2. A :class:`~repro.traffic.TrafficSimulator` replays an open-loop,
   seed-deterministic schedule over three tenant profiles: a bursty
   dashboard hammering a small zipf-hot plan pool, an ad-hoc tenant
   spraying a wide pool of one-off plans, and an ingest tenant whose
   checkout → insert → flush → publish cycles bump the serving generation
   and invalidate every cached plan — the cross-tenant interference
   mechanism the tail-latency benchmark gates.
3. A :class:`~repro.obs.TelemetryCollector` ticks at virtual-time interval
   boundaries during the run, diffing registry snapshots into per-metric
   delta/rate time series with windowed rollups.
4. The run's report (per-tenant p50/p99 per op) and the full registry
   snapshot are exported through the pluggable exporter registry — JSON
   for humans, JSONL (one record per metric) for line-oriented collectors,
   CSV (one row per series point) for columnar tooling — and read back
   losslessly.  The collected series also renders as a self-contained
   static HTML dashboard (inline SVG sparklines, zero third-party deps).

Two runs with the same seed execute the identical op sequence (the report
checksum proves it), so latency differences between runs measure the
system, not the workload.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import (
    DEFAULT_TENANTS,
    EstimatorServer,
    MetricsRegistry,
    StreamingADE,
    TelemetryCollector,
    TenantProfile,
    TrafficSimulator,
    exporter_for_path,
    gaussian_mixture_table,
    write_dashboard,
)


def main() -> None:
    # 1. A relation and a streaming synopsis to serve.
    table = gaussian_mixture_table(
        rows=20_000, dimensions=3, components=4, separation=4.0, seed=7, name="orders"
    )
    model = StreamingADE(max_kernels=128).fit(table)

    # 2. An instrumented server: every request lands in the registry.
    registry = MetricsRegistry()
    server = EstimatorServer(model, cache_size=32, metrics=registry)

    # 3. Three tenants with distinct mixes.  Each tenant draws from its own
    #    SeedSequence([seed, index]) stream, so adding or removing one tenant
    #    leaves every other tenant's schedule untouched.
    tenants = (
        DEFAULT_TENANTS[0],  # "dashboard": bursty reads over a zipf-hot pool
        TenantProfile(name="adhoc", rate=60.0, plan_pool=64, zipf_s=0.0),
        TenantProfile(
            name="ingest",
            query_weight=0.2,
            ingest_weight=1.0,
            rate=15.0,
            plan_pool=4,
            ingest_rows=512,
        ),
    )
    # ... and a collector sampling the registry every 0.1s of virtual time:
    # the simulator ticks it at interval boundaries, so the series timeline
    # is the deterministic schedule's, not the wall clock's.
    collector = TelemetryCollector(registry, interval=0.1)
    simulator = TrafficSimulator(
        server, table, tenants=tenants, seed=42, collector=collector
    )

    # 4. The schedule is a pure function of (profiles, seed, duration) —
    #    inspectable before anything executes.
    events = simulator.schedule(1.0)
    by_op: dict[str, int] = {}
    for event in events:
        by_op[event.op] = by_op.get(event.op, 0) + 1
    print(f"schedule: {len(events)} arrivals over 1.0s virtual time — {by_op}")

    # 5. Replay it against the live server.
    report = simulator.run(1.0)
    print(f"executed {report.events} events, answer checksum {report.checksum:.3f}")
    print()
    print("per-tenant query tails (client-observed):")
    for name, entry in sorted(report.tenants.items()):
        query = entry["ops"].get("query")
        if query:
            print(
                f"  {name:10s} {query['count']:5d} queries  "
                f"p50 {query['p50'] * 1e3:6.2f}ms  p99 {query['p99'] * 1e3:6.2f}ms"
            )
    stats = report.server
    print(
        f"server: generation {stats['generation']} "
        f"({stats['generation_swaps']} publishes), "
        f"hit rate {stats['hit_rate']:.0%}, "
        f"{stats['cache_invalidations']} cache invalidations"
    )

    # 6. The server-side per-tenant view lives in the same registry the
    #    simulator recorded into (server-observed spans: cache + estimate
    #    only, excluding compile/reduce — slightly tighter than the
    #    client-observed spans above).
    dashboard = registry.histogram("serve.request_seconds", tenant="dashboard")
    print(
        f"server-side dashboard view: {dashboard.count} requests, "
        f"p99 {dashboard.quantile(0.99) * 1e3:.2f}ms"
    )

    # 7. The collector turned the run into time series: per-metric
    #    delta/rate points with windowed rollups.
    qps = collector.store.window_rate("traffic.ops{op=query,tenant=dashboard}", None)
    print(
        f"collector: {len(collector.store.keys())} series, "
        f"{len(collector.store)} points; dashboard query rate {qps:.0f}/s"
    )

    # 8. Export the report + registry snapshot through the exporters and
    #    read them back losslessly; the collected series goes to columnar
    #    CSV and renders as a self-contained offline dashboard.
    with tempfile.TemporaryDirectory() as root:
        for suffix in (".json", ".jsonl"):
            path = report.export(Path(root) / f"traffic{suffix}", metrics=registry)
            loaded = exporter_for_path(path).load(path)
            assert loaded["checksum"] == report.checksum
            print(
                f"exported {path.name}: {len(loaded['histograms'])} histogram "
                f"series, checksum round-tripped"
            )
        series_path = Path(root) / "traffic.series.csv"
        exporter_for_path(series_path).export(
            collector.series_payload(run="example"), series_path
        )
        loaded_series = exporter_for_path(series_path).load(series_path)
        assert loaded_series["points"] == collector.series_payload(run="example")["points"]
        html = write_dashboard(
            collector, Path(root) / "traffic.html", title="telemetry_traffic example"
        )
        print(
            f"exported {series_path.name}: {len(loaded_series['points'])} points "
            f"round-tripped; dashboard {html.name}: {html.stat().st_size} bytes"
        )

    # 9. Determinism probe: a fresh simulator over a fresh server, same seed
    #    — the identical op sequence executes (checksums differ only if the
    #    *model* differs).
    replay_server = EstimatorServer(StreamingADE(max_kernels=128).fit(table), cache_size=32)
    replay = TrafficSimulator(replay_server, table, tenants=tenants, seed=42).run(1.0)
    print()
    print(
        f"replay with the same seed: {replay.events} events "
        f"(same: {replay.events == report.events}), checksum matches: "
        f"{abs(replay.checksum - report.checksum) < 1e-6}"
    )


if __name__ == "__main__":
    main()
