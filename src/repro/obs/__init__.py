"""Observability layer: metrics, latency histograms, pluggable exporters.

``obs`` is the repo's telemetry substrate.  It is dependency-free (stdlib
only, besides the shared error types and the component-resolution helper)
and sits below every instrumented layer:

* :mod:`repro.obs.metrics` — :class:`~repro.obs.metrics.MetricsRegistry`
  with counters, gauges (including zero-overhead snapshot-time callback
  gauges), streaming log-bucketed
  :class:`~repro.obs.metrics.LatencyHistogram` quantiles, timer context
  managers/decorators, and the no-op :data:`~repro.obs.metrics.NULL_REGISTRY`
  default that keeps uninstrumented hot paths at one-branch cost.
* :mod:`repro.obs.export` — the exporter registry (``"json"`` /
  ``"jsonl"`` plus the columnar formats below, registry-keyed) that
  serialises registry snapshots and collector series losslessly.
* :mod:`repro.obs.columnar` — columnar exporters: stdlib ``"csv"`` (one
  row per point, JSON-encoded cells, lossless) and optional ``"parquet"``
  (pyarrow-gated; registers and constructs without the dependency, raises
  cleanly on use).
* :mod:`repro.obs.collector` — :class:`~repro.obs.collector.TelemetryCollector`
  sampling a registry on an interval (or explicit ``tick()``), diffing
  consecutive snapshots into per-metric delta/rate series with
  histogram-quantile readouts, retained in a bounded
  :class:`~repro.obs.collector.TimeSeriesStore` with trailing-window
  rollups (rate, mean, p50/p95/p99).
* :mod:`repro.obs.dashboard` — static self-contained HTML dashboards
  (inline SVG sparklines, per-tenant SLO grading) rendered from a live
  collector or any exported series file, zero third-party dependencies.

Instrumented layers: :class:`~repro.serve.EstimatorServer` (per-request
latency, cache hits/misses, generation swaps, per-tenant labels),
:meth:`~repro.core.streaming.StreamingADE.insert`/``flush`` (bulk-ingest
rows and latency), :meth:`~repro.persist.store.ModelStore.publish`,
:class:`~repro.shard.parallel.ShardExecutor` per-shard task timings, and the
query fast path's culled-vs-dense routing counters
(:func:`repro.core.fastpath.set_route_metrics`).
"""

from repro.obs.collector import (
    SeriesPoint,
    TelemetryCollector,
    TimeSeriesStore,
    WindowRollup,
    series_payload,
    store_from_payload,
)
from repro.obs.columnar import HAVE_PYARROW, CSVExporter, ParquetExporter
from repro.obs.dashboard import load_series, render_dashboard, write_dashboard
from repro.obs.export import (
    JSONExporter,
    JSONLExporter,
    MetricsExporter,
    available_exporters,
    create_exporter,
    exporter_for_path,
    exporter_from_config,
    exporter_suffixes,
    register_exporter,
    resolve_exporter,
)
from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    NullRegistry,
    default_metrics,
    hit_rate,
    metric_key,
    set_default_metrics,
    use_default_metrics,
)

__all__ = [
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "default_metrics",
    "set_default_metrics",
    "use_default_metrics",
    "hit_rate",
    "metric_key",
    "MetricsExporter",
    "JSONExporter",
    "JSONLExporter",
    "CSVExporter",
    "ParquetExporter",
    "HAVE_PYARROW",
    "register_exporter",
    "create_exporter",
    "exporter_from_config",
    "available_exporters",
    "resolve_exporter",
    "exporter_for_path",
    "exporter_suffixes",
    "SeriesPoint",
    "TimeSeriesStore",
    "TelemetryCollector",
    "WindowRollup",
    "series_payload",
    "store_from_payload",
    "render_dashboard",
    "write_dashboard",
    "load_series",
]
