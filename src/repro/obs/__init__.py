"""Observability layer: metrics, latency histograms, pluggable exporters.

``obs`` is the repo's telemetry substrate.  It is dependency-free (stdlib
only, besides the shared error types and the component-resolution helper)
and sits below every instrumented layer:

* :mod:`repro.obs.metrics` — :class:`~repro.obs.metrics.MetricsRegistry`
  with counters, gauges (including zero-overhead snapshot-time callback
  gauges), streaming log-bucketed
  :class:`~repro.obs.metrics.LatencyHistogram` quantiles, timer context
  managers/decorators, and the no-op :data:`~repro.obs.metrics.NULL_REGISTRY`
  default that keeps uninstrumented hot paths at one-branch cost.
* :mod:`repro.obs.export` — the exporter registry (``"json"`` /
  ``"jsonl"``, registry-keyed so columnar formats can slot in later) that
  serialises registry snapshots losslessly.

Instrumented layers: :class:`~repro.serve.EstimatorServer` (per-request
latency, cache hits/misses, generation swaps, per-tenant labels),
:meth:`~repro.core.streaming.StreamingADE.insert`/``flush`` (bulk-ingest
rows and latency), :meth:`~repro.persist.store.ModelStore.publish`,
:class:`~repro.shard.parallel.ShardExecutor` per-shard task timings, and the
query fast path's culled-vs-dense routing counters
(:func:`repro.core.fastpath.set_route_metrics`).
"""

from repro.obs.export import (
    JSONExporter,
    JSONLExporter,
    MetricsExporter,
    available_exporters,
    create_exporter,
    exporter_for_path,
    exporter_from_config,
    register_exporter,
    resolve_exporter,
)
from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    NullRegistry,
    default_metrics,
    hit_rate,
    metric_key,
    set_default_metrics,
    use_default_metrics,
)

__all__ = [
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "default_metrics",
    "set_default_metrics",
    "use_default_metrics",
    "hit_rate",
    "metric_key",
    "MetricsExporter",
    "JSONExporter",
    "JSONLExporter",
    "register_exporter",
    "create_exporter",
    "exporter_from_config",
    "available_exporters",
    "resolve_exporter",
    "exporter_for_path",
]
