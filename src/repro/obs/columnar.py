"""Columnar exporters: stdlib CSV plus an optional Arrow/Parquet backend.

Both formats emit **one row per (timestamp, metric, labels) point** when the
payload is a collector series (:func:`repro.obs.collector.series_payload`,
recognised by its ``"points"`` list); any other metrics payload — e.g. a raw
registry snapshot — falls back to one row per metric keyed by section, the
same decomposition the JSONL exporter uses.  Either way the round-trip is
lossless: every cell is JSON-encoded, so ``None`` vs ``0.0``, nested label
mappings and sparse bucket dicts all survive ``export`` → ``load`` exactly.

``csv`` is stdlib-only and always available.  ``parquet`` needs ``pyarrow``:
the exporter class registers and constructs unconditionally (so
:func:`~repro.obs.export.exporter_for_path` can enumerate suffixes without
the dependency installed) but raises a clear :class:`InvalidParameterError`
the moment serialisation is attempted without pyarrow — callers and tests
gate on :data:`HAVE_PYARROW`.
"""

from __future__ import annotations

import csv
import io
import json
import pathlib
from typing import Any, Mapping

from repro.core.errors import InvalidParameterError
from repro.obs.export import _SECTIONS, MetricsExporter, register_exporter

try:  # optional columnar backend — never required at import time
    import pyarrow as _pa
    import pyarrow.parquet as _pq

    HAVE_PYARROW = True
except ImportError:  # pragma: no cover - exercised only without pyarrow
    _pa = _pq = None
    HAVE_PYARROW = False

__all__ = ["CSVExporter", "ParquetExporter", "HAVE_PYARROW", "POINT_COLUMNS"]

#: Column order of a series-payload row (matches ``SeriesPoint.to_record``).
POINT_COLUMNS = (
    "time",
    "metric",
    "labels",
    "kind",
    "value",
    "delta",
    "rate",
    "total",
    "mean",
    "p50",
    "p95",
    "p99",
    "buckets",
)

#: Fallback column order for non-series payloads (one row per metric).
_SECTION_COLUMNS = ("section", "key", "data")


def _split_meta(payload: Mapping[str, Any]) -> tuple[dict[str, Any], bool]:
    """Non-row keys of ``payload`` plus whether it is a series payload."""
    is_series = "points" in payload
    drop = ("points",) if is_series else _SECTIONS
    return {k: v for k, v in payload.items() if k not in drop}, is_series


def _rows(payload: Mapping[str, Any], is_series: bool) -> list[dict[str, Any]]:
    if is_series:
        return [dict(record) for record in payload["points"]]
    return [
        {"section": section, "key": key, "data": data}
        for section in _SECTIONS
        if section in payload
        for key, data in payload[section].items()
    ]


#: Columns only histogram points carry (``SeriesPoint.to_record`` omits them
#: on counter/gauge records, so the columnar null stands for "absent").
_HISTOGRAM_ONLY = ("total", "mean", "p50", "p95", "p99", "buckets")


def _strip_absent(row: dict[str, Any]) -> dict[str, Any]:
    """Drop columnar nulls that encode keys the point kind never carries."""
    if row.get("kind") != "histogram":
        for column in _HISTOGRAM_ONLY:
            row.pop(column, None)
    return row


def _reassemble(
    meta: dict[str, Any], rows: list[dict[str, Any]], is_series: bool
) -> dict[str, Any]:
    payload = dict(meta)
    if is_series:
        payload["points"] = rows
        return payload
    for section in meta.get("sections", ()):  # preserve empty sections
        payload.setdefault(section, {})
    payload.pop("sections", None)
    for row in rows:
        payload.setdefault(row["section"], {})[row["key"]] = row["data"]
    return payload


@register_exporter("csv")
class CSVExporter(MetricsExporter):
    """Stdlib CSV with JSON-encoded cells — columnar yet lossless.

    Line 1 is a ``#meta {json}`` comment carrying every non-row payload key
    (sampling interval, store capacity, run metadata) plus the payload
    shape; line 2 is the header; every further line is one point (series
    payloads) or one metric (snapshot payloads).  JSON-encoding each cell
    keeps types exact — ``null`` ≠ ``0.0``, labels and sparse histogram
    buckets stay structured — while the file still opens in any spreadsheet
    or dataframe tool.
    """

    suffix = ".csv"

    def dumps(self, payload: Mapping[str, Any]) -> str:
        meta, is_series = _split_meta(payload)
        if not is_series:
            meta = dict(meta)
            meta["sections"] = [s for s in _SECTIONS if s in payload]
        columns = POINT_COLUMNS if is_series else _SECTION_COLUMNS
        buffer = io.StringIO()
        buffer.write(
            "#meta "
            + json.dumps({"series": is_series, "data": meta}, sort_keys=True)
            + "\n"
        )
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(columns)
        for row in _rows(payload, is_series):
            writer.writerow(
                [json.dumps(row.get(column), sort_keys=True) for column in columns]
            )
        return buffer.getvalue()

    def loads(self, text: str) -> dict[str, Any]:
        lines = text.splitlines()
        if not lines or not lines[0].startswith("#meta "):
            raise InvalidParameterError(
                "CSV metrics file must start with a '#meta' line"
            )
        head = json.loads(lines[0][len("#meta "):])
        is_series = bool(head.get("series"))
        reader = csv.reader(lines[1:])
        try:
            columns = next(reader)
        except StopIteration:
            raise InvalidParameterError("CSV metrics file has no header row") from None
        rows = []
        for cells in reader:
            row = {
                column: json.loads(cell) for column, cell in zip(columns, cells)
            }
            if is_series:
                row = _strip_absent(row)
            rows.append(row)
        return _reassemble(dict(head.get("data", {})), rows, is_series)


@register_exporter("parquet")
class ParquetExporter(MetricsExporter):
    """Apache Parquet via ``pyarrow`` (optional dependency, binary format).

    Same row model as :class:`CSVExporter` — numeric columns are native
    float64/strings, structured cells (labels, buckets) are JSON strings,
    payload metadata rides in the Parquet schema metadata.  Constructing the
    exporter never needs pyarrow (suffix-based resolution must be able to
    enumerate it); any serialisation without pyarrow raises
    :class:`InvalidParameterError`.
    """

    suffix = ".parquet"

    @staticmethod
    def _require_pyarrow() -> None:
        if not HAVE_PYARROW:
            raise InvalidParameterError(
                "parquet exporter requires pyarrow, which is not installed; "
                "use the 'csv', 'json' or 'jsonl' exporter instead"
            )

    def dumps(self, payload: Mapping[str, Any]) -> str:
        raise InvalidParameterError(
            "parquet is a binary format; use export()/load(), not dumps()/loads()"
        )

    def loads(self, text: str) -> dict[str, Any]:
        raise InvalidParameterError(
            "parquet is a binary format; use export()/load(), not dumps()/loads()"
        )

    def export(
        self, payload: Mapping[str, Any], path: "str | pathlib.Path"
    ) -> pathlib.Path:
        self._require_pyarrow()
        meta, is_series = _split_meta(payload)
        if not is_series:
            meta = dict(meta)
            meta["sections"] = [s for s in _SECTIONS if s in payload]
        rows = _rows(payload, is_series)
        if is_series:
            arrays: dict[str, Any] = {}
            for column in POINT_COLUMNS:
                cells = [row.get(column) for row in rows]
                if column in ("labels", "buckets"):
                    arrays[column] = [
                        json.dumps(cell, sort_keys=True) if cell is not None else None
                        for cell in cells
                    ]
                else:
                    arrays[column] = cells
            table = _pa.table(
                {column: _pa.array(arrays[column]) for column in POINT_COLUMNS}
            )
        else:
            table = _pa.table(
                {
                    "section": _pa.array([row["section"] for row in rows]),
                    "key": _pa.array([row["key"] for row in rows]),
                    "data": _pa.array(
                        [json.dumps(row["data"], sort_keys=True) for row in rows]
                    ),
                }
            )
        table = table.replace_schema_metadata(
            {
                "repro.meta": json.dumps(
                    {"series": is_series, "data": meta}, sort_keys=True
                )
            }
        )
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        _pq.write_table(table, path)
        return path

    def load(self, path: "str | pathlib.Path") -> dict[str, Any]:
        self._require_pyarrow()
        table = _pq.read_table(pathlib.Path(path))
        raw_meta = (table.schema.metadata or {}).get(b"repro.meta")
        if raw_meta is None:
            raise InvalidParameterError(
                f"{path} is not a repro metrics parquet file (missing metadata)"
            )
        head = json.loads(raw_meta)
        is_series = bool(head.get("series"))
        columns = {name: table.column(name).to_pylist() for name in table.column_names}
        count = table.num_rows
        rows = []
        for index in range(count):
            row = {name: values[index] for name, values in columns.items()}
            if is_series:
                for column in ("labels", "buckets"):
                    if row.get(column) is not None:
                        row[column] = json.loads(row[column])
                row = _strip_absent(row)
            else:
                row["data"] = json.loads(row["data"])
            rows.append(row)
        return _reassemble(dict(head.get("data", {})), rows, is_series)
