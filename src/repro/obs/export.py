"""Pluggable serialisation of metrics snapshots.

A :class:`MetricsExporter` turns the JSON-native payload produced by
:meth:`repro.obs.metrics.MetricsRegistry.snapshot` (or any dict built on top
of it, e.g. a traffic-simulator report) into bytes on disk and back,
**losslessly**: ``exporter.load(exporter.export(payload, path))`` equals the
original payload, which the exporter test suite pins for every registered
format.

Exporters live in a registry keyed by format name — ``"json"`` (one
indented document) and ``"jsonl"`` (line-delimited records, one metric per
line, streaming/append-friendly) ship now; a columnar format (Arrow/Parquet)
can slot in later by registering a new name, without touching any caller.
Specs resolve through :func:`repro.core.resolve.resolve_component` — the
same instance / registry-name / config-mapping convention estimators use —
so an exporter choice round-trips through configs exactly like every other
pluggable component in the repo.
"""

from __future__ import annotations

import json
import pathlib
from abc import ABC, abstractmethod
from typing import Any, Callable, Mapping

from repro.core.errors import InvalidParameterError
from repro.core.resolve import resolve_component

__all__ = [
    "MetricsExporter",
    "JSONExporter",
    "JSONLExporter",
    "register_exporter",
    "create_exporter",
    "exporter_from_config",
    "available_exporters",
    "resolve_exporter",
    "exporter_for_path",
    "exporter_suffixes",
]

_EXPORTERS: dict[str, Callable[..., "MetricsExporter"]] = {}


def register_exporter(name: str, factory: Callable[..., "MetricsExporter"] | None = None):
    """Register an exporter class/factory under ``name`` (decorator form too)."""

    def _register(target: Callable[..., "MetricsExporter"]):
        _EXPORTERS[name] = target
        target.name = name
        return target

    if factory is not None:
        return _register(factory)
    return _register


def create_exporter(name: str, **kwargs: Any) -> "MetricsExporter":
    """Instantiate a registered exporter by name."""
    try:
        factory = _EXPORTERS[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown exporter {name!r}; available: {available_exporters()}"
        ) from None
    return factory(**kwargs)


def exporter_from_config(config: Mapping[str, Any]) -> "MetricsExporter":
    """Instantiate an exporter from a ``{"name": ..., **params}`` mapping."""
    params = dict(config)
    try:
        name = params.pop("name")
    except KeyError:
        raise InvalidParameterError("exporter config requires a 'name' key") from None
    return create_exporter(str(name), **params)


def available_exporters() -> list[str]:
    """Registered exporter names, sorted."""
    return sorted(_EXPORTERS)


def resolve_exporter(
    spec: "MetricsExporter | Mapping[str, Any] | str | None",
    default: Callable[[], "MetricsExporter"] | None = None,
    *,
    what: str = "exporter",
) -> "MetricsExporter":
    """Resolve an exporter spec (instance / registry name / config mapping).

    The exporter binding of :func:`repro.core.resolve.resolve_component` —
    the shared resolution convention, not a third idiom.
    """
    return resolve_component(
        spec,
        base_type=MetricsExporter,
        create=create_exporter,
        from_config=exporter_from_config,
        default=default,
        what=what,
        kind="exporter",
    )


def exporter_suffixes() -> dict[str, str]:
    """Mapping of registered exporter name → preferred file suffix."""
    return {
        name: str(getattr(_EXPORTERS[name], "suffix", ""))
        for name in available_exporters()
    }


def exporter_for_path(path: "str | pathlib.Path") -> "MetricsExporter":
    """Pick an exporter from a file suffix (``.csv`` → csv, ``.jsonl`` → jsonl, ...).

    Raises :class:`InvalidParameterError` naming every registered format and
    its suffix when no exporter claims the suffix, so a typo'd ``--telemetry``
    path fails loudly instead of silently writing JSON.
    """
    suffix = pathlib.Path(path).suffix.lower()
    for name, known in exporter_suffixes().items():
        if known == suffix:
            return create_exporter(name)
    formats = ", ".join(
        f"{name} ({known})" for name, known in exporter_suffixes().items()
    )
    raise InvalidParameterError(
        f"no exporter registered for suffix {suffix!r} of {str(path)!r}; "
        f"available: {formats}"
    )


class MetricsExporter(ABC):
    """Serialise a JSON-native metrics payload to disk and back, losslessly."""

    name = "abstract"
    #: Preferred file suffix (used by :func:`exporter_for_path`).
    suffix = ".json"

    @abstractmethod
    def dumps(self, payload: Mapping[str, Any]) -> str:
        """Render ``payload`` as text."""

    @abstractmethod
    def loads(self, text: str) -> dict[str, Any]:
        """Parse text produced by :meth:`dumps` back into the payload."""

    def export(self, payload: Mapping[str, Any], path: "str | pathlib.Path") -> pathlib.Path:
        """Write ``payload`` to ``path`` (parent directories created)."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.dumps(payload))
        return path

    def load(self, path: "str | pathlib.Path") -> dict[str, Any]:
        """Read a payload previously written by :meth:`export`."""
        return self.loads(pathlib.Path(path).read_text())

    def _config_params(self) -> dict[str, Any]:
        return {}

    def config(self) -> dict[str, Any]:
        """Reconstruction recipe (``resolve_exporter``-compatible mapping)."""
        return {"name": self.name, **self._config_params()}


#: Metric-table sections a registry snapshot may carry; JSONL splits these
#: into one record per metric and reassembles them on load.
_SECTIONS = ("counters", "gauges", "histograms")


@register_exporter("json")
class JSONExporter(MetricsExporter):
    """One indented, sorted JSON document — the human-diffable archive format."""

    suffix = ".json"

    def __init__(self, indent: int = 2) -> None:
        if indent < 0:
            raise InvalidParameterError("indent must be non-negative")
        self.indent = int(indent)

    def dumps(self, payload: Mapping[str, Any]) -> str:
        return json.dumps(dict(payload), indent=self.indent, sort_keys=True) + "\n"

    def loads(self, text: str) -> dict[str, Any]:
        return json.loads(text)

    def _config_params(self) -> dict[str, Any]:
        return {"indent": self.indent}


@register_exporter("jsonl")
class JSONLExporter(MetricsExporter):
    """Line-delimited records: one ``meta`` line, then one line per metric.

    Streaming/append-friendly (each line is a self-contained JSON object) and
    still a lossless round-trip: the ``meta`` record carries every
    non-metric key plus the list of metric sections present, each metric
    record carries its section, key and data, and :meth:`loads` reassembles
    the exact original payload.
    """

    suffix = ".jsonl"

    def dumps(self, payload: Mapping[str, Any]) -> str:
        payload = dict(payload)
        sections = [s for s in _SECTIONS if s in payload]
        meta = {k: v for k, v in payload.items() if k not in _SECTIONS}
        lines = [json.dumps({"record": "meta", "sections": sections, "data": meta},
                            sort_keys=True)]
        for section in sections:
            for key, data in payload[section].items():
                lines.append(
                    json.dumps(
                        {"record": section, "key": key, "data": data}, sort_keys=True
                    )
                )
        return "\n".join(lines) + "\n"

    def loads(self, text: str) -> dict[str, Any]:
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise InvalidParameterError("empty JSONL metrics file")
        head = json.loads(lines[0])
        if head.get("record") != "meta":
            raise InvalidParameterError("JSONL metrics file must start with a meta record")
        payload: dict[str, Any] = dict(head["data"])
        for section in head.get("sections", []):
            payload[section] = {}
        for line in lines[1:]:
            record = json.loads(line)
            section = record.get("record")
            if section not in _SECTIONS:
                raise InvalidParameterError(f"unknown JSONL record kind {section!r}")
            payload.setdefault(section, {})[record["key"]] = record["data"]
        return payload
