"""Lightweight, dependency-free telemetry primitives.

A :class:`MetricsRegistry` owns named, labelled metrics of three kinds:

* :class:`Counter` — monotonically increasing totals (requests, rows, ...).
* :class:`Gauge` — last-write-wins instantaneous values.  ``gauge_fn``
  registers a *callback* gauge evaluated lazily at snapshot time, so hot
  paths that already maintain their own counters (the serving cache) are
  exported with **zero** per-event overhead.
* :class:`LatencyHistogram` — a streaming, log-bucketed latency histogram:
  O(1) bounded memory, O(log buckets) ``record`` (one ``bisect`` into a
  precomputed geometric edge table), and quantile readouts that are exact to
  within one bucket (~12% relative, 20 buckets per decade) — the resolution
  SLO gates need for p50/p95/p99 without retaining samples.

Instrumented layers follow one discipline: the *no-op default*.  Every
instrumentation point is either guarded by an ``is not None`` /
``registry.enabled`` check or records into :data:`NULL_REGISTRY`, whose
metric objects are inert singletons — so an uninstrumented hot path pays one
attribute load and a branch, nothing more.

Registries are process-local *sinks*, not model state: ``copy.deepcopy`` of
an object holding a registry reference (a served model checked out for a
copy-on-write update) carries the *same* registry along, and pickling — e.g.
shipping an estimator to a process-pool worker — degrades the reference to
the no-op registry rather than dragging locks across the boundary.

:func:`hit_rate` is the single shared hit-rate computation used by the
serving layer (``ServerCacheInfo.hit_rate`` and ``EstimatorServer.stats()``).
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_right
from contextlib import contextmanager
from time import perf_counter
from typing import Any, Callable, Iterator, Mapping, Sequence

from repro.core.errors import InvalidParameterError

__all__ = [
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "default_metrics",
    "set_default_metrics",
    "use_default_metrics",
    "hit_rate",
    "metric_key",
]

LabelsT = tuple[tuple[str, str], ...]


def hit_rate(hits: int, misses: int) -> float:
    """Fraction of requests answered from a cache (0.0 under zero traffic).

    The one shared definition of "hit rate" in the repo — the serving layer's
    ``ServerCacheInfo.hit_rate`` and ``EstimatorServer.stats()`` both defer
    here instead of re-deriving it.
    """
    total = hits + misses
    return hits / total if total else 0.0


def metric_key(name: str, labels: LabelsT) -> str:
    """Render ``name`` + sorted labels as one stable string key.

    ``"serve.requests{tenant=a,op=query}"`` — the key used in snapshots and
    exports, so two registries recording the same series produce comparable
    payloads.
    """
    if not labels:
        return name
    rendered = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{rendered}}}"


def _labels_tuple(labels: Mapping[str, object]) -> LabelsT:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing total (thread-safe)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelsT = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the total."""
        if amount < 0:
            raise InvalidParameterError("counters only increase; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict[str, Any]:
        return {"name": self.name, "labels": dict(self.labels), "value": self._value}


class Gauge:
    """A last-write-wins instantaneous value (thread-safe)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelsT = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict[str, Any]:
        return {"name": self.name, "labels": dict(self.labels), "value": self._value}


def _geometric_edges(
    low: float, high: float, per_decade: int
) -> tuple[float, ...]:
    decades = math.log10(high) - math.log10(low)
    steps = int(round(decades * per_decade))
    lo = math.log10(low)
    return tuple(10.0 ** (lo + i / per_decade) for i in range(steps + 1))


class LatencyHistogram:
    """Streaming log-bucketed histogram of positive values (seconds).

    Buckets are geometric with :data:`BUCKETS_PER_DECADE` buckets per decade
    between :data:`LOW` and :data:`HIGH`; values outside the range land in
    the underflow/overflow buckets, whose quantile representative is the
    exact observed min/max.  ``record`` is one ``bisect`` plus a lock-free
    handful of scalar updates; quantile readout walks the cumulative counts
    and returns the geometric midpoint of the bucket holding the requested
    rank, clamped into ``[min, max]`` — so it agrees with
    ``np.quantile(values, q, method="inverted_cdf")`` to within one bucket
    (a factor of :data:`GROWTH`), which the hypothesis suite pins.
    """

    #: Bucket range in seconds: 100 ns .. 100 s.
    LOW = 1e-7
    HIGH = 1e2
    BUCKETS_PER_DECADE = 20
    #: Relative width of one bucket — the quantile error bound.
    GROWTH = 10.0 ** (1.0 / BUCKETS_PER_DECADE)
    _EDGES = _geometric_edges(LOW, HIGH, BUCKETS_PER_DECADE)

    __slots__ = ("name", "labels", "_counts", "_count", "_sum", "_min", "_max", "_lock")

    def __init__(self, name: str, labels: LabelsT = ()) -> None:
        self.name = name
        self.labels = labels
        self._counts = [0] * (len(self._EDGES) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def record(self, value: float) -> None:
        """Fold one observation in (O(log buckets), bounded memory).

        ``record`` is deliberately lock-free: this is the serving hot path,
        and the 0.95x overhead gate budgets well under a microsecond per
        request — less than a lock round-trip.  Each update is one
        read-modify-write that the GIL makes atomic except across a
        preemption point, so concurrent recorders can in principle drop an
        occasional observation; that is the accepted telemetry trade-off
        (quantiles are estimates to one bucket anyway).  Readers
        (:meth:`quantile`, :meth:`snapshot`) take the lock so a readout is a
        single point-in-time view.
        """
        index = bisect_right(self._EDGES, value)
        self._counts[index] += 1
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile (exact to within one bucket).

        Returns 0.0 on an empty histogram.  The readout is the smallest
        bucket whose cumulative count reaches ``ceil(q * count)`` — the
        ``inverted_cdf`` quantile definition.
        """
        if not 0.0 <= q <= 1.0:
            raise InvalidParameterError("quantile must lie in [0, 1]")
        with self._lock:
            if self._count == 0:
                return 0.0
            counts = list(self._counts)
            low, high = self._min, self._max
        return self.quantile_from_counts(counts, q, low=low, high=high)

    @classmethod
    def quantile_from_counts(
        cls,
        counts: "Sequence[int] | Mapping[int, int] | Mapping[str, int]",
        q: float,
        *,
        low: float | None = None,
        high: float | None = None,
    ) -> float:
        """Quantile readout over raw bucket counts (same walk as :meth:`quantile`).

        ``counts`` is either the dense per-index count list or the sparse
        ``{index: count}`` mapping that :meth:`snapshot` emits (string keys
        accepted, so exported snapshots and collector bucket *deltas* feed in
        unchanged).  ``low``/``high`` clamp the readout — pass the observed
        min/max when known; they default to the bucket range.  Returns 0.0
        when the counts are empty.  This is the shared quantile definition
        the telemetry collector uses for windowed p50/p95/p99 rollups over
        summed interval bucket deltas.
        """
        if not 0.0 <= q <= 1.0:
            raise InvalidParameterError("quantile must lie in [0, 1]")
        if isinstance(counts, Mapping):
            dense = [0] * (len(cls._EDGES) + 1)
            for index, count in counts.items():
                dense[int(index)] += int(count)
            counts = dense
        low = cls.LOW if low is None else low
        high = cls.HIGH if high is None else high
        total = sum(counts)
        if total == 0:
            return 0.0
        rank = max(int(math.ceil(q * total)), 1)
        cumulative = 0
        for index, bucket in enumerate(counts):
            cumulative += bucket
            if cumulative >= rank:
                if index == 0:
                    value = low
                elif index >= len(cls._EDGES):
                    value = high
                else:
                    value = math.sqrt(cls._EDGES[index - 1] * cls._EDGES[index])
                return min(max(value, low), high)
        # Reachable only when a concurrent lock-free record left the bucket
        # sum momentarily behind the total: the max is the safe answer.
        return high  # pragma: no cover

    def quantiles(self, qs: tuple[float, ...] = (0.5, 0.95, 0.99)) -> dict[str, float]:
        """``{"p50": ..., "p95": ..., "p99": ...}`` convenience readout."""
        return {f"p{round(q * 100):d}": self.quantile(q) for q in qs}

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            counts = list(self._counts)
            count, total = self._count, self._sum
            low = self._min if count else None
            high = self._max if count else None
        payload: dict[str, Any] = {
            "name": self.name,
            "labels": dict(self.labels),
            "count": count,
            "sum": total,
            "min": low,
            "max": high,
            "buckets": {str(i): c for i, c in enumerate(counts) if c},
        }
        payload.update(
            {key: (value if count else None) for key, value in self.quantiles().items()}
        )
        return payload


class _Timer:
    """Context manager recording one elapsed wall-clock span."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: "LatencyHistogram | _NullHistogram") -> None:
        self._histogram = histogram

    def __enter__(self) -> "_Timer":
        self._start = perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self._histogram.record(perf_counter() - self._start)


class MetricsRegistry:
    """Process-local store of named, labelled metrics.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create (same name and
    labels → same object), ``timer`` wraps a histogram in a context manager,
    ``timed`` is the decorator form, ``gauge_fn`` registers a callback
    evaluated at snapshot time, and :meth:`snapshot` renders everything as
    one JSON-native dict that the :mod:`repro.obs.export` exporters
    round-trip losslessly.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, LatencyHistogram] = {}
        self._callbacks: dict[str, tuple[str, LabelsT, Callable[[], float]]] = {}

    # -- registries are shared sinks, not state ------------------------------
    def __deepcopy__(self, memo: dict) -> "MetricsRegistry":
        # A copy-on-write model checkout must keep recording into the SAME
        # sink; a registry is never part of model state.
        return self

    def __copy__(self) -> "MetricsRegistry":
        return self

    def __reduce__(self):
        # Registries do not cross process boundaries (locks don't pickle and
        # remote increments would be lost anyway): a pickled reference —
        # e.g. an estimator shipped to a process-pool shard worker —
        # degrades to the no-op registry.
        return (_null_registry, ())

    # -- get-or-create -------------------------------------------------------
    def _get(self, table: dict, factory: type, name: str, labels: Mapping) -> Any:
        key = metric_key(name, _labels_tuple(labels))
        metric = table.get(key)
        if metric is None:
            with self._lock:
                metric = table.get(key)
                if metric is None:
                    metric = factory(name, _labels_tuple(labels))
                    table[key] = metric
        return metric

    def counter(self, name: str, **labels: object) -> Counter:
        return self._get(self._counters, Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get(self._gauges, Gauge, name, labels)

    def histogram(self, name: str, **labels: object) -> LatencyHistogram:
        return self._get(self._histograms, LatencyHistogram, name, labels)

    def timer(self, name: str, **labels: object) -> _Timer:
        """``with registry.timer("persist.publish_seconds"): ...``"""
        return _Timer(self.histogram(name, **labels))

    def timed(self, name: str, **labels: object) -> Callable:
        """Decorator form of :meth:`timer` for whole-function hot paths."""
        histogram = self.histogram(name, **labels)

        def decorate(fn: Callable) -> Callable:
            def wrapper(*args: object, **kwargs: object):
                start = perf_counter()
                try:
                    return fn(*args, **kwargs)
                finally:
                    histogram.record(perf_counter() - start)

            wrapper.__name__ = getattr(fn, "__name__", "wrapped")
            wrapper.__doc__ = fn.__doc__
            return wrapper

        return decorate

    def gauge_fn(self, name: str, fn: Callable[[], float], **labels: object) -> None:
        """Register a callback gauge evaluated lazily at snapshot time.

        The zero-overhead exporter hook for layers that already keep their
        own counters: nothing is recorded per event, the callback is read
        when a snapshot is taken.
        """
        key = metric_key(name, _labels_tuple(labels))
        with self._lock:
            self._callbacks[key] = (name, _labels_tuple(labels), fn)

    # -- read side -----------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """All metrics as one JSON-native payload (exporter input)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
            callbacks = dict(self._callbacks)
        payload: dict[str, Any] = {
            "counters": {key: m.snapshot() for key, m in counters.items()},
            "gauges": {key: m.snapshot() for key, m in gauges.items()},
            "histograms": {key: m.snapshot() for key, m in histograms.items()},
        }
        for key, (name, labels, fn) in callbacks.items():
            payload["gauges"][key] = {
                "name": name,
                "labels": dict(labels),
                "value": float(fn()),
            }
        return payload

    def reset(self) -> None:
        """Drop recorded counters, gauges and histograms; keep callback gauges.

        The benchmark-phase / long-running-collector boundary: accumulated
        event series are cleared so the next phase starts from zero, while
        callback gauges registered with :meth:`gauge_fn` survive — they are
        *live views* onto their owner's state (the serving cache counters,
        the current generation), and dropping the registration would silently
        un-instrument a still-running server.  Because callbacks read live
        state, ``reset()`` does **not** zero what they report: to zero the
        serving counters behind ``serve.cache_hits``/``serve.cache_misses``,
        call :meth:`EstimatorServer.reset_stats` — the two resets compose
        (registry ``reset()`` for recorded series, server ``reset_stats()``
        for the counters its callbacks expose).  A
        :class:`~repro.obs.collector.TelemetryCollector` observing this
        registry sees the drop as a restart and clamps counter deltas at the
        new cumulative value rather than emitting negative rates.
        """
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


# ---------------------------------------------------------------------------
# The no-op default
# ---------------------------------------------------------------------------


class _NullMetric:
    """Inert counter/gauge singleton: every mutation is a no-op."""

    __slots__ = ()
    name = "null"
    labels: LabelsT = ()
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def snapshot(self) -> dict[str, Any]:
        return {}

    def __deepcopy__(self, memo: dict) -> "_NullMetric":
        return self


class _NullHistogram(_NullMetric):
    __slots__ = ()
    count = 0
    sum = 0.0
    mean = 0.0

    def record(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def quantiles(self, qs: tuple[float, ...] = (0.5, 0.95, 0.99)) -> dict[str, float]:
        return {}


_NULL_METRIC = _NullMetric()
_NULL_HISTOGRAM = _NullHistogram()


class _NullTimer:
    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc: object) -> None:
        pass


_NULL_TIMER = _NullTimer()


class NullRegistry:
    """The no-op registry: accepts every call, records nothing.

    Instrumented layers default to this, so telemetry costs one attribute
    load and a branch until a real :class:`MetricsRegistry` is wired in.
    """

    enabled = False

    def counter(self, name: str, **labels: object) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str, **labels: object) -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str, **labels: object) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def timer(self, name: str, **labels: object) -> _NullTimer:
        return _NULL_TIMER

    def timed(self, name: str, **labels: object) -> Callable:
        return lambda fn: fn

    def gauge_fn(self, name: str, fn: Callable[[], float], **labels: object) -> None:
        pass

    def snapshot(self) -> dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def reset(self) -> None:
        pass

    def __deepcopy__(self, memo: dict) -> "NullRegistry":
        return self

    def __copy__(self) -> "NullRegistry":
        return self

    def __reduce__(self):
        return (_null_registry, ())


NULL_REGISTRY = NullRegistry()


def _null_registry() -> NullRegistry:
    return NULL_REGISTRY


# ---------------------------------------------------------------------------
# Process-default registry (the CLI's --telemetry hook)
# ---------------------------------------------------------------------------

_default: "MetricsRegistry | None" = None
_default_lock = threading.Lock()


def default_metrics() -> "MetricsRegistry | NullRegistry":
    """The process-default registry (:data:`NULL_REGISTRY` until one is set).

    Instrumented constructors resolve ``metrics=None`` through this, so one
    :func:`set_default_metrics` / :func:`use_default_metrics` call
    instruments every layer built afterwards without threading a registry
    through each signature.
    """
    return _default if _default is not None else NULL_REGISTRY


def set_default_metrics(registry: "MetricsRegistry | None") -> None:
    """Install (or with ``None``, clear) the process-default registry."""
    global _default
    with _default_lock:
        _default = registry


@contextmanager
def use_default_metrics(registry: "MetricsRegistry | None") -> Iterator[None]:
    """Scoped :func:`set_default_metrics` (restores the previous default)."""
    global _default
    with _default_lock:
        previous = _default
        _default = registry
    try:
        yield
    finally:
        with _default_lock:
            _default = previous
