"""Static telemetry dashboard: collector series → self-contained HTML.

:func:`render_dashboard` turns a telemetry source — a live
:class:`~repro.obs.collector.TelemetryCollector`, its
:class:`~repro.obs.collector.TimeSeriesStore`, an exported series payload
dict, or a path to any exported series file (JSON/JSONL/CSV, resolved by
suffix) — into one HTML page with **zero third-party runtime
dependencies**: styling is inline CSS, charts are inline SVG sparklines, so
the file renders offline in any browser straight from disk.

The page shows one panel per series (sparkline of the rate for
counter/histogram series, of the value for gauges, plus trailing-window
rollup readouts: rate, mean, p50/p95/p99) and — when per-tenant SLO targets
are supplied — a tenant table grading each tenant's trailing request p99
against its target (``ok`` / ``breach``).
"""

from __future__ import annotations

import html
import pathlib
from typing import Any, Mapping

from repro.core.errors import InvalidParameterError
from repro.obs.collector import (
    TelemetryCollector,
    TimeSeriesStore,
    store_from_payload,
)
from repro.obs.export import exporter_for_path

__all__ = ["render_dashboard", "write_dashboard", "load_series"]

#: Histogram metric graded in the tenant SLO table.
_SLO_METRIC = "serve.request_seconds"

_STYLE = """
body { font-family: ui-monospace, 'SF Mono', Menlo, Consolas, monospace;
       margin: 2rem auto; max-width: 72rem; background: #11151c; color: #d8dee9; }
h1 { font-size: 1.3rem; } h2 { font-size: 1.05rem; margin-top: 2rem; }
.meta { color: #7b88a1; font-size: 0.85rem; }
table.slo { border-collapse: collapse; margin: 0.75rem 0 1.5rem; }
table.slo th, table.slo td { border: 1px solid #2e3440; padding: 0.35rem 0.8rem;
       text-align: right; font-size: 0.85rem; }
table.slo th { color: #7b88a1; font-weight: normal; }
td.ok { color: #a3be8c; } td.breach { color: #bf616a; font-weight: bold; }
.grid { display: grid; grid-template-columns: repeat(auto-fill, minmax(21rem, 1fr));
        gap: 0.9rem; }
.panel { border: 1px solid #2e3440; border-radius: 6px; padding: 0.7rem 0.9rem;
         background: #161b24; }
.panel .name { font-size: 0.8rem; color: #88c0d0; word-break: break-all; }
.panel .stats { font-size: 0.75rem; color: #7b88a1; margin-top: 0.35rem; }
.panel svg { width: 100%; height: 3.2rem; margin-top: 0.4rem; }
polyline { fill: none; stroke: #88c0d0; stroke-width: 1.5; }
"""


def load_series(path: "str | pathlib.Path") -> TimeSeriesStore:
    """Load an exported collector series file into a :class:`TimeSeriesStore`.

    The exporter is picked from the file suffix (JSON, JSONL, CSV — and
    parquet when pyarrow is installed), so the dashboard renders from any
    format the collector can export to.
    """
    payload = exporter_for_path(path).load(path)
    return store_from_payload(payload)


def _coerce_store(
    source: "TelemetryCollector | TimeSeriesStore | Mapping[str, Any] | str | pathlib.Path",
) -> TimeSeriesStore:
    if isinstance(source, TelemetryCollector):
        return source.store
    if isinstance(source, TimeSeriesStore):
        return source
    if isinstance(source, Mapping):
        return store_from_payload(source)
    if isinstance(source, (str, pathlib.Path)):
        return load_series(source)
    raise InvalidParameterError(
        "dashboard source must be a TelemetryCollector, TimeSeriesStore, "
        f"series payload mapping or path, got {type(source).__name__}"
    )


def _fmt(value: float | None) -> str:
    if value is None:
        return "—"
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 0.001:
        return f"{value:.3g}"
    return f"{value:.4g}"


def _sparkline(values: list[float], width: int = 320, height: int = 48) -> str:
    """Inline SVG polyline over ``values`` (autoscaled, newest rightmost)."""
    if not values:
        return ""
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    pad = 3.0
    step = (width - 2 * pad) / max(len(values) - 1, 1)
    coords = " ".join(
        f"{pad + i * step:.1f},"
        f"{height - pad - (value - low) / span * (height - 2 * pad):.1f}"
        for i, value in enumerate(values)
    )
    return (
        f'<svg viewBox="0 0 {width} {height}" preserveAspectRatio="none" '
        f'role="img"><polyline points="{coords}"/></svg>'
    )


def _panel(store: TimeSeriesStore, key: str, window: float | None) -> str:
    points = store.points(key)
    kind = points[-1].kind
    values = [p.value if kind == "gauge" else p.rate for p in points]
    rollup = store.rollup(key, window)
    stats: list[str] = [f"kind={kind}", f"points={len(points)}"]
    if kind == "gauge":
        stats.append(f"last={_fmt(points[-1].value)}")
        if rollup is not None and rollup.mean is not None:
            stats.append(f"mean={_fmt(rollup.mean)}")
    else:
        stats.append(f"rate={_fmt(rollup.rate if rollup else None)}/s")
        stats.append(f"total={_fmt(sum(p.delta for p in points))}")
    if kind == "histogram" and rollup is not None:
        stats += [
            f"mean={_fmt(rollup.mean)}s",
            f"p50={_fmt(rollup.p50)}s",
            f"p95={_fmt(rollup.p95)}s",
            f"p99={_fmt(rollup.p99)}s",
        ]
    return (
        '<div class="panel">'
        f'<div class="name">{html.escape(key)}</div>'
        f"{_sparkline(values)}"
        f'<div class="stats">{html.escape(" · ".join(stats))}</div>'
        "</div>"
    )


def _tenant_rows(
    store: TimeSeriesStore,
    slo: Mapping[str, float],
    window: float | None,
) -> list[str]:
    rows = []
    for tenant in sorted(slo):
        target = float(slo[tenant])
        key = f"{_SLO_METRIC}{{tenant={tenant}}}"
        p99 = store.window_quantile(key, 0.99, window)
        if p99 is None:
            status, css = "no data", "meta"
        elif p99 <= target:
            status, css = "ok", "ok"
        else:
            status, css = "breach", "breach"
        rows.append(
            "<tr>"
            f"<td>{html.escape(tenant)}</td>"
            f"<td>{_fmt(p99)}s</td>"
            f"<td>{_fmt(target)}s</td>"
            f'<td class="{css}">{status}</td>'
            "</tr>"
        )
    return rows


def render_dashboard(
    source: "TelemetryCollector | TimeSeriesStore | Mapping[str, Any] | str | pathlib.Path",
    *,
    title: str = "repro telemetry",
    slo: Mapping[str, float] | None = None,
    window: float | None = None,
) -> str:
    """Render a telemetry source as a self-contained HTML dashboard string.

    ``slo`` maps tenant name → p99 latency target (seconds) and adds the
    per-tenant SLO table; ``window`` restricts the rollup readouts (and the
    SLO grading) to the trailing window in seconds, default all retained
    points.
    """
    store = _coerce_store(source)
    keys = store.keys()
    parts = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        f"<title>{html.escape(title)}</title>",
        f"<style>{_STYLE}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        f'<div class="meta">{len(keys)} series · {len(store)} points'
        + (f" · trailing window {window:g}s" if window else "")
        + "</div>",
    ]
    if slo:
        parts.append("<h2>Tenant SLO status (trailing request p99)</h2>")
        parts.append(
            '<table class="slo"><tr><th>tenant</th><th>p99</th>'
            "<th>target</th><th>status</th></tr>"
        )
        parts.extend(_tenant_rows(store, slo, window))
        parts.append("</table>")
    parts.append("<h2>Series</h2>")
    if keys:
        parts.append('<div class="grid">')
        parts.extend(_panel(store, key, window) for key in keys)
        parts.append("</div>")
    else:
        parts.append('<div class="meta">no series recorded</div>')
    parts.append("</body></html>")
    return "".join(parts)


def write_dashboard(
    source: "TelemetryCollector | TimeSeriesStore | Mapping[str, Any] | str | pathlib.Path",
    path: "str | pathlib.Path",
    **kwargs: Any,
) -> pathlib.Path:
    """Render :func:`render_dashboard` to ``path`` (parents created)."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_dashboard(source, **kwargs))
    return path
