"""Telemetry time-series collection: snapshot diffing, ring buffers, rollups.

A :class:`MetricsRegistry` snapshot is a point-in-time blob of cumulative
totals.  This module turns consecutive snapshots into *series*:

* :class:`TelemetryCollector` samples a registry — on an explicit
  :meth:`~TelemetryCollector.tick` (deterministic tests, virtual-time
  simulator runs) or on a background thread at a configurable ``interval``
  (live processes) — and diffs each snapshot against the previous one into
  one :class:`SeriesPoint` per metric: counter deltas and rates, gauge
  values, histogram count/sum deltas with per-interval bucket deltas and
  quantile readouts.
* :class:`TimeSeriesStore` retains the points in per-series bounded ring
  buffers (oldest points evicted first) and answers **windowed rollups**
  over a trailing time window: rate, mean, and p50/p95/p99 — histogram
  quantiles are computed by summing the retained interval bucket deltas and
  walking the shared :meth:`LatencyHistogram.quantile_from_counts` readout,
  so a trailing-window p99 is exactly as accurate as the histogram itself.

The diffing contract, pinned by the hypothesis suite:

* counter deltas are never negative across monotone updates — a smaller
  cumulative value (a registry ``reset()``) is treated as a restart and the
  delta clamps to the new cumulative value;
* tick batching is invariant for counters — the summed deltas of two ticks
  equal the delta of one tick spanning the union of updates;
* ring-buffer eviction preserves the newest ``capacity`` points per series.

The first ``tick()`` establishes the baseline snapshot and emits no points
(there is no previous snapshot to diff against); every later tick emits one
point per metric present in the new snapshot.  ``tick(now=...)`` accepts an
explicit timestamp so virtual-time consumers (the traffic simulator) drive
the collector on their own clock; without one, ``time.monotonic()`` is used.

Subscribers registered with :meth:`~TelemetryCollector.subscribe` are
invoked after every tick — this is the hook the serving tier's
:class:`~repro.serve.admission.AdmissionController` uses to re-evaluate its
tail-driven shedding policy, closing the control loop.
"""

from __future__ import annotations

import math
import threading
import time
from bisect import bisect_left
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

from repro.core.errors import InvalidParameterError
from repro.obs.metrics import LabelsT, LatencyHistogram, metric_key

__all__ = [
    "SeriesPoint",
    "TimeSeriesStore",
    "TelemetryCollector",
    "WindowRollup",
    "series_payload",
    "store_from_payload",
]

#: Quantile readouts carried on every histogram point.
_QUANTILES = (0.5, 0.95, 0.99)


@dataclass(frozen=True)
class SeriesPoint:
    """One sampled interval of one metric series.

    ``value`` is the cumulative reading at the tick (counter total, gauge
    value, histogram count); ``delta`` is the change over the interval
    (clamped at the new cumulative value when the underlying metric
    restarted) and ``rate`` is ``delta / dt``.  Histogram points also carry
    ``total`` (the interval's summed observations), ``mean``
    (``total/delta``), the interval ``buckets`` deltas (sparse
    ``{index: count}``) and per-interval ``p50``/``p95``/``p99`` readouts;
    those fields are ``None`` on counter/gauge points.
    """

    time: float
    metric: str
    labels: LabelsT
    kind: str  # "counter" | "gauge" | "histogram"
    value: float
    delta: float
    rate: float
    total: float | None = None
    mean: float | None = None
    p50: float | None = None
    p95: float | None = None
    p99: float | None = None
    buckets: Mapping[str, int] | None = None

    @property
    def key(self) -> str:
        """The stable series key (``name{label=value,...}``)."""
        return metric_key(self.metric, self.labels)

    def to_record(self) -> dict[str, Any]:
        """Flat JSON-native record — one exporter row per point."""
        record: dict[str, Any] = {
            "time": self.time,
            "metric": self.metric,
            "labels": dict(self.labels),
            "kind": self.kind,
            "value": self.value,
            "delta": self.delta,
            "rate": self.rate,
        }
        if self.kind == "histogram":
            record.update(
                {
                    "total": self.total,
                    "mean": self.mean,
                    "p50": self.p50,
                    "p95": self.p95,
                    "p99": self.p99,
                    "buckets": dict(self.buckets or {}),
                }
            )
        return record

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "SeriesPoint":
        """Inverse of :meth:`to_record` (exporter load-back)."""
        labels = tuple(sorted((str(k), str(v)) for k, v in record["labels"].items()))
        buckets = record.get("buckets")
        return cls(
            time=float(record["time"]),
            metric=str(record["metric"]),
            labels=labels,
            kind=str(record["kind"]),
            value=float(record["value"]),
            delta=float(record["delta"]),
            rate=float(record["rate"]),
            total=record.get("total"),
            mean=record.get("mean"),
            p50=record.get("p50"),
            p95=record.get("p95"),
            p99=record.get("p99"),
            buckets=dict(buckets) if buckets is not None else None,
        )


@dataclass(frozen=True)
class WindowRollup:
    """Trailing-window aggregate of one series (see :meth:`TimeSeriesStore.rollup`)."""

    key: str
    window: float
    points: int
    delta: float
    rate: float
    mean: float | None
    p50: float | None
    p95: float | None
    p99: float | None


class TimeSeriesStore:
    """Bounded per-series ring buffers of :class:`SeriesPoint` with rollups.

    ``capacity`` bounds each series independently; appending to a full
    series evicts its oldest point, so a long-running collector holds the
    newest ``capacity`` intervals per metric in O(series × capacity) memory.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise InvalidParameterError("capacity must be positive")
        self.capacity = int(capacity)
        self._series: dict[str, deque[SeriesPoint]] = {}
        self._lock = threading.Lock()

    def append(self, point: SeriesPoint) -> None:
        """Add one point (oldest evicted once the series is at capacity)."""
        with self._lock:
            series = self._series.get(point.key)
            if series is None:
                series = deque(maxlen=self.capacity)
                self._series[point.key] = series
            series.append(point)

    def keys(self) -> list[str]:
        """All series keys, sorted."""
        with self._lock:
            return sorted(self._series)

    def points(self, key: str) -> list[SeriesPoint]:
        """The retained points of one series, oldest first."""
        with self._lock:
            return list(self._series.get(key, ()))

    def latest(self, key: str) -> SeriesPoint | None:
        """The newest point of one series (``None`` when empty/unknown)."""
        with self._lock:
            series = self._series.get(key)
            return series[-1] if series else None

    def __len__(self) -> int:
        """Total retained points across every series."""
        with self._lock:
            return sum(len(s) for s in self._series.values())

    def __iter__(self) -> Iterator[SeriesPoint]:
        """Every retained point, series-sorted then oldest first."""
        with self._lock:
            snapshot = [list(self._series[key]) for key in sorted(self._series)]
        for series in snapshot:
            yield from series

    # -- windowed rollups ------------------------------------------------------
    def _window_points(self, key: str, window: float | None) -> list[SeriesPoint]:
        points = self.points(key)
        if not points or window is None:
            return points
        if window <= 0:
            raise InvalidParameterError("window must be positive")
        cutoff = points[-1].time - window
        # Points are time-ordered; bisect on the timestamps.
        times = [p.time for p in points]
        return points[bisect_left(times, cutoff):]

    def rollup(self, key: str, window: float | None = None) -> WindowRollup | None:
        """Aggregate the trailing ``window`` seconds of one series.

        ``window=None`` rolls up everything retained.  ``rate`` is the
        summed delta over the covered time span (interval widths, including
        the first point's own ``delta/rate`` width, so a single point rolls
        up to its own rate); histogram ``mean`` and quantiles are computed
        from the summed interval totals and bucket deltas — gauge quantiles
        use the point values directly (``inverted_cdf`` rank).  Returns
        ``None`` for an unknown/empty series.
        """
        points = self._window_points(key, window)
        if not points:
            return None
        delta = sum(p.delta for p in points)
        span = points[-1].time - points[0].time
        # The first retained point covers the interval *ending* at its
        # timestamp; recover that width from its own rate so a one-point
        # window still reports a meaningful rate.
        first = points[0]
        lead = first.delta / first.rate if first.rate > 0 else 0.0
        span += lead
        rate = delta / span if span > 0 else 0.0
        kind = points[-1].kind
        mean = p50 = p95 = p99 = None
        if kind == "histogram":
            total = sum(p.total or 0.0 for p in points)
            count = delta
            mean = total / count if count else None
            merged: dict[int, int] = {}
            for point in points:
                for index, bucket in (point.buckets or {}).items():
                    merged[int(index)] = merged.get(int(index), 0) + int(bucket)
            if merged:
                p50, p95, p99 = (
                    LatencyHistogram.quantile_from_counts(merged, q)
                    for q in _QUANTILES
                )
        elif kind == "gauge":
            values = sorted(p.value for p in points)
            mean = sum(values) / len(values)

            def _q(q: float) -> float:
                rank = max(int(math.ceil(q * len(values))), 1)
                return values[rank - 1]

            p50, p95, p99 = (_q(q) for q in _QUANTILES)
        return WindowRollup(
            key=key,
            window=window if window is not None else span,
            points=len(points),
            delta=delta,
            rate=rate,
            mean=mean,
            p50=p50,
            p95=p95,
            p99=p99,
        )

    def window_rate(self, key: str, window: float | None = None) -> float:
        """Trailing-window rate (0.0 for an unknown/empty series)."""
        rollup = self.rollup(key, window)
        return rollup.rate if rollup is not None else 0.0

    def window_quantile(
        self, key: str, q: float, window: float | None = None
    ) -> float | None:
        """Trailing-window quantile (``None`` when the series has none).

        The admission controller's readout: for histogram series this merges
        the retained interval bucket deltas and walks the shared
        log-bucketed quantile, so a trailing p99 is exact to within one
        geometric bucket of the true windowed sample quantile.
        """
        points = self._window_points(key, window)
        if not points:
            return None
        kind = points[-1].kind
        if kind == "histogram":
            merged: dict[int, int] = {}
            for point in points:
                for index, bucket in (point.buckets or {}).items():
                    merged[int(index)] = merged.get(int(index), 0) + int(bucket)
            if not merged:
                return None
            return LatencyHistogram.quantile_from_counts(merged, q)
        values = sorted(p.value for p in points)
        rank = max(int(math.ceil(q * len(values))), 1)
        return values[rank - 1]


def series_payload(
    store: TimeSeriesStore, *, interval: float | None = None, **meta: Any
) -> dict[str, Any]:
    """Render a store as one JSON-native payload (exporter input).

    One flat record per point under ``"points"``, plus the sampling
    ``interval`` and any extra ``meta`` keys — the shape every exporter
    (JSON, JSONL, CSV, parquet) round-trips and the dashboard renders.
    """
    payload: dict[str, Any] = dict(meta)
    if interval is not None:
        payload["interval"] = float(interval)
    payload["capacity"] = store.capacity
    payload["points"] = [point.to_record() for point in store]
    return payload


def store_from_payload(payload: Mapping[str, Any]) -> TimeSeriesStore:
    """Rebuild a :class:`TimeSeriesStore` from a :func:`series_payload` dict."""
    try:
        records = payload["points"]
    except KeyError:
        raise InvalidParameterError(
            "not a collector series payload: missing 'points'"
        ) from None
    store = TimeSeriesStore(capacity=int(payload.get("capacity", 4096)))
    for record in records:
        store.append(SeriesPoint.from_record(record))
    return store


@dataclass
class _HistogramBaseline:
    count: int = 0
    total: float = 0.0
    buckets: dict[str, int] = field(default_factory=dict)


class TelemetryCollector:
    """Sample a registry on an interval and diff snapshots into rate series.

    Parameters
    ----------
    registry:
        Anything with a ``snapshot()`` returning the
        :meth:`MetricsRegistry.snapshot` payload shape.
    interval:
        Sampling period in seconds — used by the background thread
        (:meth:`start`/:meth:`stop`) and recorded in exported payloads.
        Explicit :meth:`tick` calls may use any cadence.
    capacity:
        Per-series ring-buffer bound of the backing :class:`TimeSeriesStore`.
    clock:
        Timestamp source when ``tick(now=None)`` (default
        ``time.monotonic``); virtual-time consumers pass ``now`` explicitly
        instead.
    """

    def __init__(
        self,
        registry: Any,
        interval: float = 1.0,
        capacity: int = 4096,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if interval <= 0:
            raise InvalidParameterError("interval must be positive")
        self.registry = registry
        self.interval = float(interval)
        self.store = TimeSeriesStore(capacity=capacity)
        self._clock = clock
        self._lock = threading.Lock()
        self._last_time: float | None = None
        self._counters: dict[str, float] = {}
        self._histograms: dict[str, _HistogramBaseline] = {}
        self._subscribers: list[Callable[["TelemetryCollector", float], None]] = []
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    @property
    def last_tick(self) -> float | None:
        """Timestamp of the latest tick (``None`` before the baseline)."""
        return self._last_time

    # -- subscriptions ---------------------------------------------------------
    def subscribe(self, fn: Callable[["TelemetryCollector", float], None]) -> None:
        """Call ``fn(collector, now)`` after every tick (baseline included).

        The control-loop hook: the admission controller subscribes its
        ``update`` so every fresh sample immediately re-evaluates the
        shedding policy.
        """
        self._subscribers.append(fn)

    # -- sampling --------------------------------------------------------------
    def tick(self, now: float | None = None) -> list[SeriesPoint]:
        """Take one sample: snapshot, diff, retain; returns the new points.

        The first call records the baseline and returns ``[]``.  ``now``
        must be strictly greater than the previous tick's timestamp.
        """
        if now is None:
            now = self._clock()
        with self._lock:
            points = self._tick_locked(float(now))
        for point in points:
            self.store.append(point)
        for subscriber in list(self._subscribers):
            subscriber(self, float(now))
        return points

    def _tick_locked(self, now: float) -> list[SeriesPoint]:
        snapshot = self.registry.snapshot()
        last = self._last_time
        if last is not None and now <= last:
            raise InvalidParameterError(
                f"tick time {now} must advance past the previous tick {last}"
            )
        baseline = last is None
        dt = (now - last) if last is not None else self.interval
        points: list[SeriesPoint] = []

        counters: dict[str, float] = {}
        for key, data in snapshot.get("counters", {}).items():
            value = float(data["value"])
            counters[key] = value
            if baseline:
                continue
            previous = self._counters.get(key, 0.0)
            # A cumulative value below the baseline means the metric was
            # dropped and recreated (registry reset): restart from zero
            # rather than emitting a negative delta.
            delta = value - previous if value >= previous else value
            points.append(
                SeriesPoint(
                    time=now,
                    metric=str(data["name"]),
                    labels=_labels(data),
                    kind="counter",
                    value=value,
                    delta=delta,
                    rate=delta / dt,
                )
            )
        self._counters = counters

        if not baseline:
            for key, data in snapshot.get("gauges", {}).items():
                value = float(data["value"])
                points.append(
                    SeriesPoint(
                        time=now,
                        metric=str(data["name"]),
                        labels=_labels(data),
                        kind="gauge",
                        value=value,
                        delta=0.0,
                        rate=0.0,
                    )
                )

        histograms: dict[str, _HistogramBaseline] = {}
        for key, data in snapshot.get("histograms", {}).items():
            count = int(data["count"])
            total = float(data["sum"])
            buckets = {str(k): int(v) for k, v in data.get("buckets", {}).items()}
            histograms[key] = _HistogramBaseline(count, total, buckets)
            if baseline:
                continue
            previous = self._histograms.get(key, _HistogramBaseline())
            if count < previous.count:  # restarted histogram: diff against zero
                previous = _HistogramBaseline()
            delta = count - previous.count
            total_delta = total - previous.total
            bucket_deltas = {
                index: bucket - previous.buckets.get(index, 0)
                for index, bucket in buckets.items()
                if bucket - previous.buckets.get(index, 0)
            }
            quantiles = (
                {
                    f"p{round(q * 100):d}": LatencyHistogram.quantile_from_counts(
                        bucket_deltas, q
                    )
                    for q in _QUANTILES
                }
                if bucket_deltas
                else {}
            )
            points.append(
                SeriesPoint(
                    time=now,
                    metric=str(data["name"]),
                    labels=_labels(data),
                    kind="histogram",
                    value=float(count),
                    delta=float(delta),
                    rate=delta / dt,
                    total=total_delta,
                    mean=(total_delta / delta) if delta else None,
                    p50=quantiles.get("p50"),
                    p95=quantiles.get("p95"),
                    p99=quantiles.get("p99"),
                    buckets=bucket_deltas,
                )
            )
        self._histograms = histograms
        self._last_time = now
        return points

    # -- background sampling ---------------------------------------------------
    def start(self) -> "TelemetryCollector":
        """Begin background sampling every ``interval`` seconds (daemon thread).

        The baseline snapshot is taken synchronously before the thread
        starts, so the first background tick already emits points.  Returns
        ``self`` for chaining; idempotent while running.
        """
        with self._lock:
            if self._thread is not None:
                return self
            if self._last_time is None:
                self._tick_locked(self._clock())
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="telemetry-collector", daemon=True
            )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.tick()

    def stop(self, final_tick: bool = True) -> None:
        """Stop the background thread (one final sample first by default)."""
        with self._lock:
            thread = self._thread
            self._thread = None
        if thread is None:
            return
        self._stop.set()
        thread.join()
        if final_tick:
            now = self._clock()
            if self._last_time is None or now > self._last_time:
                self.tick(now)

    def __enter__(self) -> "TelemetryCollector":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- export ----------------------------------------------------------------
    def series_payload(self, **meta: Any) -> dict[str, Any]:
        """The retained series as one JSON-native payload (exporter input)."""
        return series_payload(self.store, interval=self.interval, **meta)


def _labels(data: Mapping[str, Any]) -> LabelsT:
    return tuple(sorted((str(k), str(v)) for k, v in data.get("labels", {}).items()))
