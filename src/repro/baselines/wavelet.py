"""Haar-wavelet histogram synopsis.

The wavelet synopsis is the classical compressed-histogram competitor from
the approximate query processing literature: build a fine-grained equi-width
frequency vector per attribute, take its (normalised) Haar wavelet transform
and keep only the ``coefficients`` largest-magnitude coefficients.  Range
selectivities are answered from the reconstructed (approximate) frequency
vector; attributes are combined with the independence assumption, exactly
like the other per-attribute baselines.

The Haar transform is implemented directly (no external wavelet library) so
the synopsis is self-contained and its space accounting is explicit: each
kept coefficient costs an (index, value) pair.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.core.estimator import FLOAT_BYTES, SelectivityEstimator, register_estimator
from repro.baselines.histogram import Histogram1D
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imported for type annotations only (avoids a package cycle)
    from repro.engine.table import Table

__all__ = ["haar_transform", "inverse_haar_transform", "top_k_coefficients", "WaveletHistogram"]


def haar_transform(values: np.ndarray) -> np.ndarray:
    """Orthonormal Haar wavelet transform of a power-of-two-length vector."""
    values = np.asarray(values, dtype=float)
    n = values.size
    if n == 0:
        return values.copy()
    if n & (n - 1):
        raise InvalidParameterError("haar_transform requires a power-of-two length")
    output = values.copy()
    length = n
    while length > 1:
        half = length // 2
        evens = output[:length:2].copy()
        odds = output[1:length:2].copy()
        output[:half] = (evens + odds) / math.sqrt(2.0)
        output[half:length] = (evens - odds) / math.sqrt(2.0)
        length = half
    return output


def inverse_haar_transform(coefficients: np.ndarray) -> np.ndarray:
    """Inverse of :func:`haar_transform`."""
    coefficients = np.asarray(coefficients, dtype=float)
    n = coefficients.size
    if n == 0:
        return coefficients.copy()
    if n & (n - 1):
        raise InvalidParameterError("inverse_haar_transform requires a power-of-two length")
    output = coefficients.copy()
    length = 2
    while length <= n:
        half = length // 2
        averages = output[:half].copy()
        details = output[half:length].copy()
        output[:length:2] = (averages + details) / math.sqrt(2.0)
        output[1:length:2] = (averages - details) / math.sqrt(2.0)
        length *= 2
    return output


def top_k_coefficients(coefficients: np.ndarray, k: int) -> np.ndarray:
    """Zero out all but the ``k`` largest-magnitude coefficients (copy)."""
    coefficients = np.asarray(coefficients, dtype=float)
    if k < 0:
        raise InvalidParameterError("k must be non-negative")
    result = np.zeros_like(coefficients)
    if k == 0 or coefficients.size == 0:
        return result
    k = min(k, coefficients.size)
    keep = np.argpartition(np.abs(coefficients), -k)[-k:]
    result[keep] = coefficients[keep]
    return result


@register_estimator("wavelet")
class WaveletHistogram(SelectivityEstimator):
    """Per-attribute Haar wavelet synopsis with the independence assumption.

    Parameters
    ----------
    resolution:
        Length of the underlying fine-grained frequency vector per attribute
        (rounded up to a power of two).
    coefficients:
        Number of wavelet coefficients retained per attribute — the space
        knob of the synopsis.
    """

    name = "wavelet"

    def __init__(self, resolution: int = 256, coefficients: int = 32) -> None:
        super().__init__()
        if resolution < 2:
            raise InvalidParameterError("resolution must be at least 2")
        if coefficients < 1:
            raise InvalidParameterError("coefficients must be positive")
        self.resolution = 1 << (int(resolution) - 1).bit_length()
        self.coefficients = int(coefficients)
        self._histograms: dict[str, Histogram1D] = {}

    def fit(self, table: Table, columns: Sequence[str] | None = None) -> "WaveletHistogram":
        columns = self._resolve_columns(table, columns)
        self._histograms = {}
        for column in columns:
            self._histograms[column] = self._build_column(table.column(column))
        self._mark_fitted(columns, table.row_count)
        return self

    def _build_column(self, values: np.ndarray) -> Histogram1D:
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            edges = np.linspace(0.0, 1.0, self.resolution + 1)
            return Histogram1D(edges, np.zeros(self.resolution))
        low = float(values.min())
        high = float(values.max())
        if high <= low:
            high = low + 1.0
        edges = np.linspace(low, high, self.resolution + 1)
        counts, _ = np.histogram(values, bins=edges)
        transformed = haar_transform(counts.astype(float))
        compressed = top_k_coefficients(transformed, self.coefficients)
        reconstructed = np.maximum(inverse_haar_transform(compressed), 0.0)
        # Renormalise so the synopsis still represents every row.
        total = reconstructed.sum()
        if total > 0:
            reconstructed *= counts.sum() / total
        return Histogram1D(edges, reconstructed)

    def histogram(self, column: str) -> Histogram1D:
        """Reconstructed (approximate) histogram for ``column``."""
        self._require_fitted()
        return self._histograms[column]

    # -- persistence -----------------------------------------------------------
    def _config_params(self) -> dict:
        # ``resolution`` is already rounded up to a power of two, so feeding
        # it back through the constructor is a fixed point.
        return {"resolution": self.resolution, "coefficients": self.coefficients}

    def _state(self) -> tuple[dict, dict]:
        arrays: dict[str, np.ndarray] = {}
        for i, column in enumerate(self._columns):
            histogram = self._histograms[column]
            arrays[f"h{i}_edges"] = histogram.edges
            arrays[f"h{i}_counts"] = histogram.counts
        return arrays, {}

    def _restore_state(self, arrays, meta) -> None:
        self._histograms = {
            column: Histogram1D(arrays[f"h{i}_edges"], arrays[f"h{i}_counts"])
            for i, column in enumerate(self._columns)
        }

    def _estimate_batch(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        # Independence assumption: product of per-attribute selectivities from
        # the reconstructed histograms; attributes no query constrains
        # contribute a factor of exactly 1 and are skipped.
        selectivity = np.ones(lows.shape[0])
        for d, column in enumerate(self._columns):
            if np.isneginf(lows[:, d]).all() and np.isposinf(highs[:, d]).all():
                continue
            selectivity *= self._histograms[column].selectivity_batch(lows[:, d], highs[:, d])
        return selectivity

    def memory_bytes(self) -> int:
        self._require_fitted()
        # Each retained coefficient costs an (index, value) pair; domain
        # boundaries cost two floats per attribute.
        per_attribute = 2 * self.coefficients + 2
        return int(per_attribute * len(self._columns) * FLOAT_BYTES)
