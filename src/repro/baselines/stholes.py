"""Self-tuning multi-dimensional histogram (STGrid-style, feedback driven).

:class:`SelfTuningHistogram` is the feedback baseline the feedback-driven ADE
is compared against (Fig. 6).  It keeps a dense multi-dimensional grid (like
:class:`~repro.baselines.multidim.GridHistogram`) but its cell frequencies
are *learned from query feedback* rather than built from a data scan:

* at fit time the grid starts uniform (or is seeded from a small sample);
* every observed ``(query, true_fraction)`` pair redistributes frequency so
  the cells overlapping the query reproduce the observed mass, using a
  damped multiplicative update (the STGrid "refinement" step);
* frequencies are renormalised so the histogram always describes a
  probability distribution.

This is a faithful simplification of the self-tuning histogram family
(STGrid / STHoles): it captures the essential behaviour — accuracy improves
exactly where the workload queries — without the bucket-restructuring
machinery that STHoles adds.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.baselines.multidim import grid_axis_coverage, grid_box_masses
from repro.core.errors import InvalidParameterError
from repro.core.estimator import FLOAT_BYTES, FeedbackEstimator, register_estimator
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imported for type annotations only (avoids a package cycle)
    from repro.engine.table import Table
from repro.workload.queries import RangeQuery

__all__ = ["SelfTuningHistogram"]


@register_estimator("st_histogram")
class SelfTuningHistogram(FeedbackEstimator):
    """Feedback-refined dense grid histogram.

    Parameters
    ----------
    cells_per_dim:
        Grid resolution along every attribute.
    learning_rate:
        Damping of the multiplicative refinement step in ``(0, 1]``.
    seed_sample:
        Number of rows sampled at fit time to seed the grid.  ``0`` starts
        from the uniform distribution, which is the pure "learn only from
        feedback" configuration used in Fig. 6.
    seed:
        Seed for the optional seeding sample.
    """

    name = "st_histogram"

    def __init__(
        self,
        cells_per_dim: int = 16,
        learning_rate: float = 0.5,
        seed_sample: int = 0,
        seed: int | None = 0,
    ) -> None:
        super().__init__()
        if cells_per_dim < 1:
            raise InvalidParameterError("cells_per_dim must be positive")
        if not 0.0 < learning_rate <= 1.0:
            raise InvalidParameterError("learning_rate must lie in (0, 1]")
        if seed_sample < 0:
            raise InvalidParameterError("seed_sample must be non-negative")
        self.cells_per_dim = int(cells_per_dim)
        self.learning_rate = float(learning_rate)
        self.seed_sample = int(seed_sample)
        self.seed = seed

        self._low = np.empty(0)
        self._high = np.empty(0)
        self._cells = np.empty(0)
        self._feedback_count = 0

    # -- lifecycle ---------------------------------------------------------
    def fit(self, table: Table, columns: Sequence[str] | None = None) -> "SelfTuningHistogram":
        columns = self._resolve_columns(table, columns)
        dims = len(columns)
        domain = table.domain(columns)
        self._low = np.array([domain[c][0] for c in columns], dtype=float)
        self._high = np.array([domain[c][1] for c in columns], dtype=float)
        span = self._high - self._low
        span[span <= 0] = 1.0
        self._high = self._low + span

        cells = self.cells_per_dim**dims
        self._cells = np.full(cells, 1.0 / cells)
        if self.seed_sample > 0 and table.row_count > 0:
            sample = table.sample(self.seed_sample, np.random.default_rng(self.seed))
            data = sample.columns(columns)
            edges = [
                np.linspace(self._low[d], self._high[d], self.cells_per_dim + 1)
                for d in range(dims)
            ]
            counts, _ = np.histogramdd(np.clip(data, self._low, self._high), bins=edges)
            counts = counts.astype(float).ravel() + 1e-6
            self._cells = counts / counts.sum()
        self._feedback_count = 0
        self._mark_fitted(columns, table.row_count)
        return self

    @property
    def feedback_count(self) -> int:
        """Number of feedback observations applied so far."""
        return self._feedback_count

    # -- persistence -----------------------------------------------------------
    def _config_params(self) -> dict:
        return {
            "cells_per_dim": self.cells_per_dim,
            "learning_rate": self.learning_rate,
            "seed_sample": self.seed_sample,
            "seed": self.seed,
        }

    def _state(self) -> tuple[dict, dict]:
        arrays = {"low": self._low, "high": self._high, "cells": self._cells}
        return arrays, {"feedback_count": self._feedback_count}

    def _restore_state(self, arrays, meta) -> None:
        self._low = np.asarray(arrays["low"], dtype=float)
        self._high = np.asarray(arrays["high"], dtype=float)
        self._cells = np.asarray(arrays["cells"], dtype=float)
        self._feedback_count = int(meta["feedback_count"])

    def cell_frequencies(self) -> np.ndarray:
        """Current cell frequencies reshaped to the grid shape (copy)."""
        self._require_fitted()
        dims = len(self._columns)
        return self._cells.reshape((self.cells_per_dim,) * dims).copy()

    def memory_bytes(self) -> int:
        self._require_fitted()
        return int((self._cells.size + 2 * len(self._columns)) * FLOAT_BYTES)

    # -- geometry helpers ---------------------------------------------------
    def _coverage_weights(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Fraction of every grid cell covered by the query box (flat array)."""
        dims = len(self._columns)
        per_dim = [
            grid_axis_coverage(
                lows[d : d + 1], highs[d : d + 1], self._low[d], self._high[d], self.cells_per_dim
            )[0]
            for d in range(dims)
        ]
        weights = per_dim[0]
        for d in range(1, dims):
            weights = np.multiply.outer(weights, per_dim[d])
        return weights.ravel()

    # -- estimation and feedback -----------------------------------------------
    def _estimate_batch(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        return grid_box_masses(
            self._cells, self._low, self._high, self.cells_per_dim, lows, highs
        )

    def feedback(self, query: RangeQuery, true_fraction: float) -> None:
        """STGrid refinement: move mass so the grid reproduces the observation."""
        self._require_fitted()
        if not 0.0 <= true_fraction <= 1.0:
            raise InvalidParameterError("true_fraction must lie in [0, 1]")
        lows, highs = self._query_bounds(query)
        weights = self._coverage_weights(lows, highs)
        estimated = float(np.dot(weights, self._cells))
        inside_mass = estimated
        outside_mass = max(1.0 - inside_mass, 0.0)

        target_inside = true_fraction
        # Damped target: move only a learning_rate fraction of the way.
        target_inside = inside_mass + self.learning_rate * (target_inside - inside_mass)
        target_inside = min(max(target_inside, 0.0), 1.0)

        if inside_mass > 1e-12:
            inside_scale = target_inside / inside_mass
        else:
            inside_scale = 0.0
        if outside_mass > 1e-12:
            outside_scale = (1.0 - target_inside) / outside_mass
        else:
            outside_scale = 0.0

        inside_part = self._cells * weights
        outside_part = self._cells * (1.0 - weights)
        if inside_mass <= 1e-12 and target_inside > 0.0:
            # The model currently assigns (almost) no mass to the queried
            # region: seed it uniformly over the covered cells.
            covered = weights / max(weights.sum(), 1e-12)
            inside_part = covered * target_inside
            outside_part = outside_part * outside_scale if outside_mass > 1e-12 else outside_part
        else:
            inside_part = inside_part * inside_scale
            outside_part = outside_part * outside_scale
        cells = inside_part + outside_part
        total = cells.sum()
        if total > 0:
            cells /= total
        self._cells = cells
        self._feedback_count += 1
