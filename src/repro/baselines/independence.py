"""Attribute-value-independence (AVI) parametric baseline.

:class:`IndependenceEstimator` is the cheapest synopsis a system can keep:
per attribute it stores only the minimum and maximum (and optionally assumes
a normal distribution from the mean and standard deviation).  Selectivities
are the product of per-attribute interval fractions under the chosen
per-attribute model — the textbook "System R" style estimate.  It serves as
the floor baseline in the accuracy experiments and as the "bad estimator"
in the optimizer-impact experiment (Fig. 8).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np
from scipy import special

from repro.core.errors import InvalidParameterError
from repro.core.estimator import FLOAT_BYTES, SelectivityEstimator, register_estimator
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imported for type annotations only (avoids a package cycle)
    from repro.engine.table import Table
from repro.workload.queries import RangeQuery

__all__ = ["IndependenceEstimator"]

_SQRT2 = math.sqrt(2.0)


@register_estimator("independence")
class IndependenceEstimator(SelectivityEstimator):
    """Uniform- or normal-per-attribute AVI estimator.

    Parameters
    ----------
    model:
        ``"uniform"`` assumes each attribute is uniform on ``[min, max]``;
        ``"normal"`` assumes a normal distribution with the column's mean and
        standard deviation.
    """

    name = "independence"

    def __init__(self, model: str = "uniform") -> None:
        super().__init__()
        if model not in ("uniform", "normal"):
            raise InvalidParameterError("model must be 'uniform' or 'normal'")
        self.model = model
        self._low: dict[str, float] = {}
        self._high: dict[str, float] = {}
        self._mean: dict[str, float] = {}
        self._std: dict[str, float] = {}

    def fit(self, table: Table, columns: Sequence[str] | None = None) -> "IndependenceEstimator":
        columns = self._resolve_columns(table, columns)
        self._low, self._high, self._mean, self._std = {}, {}, {}, {}
        for column in columns:
            stats = table.stats(column)
            self._low[column] = stats.minimum if stats.count else 0.0
            self._high[column] = stats.maximum if stats.count else 1.0
            self._mean[column] = stats.mean if stats.count else 0.5
            self._std[column] = stats.std if stats.count and stats.std > 0 else 1e-9
        self._mark_fitted(columns, table.row_count)
        return self

    def estimate(self, query: RangeQuery) -> float:
        self._query_bounds(query)
        selectivity = 1.0
        for attribute in query.attributes:
            interval = query[attribute]
            selectivity *= self._attribute_fraction(attribute, interval.low, interval.high)
        return self._clip_fraction(selectivity)

    def _attribute_fraction(self, attribute: str, low: float, high: float) -> float:
        if high < low:
            return 0.0
        if self.model == "uniform":
            domain_low = self._low[attribute]
            domain_high = self._high[attribute]
            width = domain_high - domain_low
            if width <= 0:
                return 1.0 if low <= domain_low <= high else 0.0
            covered = min(high, domain_high) - max(low, domain_low)
            return max(covered, 0.0) / width
        mean = self._mean[attribute]
        std = self._std[attribute]
        upper = special.erf((high - mean) / (std * _SQRT2))
        lower = special.erf((low - mean) / (std * _SQRT2))
        return float(0.5 * (upper - lower))

    def memory_bytes(self) -> int:
        self._require_fitted()
        per_attribute = 4  # min, max, mean, std
        return int(per_attribute * len(self._columns) * FLOAT_BYTES)
