"""Attribute-value-independence (AVI) parametric baseline.

:class:`IndependenceEstimator` is the cheapest synopsis a system can keep:
per attribute it stores only the minimum and maximum (and optionally assumes
a normal distribution from the mean and standard deviation).  Selectivities
are the product of per-attribute interval fractions under the chosen
per-attribute model — the textbook "System R" style estimate.  It serves as
the floor baseline in the accuracy experiments and as the "bad estimator"
in the optimizer-impact experiment (Fig. 8).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy import special

from repro.core.errors import InvalidParameterError
from repro.core.estimator import FLOAT_BYTES, SelectivityEstimator, register_estimator
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imported for type annotations only (avoids a package cycle)
    from repro.engine.table import Table

__all__ = ["IndependenceEstimator"]


@register_estimator("independence")
class IndependenceEstimator(SelectivityEstimator):
    """Uniform- or normal-per-attribute AVI estimator.

    Parameters
    ----------
    model:
        ``"uniform"`` assumes each attribute is uniform on ``[min, max]``;
        ``"normal"`` assumes a normal distribution with the column's mean and
        standard deviation.
    """

    name = "independence"

    # State-merge via sufficient statistics: min/max combine exactly, the
    # mean/std combine through weighted moments.  The moment recombination
    # differs from a single-pass np.mean/np.std only in float summation
    # order, so the merge is exact up to rounding — not bitwise.
    supports_merge = True
    merge_lossless = True
    merge_exact = False

    def __init__(self, model: str = "uniform") -> None:
        super().__init__()
        if model not in ("uniform", "normal"):
            raise InvalidParameterError("model must be 'uniform' or 'normal'")
        self.model = model
        self._low: dict[str, float] = {}
        self._high: dict[str, float] = {}
        self._mean: dict[str, float] = {}
        self._std: dict[str, float] = {}

    def fit(self, table: Table, columns: Sequence[str] | None = None) -> "IndependenceEstimator":
        columns = self._resolve_columns(table, columns)
        self._low, self._high, self._mean, self._std = {}, {}, {}, {}
        for column in columns:
            stats = table.stats(column)
            self._low[column] = stats.minimum if stats.count else 0.0
            self._high[column] = stats.maximum if stats.count else 1.0
            self._mean[column] = stats.mean if stats.count else 0.5
            self._std[column] = stats.std if stats.count and stats.std > 0 else 1e-9
        self._mark_fitted(columns, table.row_count)
        return self

    def merge_state(
        self, shards: Sequence[SelectivityEstimator]
    ) -> "IndependenceEstimator":
        peers = self._require_merge_peers(shards)
        columns = peers[0].columns
        populated = [p for p in peers if p.row_count > 0]
        weights = np.array([p.row_count for p in populated], dtype=float)
        total = weights.sum()
        self._low, self._high, self._mean, self._std = {}, {}, {}, {}
        for column in columns:
            if total <= 0:
                self._low[column], self._high[column] = 0.0, 1.0
                self._mean[column], self._std[column] = 0.5, 1e-9
                continue
            self._low[column] = min(p._low[column] for p in populated)
            self._high[column] = max(p._high[column] for p in populated)
            means = np.array([p._mean[column] for p in populated])
            stds = np.array([p._std[column] for p in populated])
            mean = float((weights * means).sum() / total)
            # E[x^2] combines linearly; recover the pooled std from it.
            second = float((weights * (stds**2 + means**2)).sum() / total)
            std = float(np.sqrt(max(second - mean**2, 0.0)))
            self._mean[column] = mean
            self._std[column] = std if std > 0 else 1e-9
        self._mark_fitted(columns, int(total))
        return self

    # -- persistence -----------------------------------------------------------
    def _config_params(self) -> dict:
        return {"model": self.model}

    def _state(self) -> tuple[dict, dict]:
        columns = self._columns
        arrays = {
            "low": np.array([self._low[c] for c in columns], dtype=float),
            "high": np.array([self._high[c] for c in columns], dtype=float),
            "mean": np.array([self._mean[c] for c in columns], dtype=float),
            "std": np.array([self._std[c] for c in columns], dtype=float),
        }
        return arrays, {}

    def _restore_state(self, arrays, meta) -> None:
        columns = self._columns
        self._low = {c: float(arrays["low"][i]) for i, c in enumerate(columns)}
        self._high = {c: float(arrays["high"][i]) for i, c in enumerate(columns)}
        self._mean = {c: float(arrays["mean"][i]) for i, c in enumerate(columns)}
        self._std = {c: float(arrays["std"][i]) for i, c in enumerate(columns)}

    def _estimate_batch(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        # AVI: product of per-attribute fractions; attributes no query
        # constrains contribute a factor of exactly 1 and are skipped.
        selectivity = np.ones(lows.shape[0])
        for d, column in enumerate(self._columns):
            if np.isneginf(lows[:, d]).all() and np.isposinf(highs[:, d]).all():
                continue
            selectivity *= self._attribute_fractions(column, lows[:, d], highs[:, d])
        return selectivity

    def _attribute_fractions(
        self, attribute: str, lows: np.ndarray, highs: np.ndarray
    ) -> np.ndarray:
        if self.model == "uniform":
            domain_low = self._low[attribute]
            domain_high = self._high[attribute]
            width = domain_high - domain_low
            if width <= 0:
                fractions = ((lows <= domain_low) & (domain_low <= highs)).astype(float)
            else:
                covered = np.minimum(highs, domain_high) - np.maximum(lows, domain_low)
                fractions = np.maximum(covered, 0.0) / width
        else:
            mean = self._mean[attribute]
            std = self._std[attribute]
            fractions = special.ndtr((highs - mean) / std) - special.ndtr(
                (lows - mean) / std
            )
        return np.where(highs < lows, 0.0, fractions)

    def memory_bytes(self) -> int:
        self._require_fitted()
        per_attribute = 4  # min, max, mean, std
        return int(per_attribute * len(self._columns) * FLOAT_BYTES)
