"""Baseline synopses: histograms, samples, wavelets, self-tuning grids."""

from repro.baselines.histogram import EquiDepthHistogram, EquiWidthHistogram, Histogram1D
from repro.baselines.independence import IndependenceEstimator
from repro.baselines.multidim import GridHistogram
from repro.baselines.sampling import ReservoirSamplingEstimator, SamplingEstimator
from repro.baselines.stholes import SelfTuningHistogram
from repro.baselines.wavelet import (
    WaveletHistogram,
    haar_transform,
    inverse_haar_transform,
    top_k_coefficients,
)

__all__ = [
    "Histogram1D",
    "EquiWidthHistogram",
    "EquiDepthHistogram",
    "GridHistogram",
    "IndependenceEstimator",
    "SamplingEstimator",
    "ReservoirSamplingEstimator",
    "SelfTuningHistogram",
    "WaveletHistogram",
    "haar_transform",
    "inverse_haar_transform",
    "top_k_coefficients",
]
