"""Multi-dimensional grid histogram synopsis.

:class:`GridHistogram` partitions the joint domain of the fitted attributes
into a regular grid of cells (equi-width per attribute) and stores one count
per cell.  It is the simplest multi-dimensional histogram (the structure
MHIST and friends improve upon) and captures attribute correlation that the
AVI estimators miss — at a space cost exponential in the dimensionality,
which is precisely the trade-off the dimensionality experiment (Fig. 2)
demonstrates.

Cells are stored densely as a flat numpy array; ``cells_per_dim`` is derived
from a byte budget when ``budget_bytes`` is given.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

from repro.core.errors import BudgetError, InvalidParameterError
from repro.core.estimator import FLOAT_BYTES, SelectivityEstimator, register_estimator
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imported for type annotations only (avoids a package cycle)
    from repro.engine.table import Table

__all__ = ["GridHistogram", "grid_axis_coverage", "grid_box_masses"]


def grid_axis_coverage(
    lows: np.ndarray,
    highs: np.ndarray,
    domain_low: float,
    domain_high: float,
    resolution: int,
) -> np.ndarray:
    """Fraction of every equi-width grid slice covered by each query interval.

    ``lows`` / ``highs`` are ``(n,)`` per-query bounds along one axis; the
    result is ``(n, resolution)`` under the uniform-spread-inside-a-cell
    assumption.  Shared by the dense grid and the self-tuning histogram.
    """
    edges = np.linspace(domain_low, domain_high, resolution + 1)
    cell_low = edges[:-1]
    cell_high = edges[1:]
    width = np.maximum(cell_high - cell_low, 1e-300)
    covered = np.clip(
        np.minimum(cell_high[None, :], highs[:, None])
        - np.maximum(cell_low[None, :], lows[:, None]),
        0.0,
        None,
    )
    return np.clip(covered / width[None, :], 0.0, 1.0)


def grid_box_masses(
    cells: np.ndarray,
    domain_low: np.ndarray,
    domain_high: np.ndarray,
    resolution: int,
    lows: np.ndarray,
    highs: np.ndarray,
) -> np.ndarray:
    """Weighted cell mass inside every query box of a dense grid histogram.

    ``cells`` is the flat ``resolution**d`` frequency vector; ``lows`` /
    ``highs`` are ``(n, d)`` bound matrices.  Contracts one axis at a time;
    the ``(block, resolution**(d-1))`` intermediate is chunked over queries
    so memory stays bounded.
    """
    n, dims = lows.shape
    coverage = [
        grid_axis_coverage(
            lows[:, d], highs[:, d], float(domain_low[d]), float(domain_high[d]), resolution
        )
        for d in range(dims)
    ]
    grid = cells.reshape((resolution,) * dims)
    out = np.empty(n)
    block = max((1 << 22) // max(resolution ** max(dims - 1, 0), 1), 1)
    for start in range(0, n, block):
        stop = min(start + block, n)
        acc = np.einsum("ni,i...->n...", coverage[0][start:stop], grid)
        for d in range(1, dims):
            acc = np.einsum("ni,ni...->n...", coverage[d][start:stop], acc)
        out[start:stop] = acc
    return out


@register_estimator("grid")
class GridHistogram(SelectivityEstimator):
    """Dense multi-dimensional equi-width grid histogram.

    Parameters
    ----------
    cells_per_dim:
        Number of grid cells along every attribute.  Mutually exclusive with
        ``budget_bytes``.
    budget_bytes:
        Total space budget; the estimator picks the largest ``cells_per_dim``
        whose dense grid fits within the budget.
    """

    name = "grid"

    # True state-merge: the sharding coordinator pins the grid boundaries on
    # the full table (shard_frame), shards count cells over the shared frame,
    # and merge_state sums the integer cell counts — bitwise-exact vs. a
    # monolithic fit.
    supports_merge = True
    merge_lossless = True
    merge_exact = True

    def __init__(
        self, cells_per_dim: int | None = 16, budget_bytes: int | None = None
    ) -> None:
        super().__init__()
        if budget_bytes is not None:
            cells_per_dim = None
        if cells_per_dim is not None and cells_per_dim < 1:
            raise InvalidParameterError("cells_per_dim must be positive")
        if budget_bytes is not None and budget_bytes < FLOAT_BYTES:
            raise BudgetError("budget_bytes too small for even a single grid cell")
        self.cells_per_dim = cells_per_dim
        self.budget_bytes = budget_bytes

        self._resolution = 0
        self._low = np.empty(0)
        self._high = np.empty(0)
        self._cells = np.empty(0)
        self._total = 0.0

    def fit(self, table: Table, columns: Sequence[str] | None = None) -> "GridHistogram":
        return self.fit_shard(table, columns, frame=None)

    def fit_shard(
        self,
        table: Table,
        columns: Sequence[str] | None = None,
        frame: Mapping[str, np.ndarray] | None = None,
    ) -> "GridHistogram":
        columns = self._resolve_columns(table, columns)
        data = table.columns(columns)
        dims = len(columns)
        self._resolution = self._pick_resolution(dims)
        if frame is not None and "grid::low" in frame:
            self._low = np.asarray(frame["grid::low"], dtype=float)
            self._high = np.asarray(frame["grid::high"], dtype=float)
        elif data.shape[0] == 0:
            self._low = np.zeros(dims)
            self._high = np.ones(dims)
        else:
            self._low, self._high = self._frame_bounds(data)
        if data.shape[0] == 0:
            self._cells = np.zeros(self._resolution**dims)
            self._total = 0.0
            self._mark_fitted(columns, 0)
            return self

        edges = [
            np.linspace(self._low[d], self._high[d], self._resolution + 1) for d in range(dims)
        ]
        counts, _ = np.histogramdd(data, bins=edges)
        self._cells = counts.astype(float).ravel()
        self._total = float(self._cells.sum())
        self._mark_fitted(columns, table.row_count)
        return self

    @staticmethod
    def _frame_bounds(data: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Grid boundaries over ``data`` (degenerate spans widened to 1)."""
        low = data.min(axis=0).astype(float)
        high = data.max(axis=0).astype(float)
        span = high - low
        span[span <= 0] = 1.0
        return low, low + span

    def shard_frame(
        self, table: Table, columns: Sequence[str]
    ) -> dict[str, np.ndarray]:
        data = table.columns(list(columns))
        if data.shape[0] == 0:
            return {}
        low, high = self._frame_bounds(data)
        return {"grid::low": low, "grid::high": high}

    def merge_state(self, shards: Sequence[SelectivityEstimator]) -> "GridHistogram":
        peers = self._require_merge_peers(shards)
        first = peers[0]
        populated = [p for p in peers if p._cells.size and p._total > 0] or [first]
        reference = populated[0]
        for peer in populated[1:]:
            if (
                peer._resolution != reference._resolution
                or not np.array_equal(peer._low, reference._low)
                or not np.array_equal(peer._high, reference._high)
            ):
                raise InvalidParameterError(
                    "shard grids were not built against a common frame "
                    "(boundaries or resolution differ)"
                )
        self._resolution = reference._resolution
        self._low = reference._low.copy()
        self._high = reference._high.copy()
        cells = [p._cells for p in peers if p._cells.size == reference._cells.size]
        self._cells = np.sum(cells, axis=0, dtype=float)
        self._total = float(self._cells.sum())
        self._mark_fitted(first.columns, sum(peer.row_count for peer in peers))
        return self

    def _pick_resolution(self, dims: int) -> int:
        if self.cells_per_dim is not None:
            return int(self.cells_per_dim)
        assert self.budget_bytes is not None
        max_cells = self.budget_bytes // FLOAT_BYTES
        resolution = int(math.floor(max_cells ** (1.0 / dims)))
        if resolution < 1:
            raise BudgetError(
                f"budget of {self.budget_bytes} bytes cannot hold a {dims}-dimensional grid"
            )
        return max(resolution, 1)

    # -- persistence -----------------------------------------------------------
    def _config_params(self) -> dict:
        return {"cells_per_dim": self.cells_per_dim, "budget_bytes": self.budget_bytes}

    def _state(self) -> tuple[dict, dict]:
        arrays = {"low": self._low, "high": self._high, "cells": self._cells}
        meta = {"resolution": self._resolution, "total": self._total}
        return arrays, meta

    def _restore_state(self, arrays, meta) -> None:
        self._low = np.asarray(arrays["low"], dtype=float)
        self._high = np.asarray(arrays["high"], dtype=float)
        self._cells = np.asarray(arrays["cells"], dtype=float)
        self._resolution = int(meta["resolution"])
        self._total = float(meta["total"])

    @property
    def resolution(self) -> int:
        """Cells per dimension chosen at fit time."""
        self._require_fitted()
        return self._resolution

    @property
    def cell_count(self) -> int:
        """Total number of grid cells."""
        self._require_fitted()
        return int(self._cells.size)

    def memory_bytes(self) -> int:
        self._require_fitted()
        boundary_floats = 2 * len(self._columns)
        return int((self._cells.size + boundary_floats) * FLOAT_BYTES)

    def _estimate_batch(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        if self._total <= 0:
            return np.zeros(lows.shape[0])
        masses = grid_box_masses(
            self._cells, self._low, self._high, self._resolution, lows, highs
        )
        return masses / self._total

    def cell_frequencies(self) -> np.ndarray:
        """Grid counts reshaped to ``(resolution,) * dims`` (copy)."""
        self._require_fitted()
        dims = len(self._columns)
        return self._cells.reshape((self._resolution,) * dims).copy()
