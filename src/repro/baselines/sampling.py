"""Sampling-based selectivity estimators.

* :class:`SamplingEstimator` — a uniform random sample of the relation is
  retained; the selectivity of a predicate is the fraction of sample rows
  that satisfy it.  Unbiased but with variance ``p(1-p)/m`` for sample size
  ``m``, which is what makes it unreliable for low-selectivity queries — the
  behaviour Fig. 3 (error vs. query volume) demonstrates.
* :class:`ReservoirSamplingEstimator` — the streaming variant: the sample is
  maintained with a (optionally age-biased) reservoir so it can follow an
  insert stream and, with the decayed reservoir, concept drift.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.core.estimator import (
    FLOAT_BYTES,
    SelectivityEstimator,
    StreamingEstimator,
    register_estimator,
)
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imported for type annotations only (avoids a package cycle)
    from repro.engine.table import Table
from repro.stream.reservoir import DecayedReservoirSampler, ReservoirSampler

__all__ = ["SamplingEstimator", "ReservoirSamplingEstimator"]


def _weighted_sample_merge(
    row_blocks: Sequence[np.ndarray],
    block_weights: Sequence[float],
    size: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw a ``size``-row sample from pooled per-shard samples.

    Each block is a uniform sample of one shard; a block row represents
    ``shard_rows / block_rows`` stream rows, so drawing without replacement
    with those per-row weights yields a (statistically, not bitwise) uniform
    sample of the union — the standard mergeable-sample construction.
    """
    blocks = [np.atleast_2d(np.asarray(b, dtype=float)) for b in row_blocks]
    kept = [
        (block, weight / block.shape[0])
        for block, weight in zip(blocks, block_weights)
        if block.shape[0] and weight > 0
    ]
    if not kept:
        width = max((b.shape[1] for b in blocks), default=0)
        return np.empty((0, width))
    pool = np.concatenate([block for block, _ in kept], axis=0)
    weights = np.concatenate(
        [np.full(block.shape[0], row_weight) for block, row_weight in kept]
    )
    if pool.shape[0] <= size:
        return pool
    index = rng.choice(
        pool.shape[0], size=size, replace=False, p=weights / weights.sum()
    )
    return pool[index]


def _fractions_in_box(rows: np.ndarray, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
    """Fraction of ``rows`` inside every box of the ``(n, d)`` bound matrices.

    The ``(block, m)`` containment mask is chunked over queries so memory
    stays bounded for arbitrarily large batches.
    """
    n = lows.shape[0]
    out = np.zeros(n)
    m = rows.shape[0]
    if m == 0:
        return out
    block = max((1 << 21) // m, 1)
    for start in range(0, n, block):
        stop = min(start + block, n)
        inside = np.ones((stop - start, m), dtype=bool)
        for d in range(rows.shape[1]):
            values = rows[:, d]
            inside &= (values[None, :] >= lows[start:stop, d, None]) & (
                values[None, :] <= highs[start:stop, d, None]
            )
        out[start:stop] = np.count_nonzero(inside, axis=1) / m
    return out


@register_estimator("sampling")
class SamplingEstimator(SelectivityEstimator):
    """Uniform random-sample synopsis.

    Parameters
    ----------
    sample_size:
        Number of rows retained.
    seed:
        Sampling seed (reproducibility).
    """

    name = "sampling"

    # True state-merge: per-shard uniform samples pool into a weighted
    # sample of the union.  Statistically uniform, but a different draw than
    # the monolithic rng.choice — hence not bitwise (merge_exact stays False).
    supports_merge = True

    def __init__(self, sample_size: int = 1000, seed: int | None = 0) -> None:
        super().__init__()
        if sample_size < 1:
            raise InvalidParameterError("sample_size must be positive")
        self.sample_size = int(sample_size)
        self.seed = seed
        self._rows = np.empty((0, 0))

    def fit(self, table: Table, columns: Sequence[str] | None = None) -> "SamplingEstimator":
        columns = self._resolve_columns(table, columns)
        data = table.columns(columns)
        rng = np.random.default_rng(self.seed)
        if data.shape[0] > self.sample_size:
            index = rng.choice(data.shape[0], size=self.sample_size, replace=False)
            self._rows = data[index]
        else:
            self._rows = data.copy()
        self._mark_fitted(columns, table.row_count)
        return self

    @property
    def sample_rows(self) -> np.ndarray:
        """Copy of the retained sample."""
        self._require_fitted()
        return self._rows.copy()

    def merge_state(
        self, shards: Sequence[SelectivityEstimator]
    ) -> "SamplingEstimator":
        peers = self._require_merge_peers(shards)
        rng = np.random.default_rng(self.seed)
        self._rows = _weighted_sample_merge(
            [peer._rows for peer in peers],
            [float(peer.row_count) for peer in peers],
            self.sample_size,
            rng,
        )
        self._mark_fitted(peers[0].columns, sum(peer.row_count for peer in peers))
        return self

    # -- persistence -----------------------------------------------------------
    def _config_params(self) -> dict:
        return {"sample_size": self.sample_size, "seed": self.seed}

    def _state(self) -> tuple[dict, dict]:
        return {"rows": self._rows}, {}

    def _restore_state(self, arrays, meta) -> None:
        dims = max(len(self._columns), 1)
        self._rows = np.asarray(arrays["rows"], dtype=float).reshape(-1, dims)

    def _estimate_batch(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        return _fractions_in_box(self._rows, lows, highs)

    def memory_bytes(self) -> int:
        self._require_fitted()
        return int(self._rows.size * FLOAT_BYTES)


@register_estimator("reservoir_sampling")
class ReservoirSamplingEstimator(StreamingEstimator):
    """Streaming sample synopsis maintained by reservoir sampling.

    Parameters
    ----------
    sample_size:
        Reservoir capacity.
    decay:
        ``False`` keeps a uniform sample of the whole stream (Algorithm R);
        ``True`` uses the age-biased reservoir so the sample — and therefore
        the estimates — track the recent distribution under drift.
    seed:
        Reservoir replacement seed.
    """

    name = "reservoir_sampling"

    # Mergeable like the static sampler: pooled per-shard reservoirs are
    # resampled proportionally to each shard's stream length (statistical,
    # not bitwise).
    supports_merge = True

    def __init__(self, sample_size: int = 1000, decay: bool = False, seed: int | None = 0) -> None:
        super().__init__()
        if sample_size < 1:
            raise InvalidParameterError("sample_size must be positive")
        self.sample_size = int(sample_size)
        self.decay = bool(decay)
        self.seed = seed
        self._reservoir: ReservoirSampler | None = None

    def fit(
        self, table: Table, columns: Sequence[str] | None = None
    ) -> "ReservoirSamplingEstimator":
        columns = self._resolve_columns(table, columns)
        self.start(columns)
        data = table.columns(columns)
        if data.shape[0]:
            self.insert(data)
        self._mark_fitted(columns, table.row_count)
        return self

    def start(self, columns: Sequence[str]) -> "ReservoirSamplingEstimator":
        """Initialise an empty reservoir over ``columns`` (stream-only use)."""
        columns = list(columns)
        if not columns:
            raise InvalidParameterError("at least one column is required")
        sampler_type = DecayedReservoirSampler if self.decay else ReservoirSampler
        self._reservoir = sampler_type(self.sample_size, len(columns), seed=self.seed)
        self._mark_fitted(columns, 0)
        return self

    def insert(self, rows: np.ndarray) -> None:
        self._require_fitted()
        assert self._reservoir is not None
        # The reservoir normalises and validates the batch (empty batches are
        # a no-op); its seen-counter delta is the number of rows accepted.
        before = self._reservoir.seen
        self._reservoir.insert(rows)
        self._row_count += self._reservoir.seen - before

    def merge_state(
        self, shards: Sequence[SelectivityEstimator]
    ) -> "ReservoirSamplingEstimator":
        peers = self._require_merge_peers(shards)
        columns = peers[0].columns
        self.start(columns)
        assert self._reservoir is not None
        rng = np.random.default_rng(self.seed)
        merged_rows = _weighted_sample_merge(
            [
                peer._reservoir.sample()
                if peer._reservoir is not None
                else np.empty((0, len(columns)))
                for peer in peers
            ],
            [
                float(peer._reservoir.seen) if peer._reservoir is not None else 0.0
                for peer in peers
            ],
            self.sample_size,
            rng,
        )
        seen = sum(
            peer._reservoir.seen for peer in peers if peer._reservoir is not None
        )
        self._reservoir.load_state(
            {"rows": merged_rows.reshape(-1, len(columns)), "seen": int(seen)}
        )
        self._mark_fitted(columns, sum(peer.row_count for peer in peers))
        return self

    # -- persistence -----------------------------------------------------------
    def _config_params(self) -> dict:
        return {
            "sample_size": self.sample_size,
            "decay": self.decay,
            "seed": self.seed,
        }

    def _state(self) -> tuple[dict, dict]:
        if self._reservoir is None:  # unfitted: nothing beyond the config
            return {}, {"reservoir": None}
        reservoir_state = self._reservoir.state_dict()
        arrays = {"rows": reservoir_state.pop("rows")}
        # The remaining entries (stream position + generator state) are plain
        # JSON-able ints, so a restored reservoir continues the stream with
        # the exact replacement decisions the original would have made.
        return arrays, {"reservoir": reservoir_state}

    def _restore_state(self, arrays, meta) -> None:
        if meta.get("reservoir") is None:
            self._reservoir = None
            return
        sampler_type = DecayedReservoirSampler if self.decay else ReservoirSampler
        self._reservoir = sampler_type(
            self.sample_size, max(len(self._columns), 1), seed=self.seed
        )
        self._reservoir.load_state({**meta["reservoir"], "rows": arrays["rows"]})

    def _estimate_batch(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        assert self._reservoir is not None
        return _fractions_in_box(self._reservoir.sample(), lows, highs)

    def memory_bytes(self) -> int:
        self._require_fitted()
        assert self._reservoir is not None
        return int(self._reservoir.capacity * self._reservoir.dimensions * FLOAT_BYTES)
