"""One-dimensional histogram synopses and the AVI combiner.

These are the classical selectivity-estimation baselines every database
system ships:

* :class:`EquiWidthHistogram` — fixed-width buckets per attribute.
* :class:`EquiDepthHistogram` — quantile (equal row count) buckets per
  attribute; the standard choice for skewed data.

Both keep one 1-D histogram per fitted attribute and combine attributes with
the *attribute value independence* (AVI) assumption: the selectivity of a
conjunctive predicate is the product of per-attribute selectivities.  Inside
a bucket the *uniform spread* assumption applies: a query that covers part of
a bucket receives a proportional share of the bucket's rows.
"""

from __future__ import annotations

from abc import abstractmethod
from typing import Mapping, Sequence

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.core.estimator import FLOAT_BYTES, SelectivityEstimator, register_estimator
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imported for type annotations only (avoids a package cycle)
    from repro.engine.table import Table

__all__ = ["Histogram1D", "EquiWidthHistogram", "EquiDepthHistogram"]


class Histogram1D:
    """A 1-D bucketed frequency summary of one numeric attribute.

    Parameters
    ----------
    edges:
        Monotonically non-decreasing bucket boundaries (``buckets + 1`` values).
    counts:
        Row count per bucket (``len(edges) - 1`` values).
    """

    __slots__ = ("edges", "counts", "total", "_safe_widths", "_point_bucket", "_any_point")

    def __init__(self, edges: np.ndarray, counts: np.ndarray) -> None:
        edges = np.asarray(edges, dtype=float)
        counts = np.asarray(counts, dtype=float)
        if edges.size != counts.size + 1:
            raise InvalidParameterError("edges must have exactly one more entry than counts")
        if np.any(np.diff(edges) < 0):
            raise InvalidParameterError("bucket edges must be non-decreasing")
        if np.any(counts < 0):
            raise InvalidParameterError("bucket counts must be non-negative")
        self.edges = edges
        self.counts = counts
        self.total = float(counts.sum())
        # Static per-bucket geometry, hoisted out of selectivity_batch.
        widths = edges[1:] - edges[:-1]
        self._point_bucket = widths <= 0
        self._any_point = bool(self._point_bucket.any())
        self._safe_widths = np.where(widths > 0, widths, 1.0)

    @property
    def bucket_count(self) -> int:
        """Number of buckets."""
        return int(self.counts.size)

    def selectivity(self, low: float, high: float) -> float:
        """Fraction of rows in ``[low, high]`` under the uniform-spread assumption."""
        return float(self.selectivity_batch(np.array([low]), np.array([high]))[0])

    def selectivity_batch(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Vector of selectivities for ``(n,)`` arrays of interval bounds."""
        lows = np.asarray(lows, dtype=float)
        highs = np.asarray(highs, dtype=float)
        if self.total <= 0:
            return np.zeros(lows.shape[0])
        bucket_lows = self.edges[:-1]
        bucket_highs = self.edges[1:]
        covered = np.minimum(bucket_highs[None, :], highs[:, None])
        covered -= np.maximum(bucket_lows[None, :], lows[:, None])
        np.clip(covered, 0.0, None, out=covered)
        fraction = covered
        fraction /= self._safe_widths[None, :]
        if self._any_point:
            # Degenerate buckets (repeated edges, e.g. heavy duplicates in
            # equi-depth histograms) hold all their mass at a single value.
            point_bucket = self._point_bucket
            fraction[:, point_bucket] = 0.0
            point_hit = (
                point_bucket[None, :]
                & (bucket_lows[None, :] >= lows[:, None])
                & (bucket_lows[None, :] <= highs[:, None])
            )
            fraction = np.where(point_hit, 1.0, fraction)
        np.clip(fraction, 0.0, 1.0, out=fraction)
        result = fraction @ self.counts / self.total
        return np.where(highs < lows, 0.0, result)

    def density(self, points: np.ndarray) -> np.ndarray:
        """Histogram density estimate at ``points`` (for MISE comparisons)."""
        points = np.asarray(points, dtype=float)
        widths = np.maximum(self.edges[1:] - self.edges[:-1], 1e-12)
        heights = self.counts / (max(self.total, 1.0) * widths)
        index = np.clip(np.searchsorted(self.edges, points, side="right") - 1, 0, self.counts.size - 1)
        inside = (points >= self.edges[0]) & (points <= self.edges[-1])
        return np.where(inside, heights[index], 0.0)

    def memory_floats(self) -> int:
        """Number of stored floating-point values."""
        return int(self.edges.size + self.counts.size)


class _PerAttributeHistogramEstimator(SelectivityEstimator):
    """Shared machinery of the AVI histogram estimators.

    Both subclasses are true state-merge synopses: the sharding coordinator
    computes global bucket edges once (:meth:`shard_frame`), every shard
    counts its rows over those shared edges (:meth:`fit_shard`), and
    :meth:`merge_state` sums the integer bucket counts — float-exact, so the
    merged histogram reproduces a monolithic fit bitwise.
    """

    supports_merge = True
    merge_lossless = True
    merge_exact = True

    def __init__(self, buckets: int = 64) -> None:
        super().__init__()
        if buckets < 1:
            raise InvalidParameterError("buckets must be positive")
        self.buckets = int(buckets)
        self._histograms: dict[str, Histogram1D] = {}

    @abstractmethod
    def _frame_edges(self, values: np.ndarray) -> np.ndarray:
        """Bucket edges for one attribute (equi-width vs equi-depth)."""

    def _build_histogram(
        self, values: np.ndarray, edges: np.ndarray | None = None
    ) -> Histogram1D:
        """Count ``values`` into a histogram (edges given, or derived)."""
        values = np.asarray(values, dtype=float)
        if edges is None:
            edges = self._frame_edges(values)
        if values.size == 0:
            return Histogram1D(edges, np.zeros(edges.size - 1))
        counts, _ = np.histogram(values, bins=edges)
        counts = counts.astype(float)
        # np.histogram drops values equal to an internal repeated edge into
        # the right bucket, and (under a shared frame) shard values may sit
        # exactly on the outermost edges; recompute the total so no row
        # inside the frame is lost.
        inside = np.count_nonzero((values >= edges[0]) & (values <= edges[-1]))
        missing = inside - counts.sum()
        if missing > 0 and counts.size:
            counts[-1] += missing
        # np.histogram drops values sitting exactly on a repeated internal
        # edge into the regular bucket to its right, but the read side
        # (Histogram1D.selectivity_batch) serves a degenerate bucket's mass
        # at its single point value.  Move the exact-duplicate mass into the
        # point bucket so point queries — notably dictionary codes from the
        # typed predicate lowering — see it.  Shards moving their own exact
        # counts under a shared frame still sum to the monolithic build.
        lefts = edges[:-1]
        point = edges[1:] <= lefts
        if point.any():
            for value in np.unique(lefts[point]):
                j = min(
                    int(np.searchsorted(edges, value, side="right")) - 1,
                    counts.size - 1,
                )
                if point[j]:
                    continue  # closed right end: mass already in its point bucket
                exact = float(np.count_nonzero(values == value))
                if exact <= 0:
                    continue
                k = int(np.argmax(point & (lefts == value)))
                moved = min(exact, counts[j])
                counts[j] -= moved
                counts[k] += moved
        return Histogram1D(edges, counts)

    def fit(self, table: Table, columns: Sequence[str] | None = None) -> "SelectivityEstimator":
        return self.fit_shard(table, columns, frame=None)

    def fit_shard(
        self,
        table: Table,
        columns: Sequence[str] | None = None,
        frame: "Mapping[str, np.ndarray] | None" = None,
    ) -> "SelectivityEstimator":
        columns = self._resolve_columns(table, columns)
        frame = frame or {}
        self._histograms = {}
        for column in columns:
            edges = frame.get(f"edges::{column}")
            self._histograms[column] = self._build_histogram(
                table.column(column), None if edges is None else np.asarray(edges)
            )
        self._mark_fitted(columns, table.row_count)
        return self

    def shard_frame(
        self, table: Table, columns: Sequence[str]
    ) -> dict[str, np.ndarray]:
        return {
            f"edges::{column}": self._frame_edges(
                np.asarray(table.column(column), dtype=float)
            )
            for column in columns
        }

    def merge_state(self, shards: Sequence[SelectivityEstimator]) -> "SelectivityEstimator":
        peers = self._require_merge_peers(shards)
        columns = peers[0].columns
        merged: dict[str, Histogram1D] = {}
        for column in columns:
            histograms = [peer.histogram(column) for peer in peers]
            edges = histograms[0].edges
            for histogram in histograms[1:]:
                if not np.array_equal(histogram.edges, edges):
                    raise InvalidParameterError(
                        f"shard histograms over {column!r} were not built against "
                        "a common frame (bucket edges differ)"
                    )
            counts = np.sum([histogram.counts for histogram in histograms], axis=0)
            merged[column] = Histogram1D(edges, counts)
        self._histograms = merged
        self._mark_fitted(columns, sum(peer.row_count for peer in peers))
        return self

    def histogram(self, column: str) -> Histogram1D:
        """The per-attribute histogram built for ``column``."""
        self._require_fitted()
        return self._histograms[column]

    # -- persistence -----------------------------------------------------------
    def _config_params(self) -> dict:
        return {"buckets": self.buckets}

    def _state(self) -> tuple[dict, dict]:
        arrays: dict[str, np.ndarray] = {}
        for i, column in enumerate(self._columns):
            histogram = self._histograms[column]
            arrays[f"h{i}_edges"] = histogram.edges
            arrays[f"h{i}_counts"] = histogram.counts
        return arrays, {}

    def _restore_state(self, arrays, meta) -> None:
        self._histograms = {
            column: Histogram1D(arrays[f"h{i}_edges"], arrays[f"h{i}_counts"])
            for i, column in enumerate(self._columns)
        }

    def _estimate_batch(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        # AVI: product of per-attribute selectivities.  Attributes no query
        # constrains carry (-inf, +inf) bounds and a factor of exactly 1, so
        # their coverage matrices need not be built at all.
        selectivity = np.ones(lows.shape[0])
        for d, column in enumerate(self._columns):
            if np.isneginf(lows[:, d]).all() and np.isposinf(highs[:, d]).all():
                continue
            selectivity *= self._histograms[column].selectivity_batch(lows[:, d], highs[:, d])
        return selectivity

    def memory_bytes(self) -> int:
        self._require_fitted()
        floats = sum(h.memory_floats() for h in self._histograms.values())
        return int(floats * FLOAT_BYTES)


@register_estimator("equiwidth")
class EquiWidthHistogram(_PerAttributeHistogramEstimator):
    """Equi-width histogram per attribute, combined with the AVI assumption."""

    name = "equiwidth"

    def _frame_edges(self, values: np.ndarray) -> np.ndarray:
        if values.size == 0:
            return np.linspace(0.0, 1.0, self.buckets + 1)
        low = float(values.min())
        high = float(values.max())
        if high <= low:
            high = low + 1.0
        return np.linspace(low, high, self.buckets + 1)


@register_estimator("equidepth")
class EquiDepthHistogram(_PerAttributeHistogramEstimator):
    """Equi-depth (quantile) histogram per attribute with the AVI assumption."""

    name = "equidepth"

    def _frame_edges(self, values: np.ndarray) -> np.ndarray:
        if values.size == 0:
            return np.linspace(0.0, 1.0, self.buckets + 1)
        quantiles = np.linspace(0.0, 100.0, self.buckets + 1)
        edges = np.percentile(values, quantiles)
        return np.maximum.accumulate(edges)
