"""Model persistence: single-file snapshots and a versioned model store.

Every fitted estimator can be captured as a *snapshot* — a single ``.npz``
file holding the synopsis' numpy arrays plus a JSON header — and snapshots
can be organised into a :class:`~repro.persist.store.ModelStore`: a directory
of named models with monotonically increasing versions, atomic publishes and
a prune policy.  This is the on-disk lifecycle layer that makes a synopsis
built from a million-row table (or a long drift stream) survive the process
that built it, and the substrate the serving layer
(:mod:`repro.serve`) swaps new model versions through.

Snapshot format
---------------

A snapshot is a ``numpy.savez`` archive written without pickle:

* one ``uint8`` entry (:data:`~repro.persist.snapshot.HEADER_KEY`) holding a
  UTF-8 JSON header with the keys ``format`` (integer format version),
  ``estimator`` (registry name), ``config`` (constructor parameters — the
  reconstruction recipe), ``fitted``, ``columns``, ``row_count`` and ``meta``
  (estimator-specific JSON scalars);
* one ``a::<key>`` entry per state array of the estimator (bit-exact float64
  payloads, so a load reproduces ``estimate_batch`` output bitwise).

Every snapshot also carries a content checksum entry
(:data:`~repro.persist.snapshot.CHECKSUM_KEY`, CRC-32 over the header bytes
and every array's dtype/shape/raw bytes): loads verify it and raise the typed
:class:`~repro.core.errors.SnapshotCorruptError` on any mismatch, and
:class:`~repro.persist.store.ModelStore` quarantines corrupt versions
(``*.corrupt``) and rolls back to the newest intact one.  Crash-safe
streaming ingest is provided by :class:`~repro.persist.journal.IngestJournal`
/ :class:`~repro.persist.journal.JournaledIngest` — an append-only, fsync'd
write-ahead journal whose replay reproduces the pre-crash model bitwise.

Sharded models can additionally be persisted as a *manifest directory* —
``manifest.json`` plus one self-contained snapshot file per shard — via
:func:`~repro.persist.shards.save_sharded` / ``load_sharded``; see
:mod:`repro.persist.shards` for the layout and why it coexists safely with a
:class:`~repro.persist.store.ModelStore` directory tree.

Format version policy
---------------------

:data:`~repro.persist.snapshot.FORMAT_VERSION` (currently ``1``) is written
into every header.

* The version is bumped only for changes that make old readers misinterpret
  a snapshot (renamed array keys, changed semantics of a header field).
  Additive changes — new optional ``meta`` keys, new estimators — do **not**
  bump it.
* Readers accept every version from 1 up to their own ``FORMAT_VERSION`` and
  must tolerate unknown additive keys; snapshots from a *newer* format raise
  :class:`~repro.core.errors.PersistenceError` instead of guessing.
* Per-estimator state layouts are owned by the estimators themselves (the
  ``_state`` / ``_restore_state`` hook pair); an estimator changing its
  layout incompatibly must either keep a translation path in
  ``_restore_state`` or trigger a format bump.
"""

from repro.persist.journal import IngestJournal, JournaledIngest, JournalReplay
from repro.persist.shards import load_sharded, save_sharded
from repro.persist.snapshot import (
    FORMAT_VERSION,
    load_estimator,
    read_snapshot_header,
    save_estimator,
    verify_snapshot,
)
from repro.persist.store import ModelStore, ModelVersion

__all__ = [
    "FORMAT_VERSION",
    "save_estimator",
    "load_estimator",
    "read_snapshot_header",
    "verify_snapshot",
    "save_sharded",
    "load_sharded",
    "ModelStore",
    "ModelVersion",
    "IngestJournal",
    "JournaledIngest",
    "JournalReplay",
]
