"""Write-ahead ingest journal: pending stream rows survive a crash.

A :class:`StreamingADE` buffers up to ``chunk_size - 1`` rows between
maintenance steps, and even folded-in rows live only in memory until the
model is published — a process death loses everything since the last
snapshot.  The journal closes that window with the classic WAL protocol:

1. **Log first.**  :meth:`JournaledIngest.insert` appends the row batch to
   an append-only, fsync'd journal file *before* handing it to the model.
2. **Checkpoint.**  :meth:`JournaledIngest.checkpoint` flushes the model,
   publishes it to a :class:`~repro.persist.store.ModelStore`, then resets
   the journal to a single checkpoint record naming the published version —
   atomically, via write-temp + ``os.replace``.
3. **Recover.**  :meth:`JournaledIngest.recover` loads the newest intact
   store version and replays every journaled batch logged after the matching
   checkpoint, *in the original batch boundaries*.  Because ``StreamingADE``
   ingestion is batch-invariant (chunk boundaries depend only on the row
   count since ``fit``) and ``state_dict()`` flushes before publishing, the
   recovered model is **bitwise identical** to the pre-crash one.

Journal records are individually CRC-32'd with a torn-tail discard rule: a
record that is truncated or fails its CRC (a crash mid-append) ends the
replay at the last intact record, exactly as a database WAL does.

Crash-window audit (all safe):

- crash mid-append → torn tail discarded; those rows were never in a
  published snapshot nor acknowledged durable.
- crash after publish, before journal reset → the journal's checkpoint
  version is *older* than the store's newest intact version; the stale
  batches are already folded into the newer snapshot, so replay discards
  them instead of double-applying.
- torn snapshot write during checkpoint → the store quarantines it and
  rolls back; the journal still names the previous version, so its batches
  replay on top of the rolled-back model.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Mapping

import numpy as np

from repro.core.errors import PersistenceError
from repro.core.estimator import StreamingEstimator
from repro.fault.plan import mutate_bytes
from repro.obs.metrics import default_metrics
from repro.persist.store import ModelStore, ModelVersion

__all__ = ["IngestJournal", "JournalReplay", "JournaledIngest"]

#: Journal file preamble: magic + one format byte + reserved padding.
_FILE_MAGIC = b"RJNL\x01\x00\x00\x00"

#: Per-record header: magic, kind, sequence, payload length, payload CRC-32.
_REC_HEADER = struct.Struct("<4sBQQI")
_REC_MAGIC = b"RJRC"

_KIND_CHECKPOINT = 0
_KIND_ROWS = 1

_ROWS_PREFIX = struct.Struct("<II")  # n_rows, n_dims
_CHECKPOINT_PAYLOAD = struct.Struct("<Q")  # published store version


@dataclass
class JournalReplay:
    """Outcome of reading a journal file back.

    ``checkpoint_version`` is the store version named by the last intact
    checkpoint record (``None`` when the file carries none — empty, foreign,
    or damaged before the first checkpoint); ``batches`` are the row batches
    logged after it, in order and in their original boundaries.
    ``torn_tail`` reports that replay stopped at a truncated or
    CRC-failing record (everything after it is discarded), and
    ``intact_bytes`` is the file offset just past the last intact record —
    the truncation point that makes the file appendable again.
    """

    checkpoint_version: int | None = None
    batches: list[np.ndarray] = field(default_factory=list)
    records: int = 0
    torn_tail: bool = False
    intact_bytes: int = 0

    @property
    def rows(self) -> int:
        return sum(len(batch) for batch in self.batches)


class IngestJournal:
    """Append-only, fsync'd, CRC-framed journal of ingest row batches.

    Every append passes through the ``persist.journal.append`` byte-mutation
    injection point, so deterministic torn-write tests can damage exactly
    the record they target.

    Parameters
    ----------
    path:
        Journal file (created with a magic preamble on first use).
    fsync:
        Fsync after every append (and the directory after a reset).  The
        default honours the durability contract; turning it off trades
        crash-safety for append throughput.
    """

    def __init__(self, path: str | os.PathLike[str], fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = bool(fsync)
        self._seq = 0
        self._handle: IO[bytes] | None = None

    # -- file plumbing ----------------------------------------------------

    def _open(self) -> IO[bytes]:
        if self._handle is None or self._handle.closed:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "ab")
            if self._handle.tell() == 0:
                self._handle.write(_FILE_MAGIC)
                self._sync(self._handle)
        return self._handle

    def _sync(self, handle: IO[bytes]) -> None:
        handle.flush()
        if self.fsync:
            os.fsync(handle.fileno())

    def close(self) -> None:
        if self._handle is not None and not self._handle.closed:
            self._handle.close()
        self._handle = None

    def __enter__(self) -> "IngestJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- appends ----------------------------------------------------------

    def _append(self, kind: int, payload: bytes) -> int:
        handle = self._open()
        self._seq += 1
        record = (
            _REC_HEADER.pack(
                _REC_MAGIC, kind, self._seq, len(payload), zlib.crc32(payload)
            )
            + payload
        )
        handle.write(mutate_bytes("persist.journal.append", record))
        self._sync(handle)
        return self._seq

    def append_rows(self, rows: np.ndarray) -> int:
        """Durably log one insert batch; returns the record sequence number."""
        batch = np.ascontiguousarray(np.atleast_2d(np.asarray(rows, dtype=float)), dtype="<f8")
        if batch.size == 0:
            return self._seq
        payload = _ROWS_PREFIX.pack(batch.shape[0], batch.shape[1]) + batch.tobytes()
        return self._append(_KIND_ROWS, payload)

    def append_checkpoint(self, version: int) -> int:
        """Durably log that the model was published as store ``version``."""
        return self._append(_KIND_CHECKPOINT, _CHECKPOINT_PAYLOAD.pack(int(version)))

    def reset(self, version: int) -> None:
        """Atomically truncate the journal to one checkpoint record.

        Called after a successful publish: rows logged before the checkpoint
        are now folded into snapshot ``version`` and must never replay.
        """
        self.close()
        payload = _CHECKPOINT_PAYLOAD.pack(int(version))
        record = (
            _REC_HEADER.pack(_REC_MAGIC, _KIND_CHECKPOINT, 1, len(payload), zlib.crc32(payload))
            + payload
        )
        temp = self.path.with_name(self.path.name + f".reset.{os.getpid()}.tmp")
        with open(temp, "wb") as handle:
            handle.write(_FILE_MAGIC + record)
            self._sync(handle)
        os.replace(temp, self.path)
        if self.fsync:
            fd = os.open(self.path.parent, os.O_RDONLY)
            try:
                os.fsync(fd)
            finally:
                os.close(fd)
        self._seq = 1

    def truncate(self, size: int) -> None:
        """Discard every byte past offset ``size`` (torn-tail repair).

        The file is opened in append mode (:meth:`_open`), so garbage left by
        a crash mid-append *must* be cut off before any new record is written
        — otherwise replay stops at the garbage and every later record is
        unreachable.  Fsyncs the shrunken file so the repair is durable.
        """
        try:
            with open(self.path, "r+b") as handle:
                handle.truncate(max(int(size), 0))
                self._sync(handle)
        except FileNotFoundError:
            pass

    # -- replay -----------------------------------------------------------

    @classmethod
    def replay(cls, path: str | os.PathLike[str]) -> JournalReplay:
        """Read a journal back, tolerating a torn tail.

        Never raises on damage: a missing file, a foreign preamble or a
        damaged first record simply yields an empty replay (with
        ``torn_tail`` set when bytes had to be discarded), because recovery
        must proceed from the last checkpoint regardless.
        """
        result = JournalReplay()
        try:
            blob = Path(path).read_bytes()
        except FileNotFoundError:
            return result
        if not blob.startswith(_FILE_MAGIC):
            result.torn_tail = bool(blob)
            return result
        offset = len(_FILE_MAGIC)
        result.intact_bytes = offset
        pending: list[np.ndarray] = []
        while offset < len(blob):
            if offset + _REC_HEADER.size > len(blob):
                result.torn_tail = True
                break
            magic, kind, _seq, length, crc = _REC_HEADER.unpack_from(blob, offset)
            if magic != _REC_MAGIC:
                result.torn_tail = True
                break
            start = offset + _REC_HEADER.size
            payload = blob[start : start + length]
            if len(payload) < length or zlib.crc32(payload) != crc:
                result.torn_tail = True
                break
            offset = start + length
            if kind == _KIND_CHECKPOINT:
                (result.checkpoint_version,) = _CHECKPOINT_PAYLOAD.unpack(payload)
                pending = []
            elif kind == _KIND_ROWS:
                n_rows, n_dims = _ROWS_PREFIX.unpack_from(payload)
                data = np.frombuffer(payload, dtype="<f8", offset=_ROWS_PREFIX.size)
                if data.size != n_rows * n_dims:
                    result.torn_tail = True
                    break
                pending.append(data.reshape(n_rows, n_dims).copy())
            # unknown kinds are skipped (forward compatibility)
            result.records += 1
            result.intact_bytes = offset
        result.batches = pending
        return result


class JournaledIngest:
    """Crash-safe ingest coordinator: journal + streaming model + store.

    Wraps a fitted :class:`~repro.core.estimator.StreamingEstimator`;
    :meth:`insert` journals each batch before the model sees it, and
    :meth:`checkpoint` publishes + truncates the journal.  Call
    :meth:`checkpoint` once right after fitting so the journal has a
    baseline snapshot to replay against.

    Metrics (process-default registry): ``journal.appends``,
    ``journal.rows``, ``journal.checkpoints``, ``journal.recoveries``,
    ``journal.replayed_rows``.
    """

    def __init__(
        self,
        estimator: StreamingEstimator,
        journal: IngestJournal | str | os.PathLike[str],
        store: ModelStore,
        name: str,
    ) -> None:
        self.estimator = estimator
        self.journal = (
            journal if isinstance(journal, IngestJournal) else IngestJournal(journal)
        )
        self.store = store
        self.name = name
        self.last_recovery: dict[str, object] | None = None
        self._metrics = default_metrics()

    def insert(self, rows: np.ndarray) -> None:
        """Durably journal ``rows``, then fold them into the live model."""
        batch = np.atleast_2d(np.asarray(rows, dtype=float))
        if batch.size == 0:
            return
        self.journal.append_rows(batch)
        self.estimator.insert(batch)
        if self._metrics.enabled:
            self._metrics.counter("journal.appends").inc()
            self._metrics.counter("journal.rows").inc(batch.shape[0])

    def flush(self) -> None:
        self.estimator.flush()

    def checkpoint(self, schema: Mapping[str, object] | None = None) -> ModelVersion:
        """Flush + publish the model, then truncate the journal to it."""
        self.estimator.flush()
        published = self.store.publish(self.name, self.estimator, schema=dict(schema) if schema else None)
        self.journal.reset(published.version)
        self._metrics.counter("journal.checkpoints").inc()
        return published

    def close(self) -> None:
        self.journal.close()

    @classmethod
    def recover(
        cls,
        journal: IngestJournal | str | os.PathLike[str],
        store: ModelStore,
        name: str,
        fsync: bool = True,
    ) -> "JournaledIngest":
        """Rebuild the pre-crash ingest state from disk.

        Loads the newest intact version of ``name`` (quarantine + rollback
        apply), then replays journaled batches according to the checkpoint
        protocol: batches replay only when the journal's checkpoint matches
        or postdates the loaded snapshot (an *older* checkpoint means the
        rows are already folded into a newer snapshot).  The journal's intact
        records are kept — pending rows stay replayable until the next
        :meth:`checkpoint` — but a torn tail is truncated away (fsync'd)
        before the journal accepts new appends, so post-recovery batches are
        logged contiguously after the last intact record.

        The result's ``last_recovery`` dict reports what happened:
        ``loaded_version``, ``checkpoint_version``, ``replayed_batches``,
        ``replayed_rows``, ``torn_tail``, ``stale_journal`` (an
        ahead-of-store checkpoint — the published snapshot it named was
        lost, so replay was best-effort).
        """
        if not isinstance(journal, IngestJournal):
            journal = IngestJournal(journal, fsync=fsync)
        resolved, estimator = store.load_latest(name)
        if not isinstance(estimator, StreamingEstimator):
            raise PersistenceError(
                f"model {name!r} is not a streaming estimator; journal recovery "
                "does not apply"
            )
        replayed = IngestJournal.replay(journal.path)
        if replayed.torn_tail:
            # The journal reopens in append mode, so the garbage tail must be
            # cut off *before* any new insert is logged — otherwise replay
            # stops at the garbage and every post-recovery batch is
            # unreachable (silently lost on the next crash).
            journal.truncate(replayed.intact_bytes)
        checkpoint = replayed.checkpoint_version
        replay_batches = (
            replayed.batches if checkpoint is not None and checkpoint >= resolved.version else []
        )
        replayed_rows = 0
        for batch in replay_batches:
            estimator.insert(batch)
            replayed_rows += len(batch)
        wrapper = cls(estimator, journal, store, name)
        wrapper.journal._seq = replayed.records
        wrapper.last_recovery = {
            "loaded_version": resolved.version,
            "checkpoint_version": checkpoint,
            "replayed_batches": len(replay_batches),
            "replayed_rows": replayed_rows,
            "torn_tail": replayed.torn_tail,
            "stale_journal": bool(checkpoint is not None and checkpoint > resolved.version),
        }
        metrics = default_metrics()
        if metrics.enabled:
            metrics.counter("journal.recoveries").inc()
            metrics.counter("journal.replayed_rows").inc(replayed_rows)
        return wrapper
