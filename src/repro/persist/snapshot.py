"""Single-file ``.npz`` snapshots of fitted estimators.

The serialisation split is deliberate: estimators describe their state as
numpy arrays plus JSON scalars (``SelectivityEstimator.state_dict``), and
this module owns the on-disk envelope — a pickle-free ``savez`` archive with
a versioned JSON header.  See :mod:`repro.persist` for the format and its
versioning policy.

Integrity: every snapshot carries a CRC-32 envelope checksum (the
``__repro_checksum__`` entry) computed over the header bytes and every state
array's key, dtype, shape and raw bytes.  Loaders verify it, so torn writes,
truncation and bit rot surface as a typed
:class:`~repro.core.errors.SnapshotCorruptError` instead of raw
``numpy``/``zipfile`` exceptions — and never as silently wrong estimates.
The checksum entry is additive (readers that predate it ignore it, loaders
accept legacy snapshots without one), so the format version is unchanged.
"""

from __future__ import annotations

import io
import json
import os
import struct
import zipfile
import zlib
from pathlib import Path
from typing import IO, Any, Mapping, NoReturn

import numpy as np

from repro.core.errors import PersistenceError, SnapshotCorruptError
from repro.core.estimator import SelectivityEstimator, estimator_from_config
from repro.fault.plan import mutate_bytes

__all__ = [
    "CHECKSUM_KEY",
    "FORMAT_VERSION",
    "HEADER_KEY",
    "save_estimator",
    "load_estimator",
    "read_snapshot_header",
    "verify_snapshot",
]

#: On-disk snapshot format version (see :mod:`repro.persist` for the policy).
FORMAT_VERSION = 1

#: Archive entry holding the UTF-8 JSON header.
HEADER_KEY = "__repro_header__"

#: Archive entry holding the CRC-32 envelope checksum (additive; optional).
CHECKSUM_KEY = "__repro_checksum__"

#: Prefix namespacing estimator state arrays inside the archive.
_ARRAY_PREFIX = "a::"

#: Exceptions that mean "the bytes on disk are not a readable archive".
#: Deliberately excludes ``OSError``: a transient I/O failure (EIO, EACCES,
#: too many open files) says nothing about the bytes, and classifying it as
#: corruption would quarantine a perfectly intact snapshot — see
#: :func:`_reraise_corrupt`.
_CORRUPTION_ERRORS = (
    zipfile.BadZipFile,
    zipfile.LargeZipFile,
    ValueError,
    KeyError,
    EOFError,
    zlib.error,
    struct.error,
)


def _reraise_corrupt(source: str, error: Exception) -> NoReturn:
    """Re-raise ``error`` as :class:`SnapshotCorruptError` — or verbatim.

    An ``OSError`` carrying an ``errno`` is the operating system reporting an
    I/O / permission / resource failure, not evidence that the archive bytes
    are damaged; it propagates unchanged so callers do not quarantine an
    intact file.  Errno-less ``OSError`` (raised by parsers for unreadable
    data) and every :data:`_CORRUPTION_ERRORS` member become the typed
    corruption error.
    """
    if isinstance(error, OSError) and error.errno is not None:
        raise error
    raise SnapshotCorruptError(
        source, f"unreadable archive ({error})", version=_version_of(source)
    ) from error


def _json_default(value: Any) -> Any:
    """Fold numpy scalars/arrays that leak into headers back into JSON types."""
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"snapshot header value {value!r} is not JSON-serialisable")


def _compute_checksum(header_bytes: bytes, arrays: Mapping[str, np.ndarray]) -> int:
    """CRC-32 over the envelope: header bytes + every array's identity.

    Keys are folded in sorted order with each array's dtype and shape, so a
    flip that moves bytes between arrays (or truncates one) changes the sum
    even when the concatenated payload would not.
    """
    crc = zlib.crc32(header_bytes)
    for key in sorted(arrays):
        value = np.ascontiguousarray(arrays[key])
        crc = zlib.crc32(key.encode("utf-8"), crc)
        crc = zlib.crc32(value.dtype.str.encode("utf-8"), crc)
        crc = zlib.crc32(repr(value.shape).encode("utf-8"), crc)
        crc = zlib.crc32(value.tobytes(), crc)
    return crc & 0xFFFFFFFF


def save_estimator(
    estimator: SelectivityEstimator,
    path: str | os.PathLike[str] | IO[bytes],
    schema: Mapping[str, Any] | None = None,
    fault_point: str = "persist.snapshot.write",
) -> None:
    """Write ``estimator`` as a single snapshot file at ``path``.

    The file is written through ``numpy.savez`` without pickle; the
    round-trip via :func:`load_estimator` reproduces ``estimate_batch``
    output bitwise.  ``schema`` (a ``TableSchema.to_json()`` payload, its own
    ``schema_version`` inside) rides along in the header so dictionary-encoded
    columns travel with the synopsis they were fitted on; readers that
    predate it ignore the extra key, so the snapshot format version is
    unchanged.  Parent directories are created.  (Writing is *not* atomic —
    the :class:`~repro.persist.store.ModelStore` layers atomic
    write-then-rename publishing on top.)

    ``fault_point`` names the byte-mutation injection point the finished
    archive passes through before it reaches disk (inert unless a
    :class:`~repro.fault.FaultPlan` is armed); the store's publish path
    overrides it so torn *publishes* can be injected independently of plain
    saves.
    """
    state = estimator.state_dict()
    arrays = state.pop("arrays")
    header = {"format": FORMAT_VERSION, **state}
    if schema is not None:
        header["schema"] = dict(schema)
    encoded_bytes = json.dumps(header, default=_json_default).encode("utf-8")
    encoded = np.frombuffer(encoded_bytes, dtype=np.uint8)
    payload: dict[str, np.ndarray] = {HEADER_KEY: encoded}
    for key, value in arrays.items():
        payload[_ARRAY_PREFIX + key] = np.asarray(value)
    checksum = _compute_checksum(
        encoded_bytes, {k: v for k, v in payload.items() if k != HEADER_KEY}
    )
    payload[CHECKSUM_KEY] = np.array([checksum], dtype=np.uint64)
    # Build the archive in memory so the byte-mutation hook sees the exact
    # bytes headed for disk (savez appends ".npz" to bare string paths; an
    # in-memory build then a plain write preserves the requested name).
    buffer = io.BytesIO()
    np.savez(buffer, **payload)
    raw = mutate_bytes(fault_point, buffer.getvalue())
    if hasattr(path, "write"):
        path.write(raw)
        return
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "wb") as handle:
        handle.write(raw)


def _version_of(source: str) -> int | None:
    """Best-effort store version number parsed from a snapshot filename."""
    stem = Path(source).name
    if stem.startswith("v") and stem.endswith(".npz"):
        digits = stem[1:-4]
        if digits.isdigit():
            return int(digits)
    return None


def _parse_header(data: Mapping[str, np.ndarray], source: str) -> dict[str, Any]:
    if HEADER_KEY not in data:
        raise PersistenceError(f"{source} is not an estimator snapshot (missing header)")
    try:
        header = json.loads(bytes(np.asarray(data[HEADER_KEY])).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise SnapshotCorruptError(
            source, "corrupt snapshot header", version=_version_of(source)
        ) from error
    version = header.get("format")
    if not isinstance(version, int) or version < 1:
        raise PersistenceError(f"{source} has an invalid snapshot format marker")
    if version > FORMAT_VERSION:
        raise PersistenceError(
            f"{source} uses snapshot format {version}, but this build reads "
            f"only up to format {FORMAT_VERSION}"
        )
    return header


def read_snapshot_header(path: str | os.PathLike[str] | IO[bytes]) -> dict[str, Any]:
    """Read and validate just the JSON header of a snapshot (cheap metadata).

    Does not verify the envelope checksum (that requires reading every
    array — use :func:`verify_snapshot` or :func:`load_estimator`), but a
    structurally damaged archive still raises
    :class:`~repro.core.errors.SnapshotCorruptError`.
    """
    source = str(path)
    try:
        with np.load(path, allow_pickle=False) as data:
            return _parse_header(data, source)
    except FileNotFoundError:
        raise
    except _CORRUPTION_ERRORS + (OSError,) as error:
        _reraise_corrupt(source, error)


def _read_snapshot(
    path: str | os.PathLike[str] | IO[bytes],
) -> tuple[dict[str, Any], dict[str, np.ndarray], bool]:
    """Read, structurally validate and checksum-verify a snapshot archive.

    Returns ``(header, prefixed arrays, had_checksum)``; raises
    :class:`~repro.core.errors.SnapshotCorruptError` on any damage.
    """
    source = str(path)
    try:
        with np.load(path, allow_pickle=False) as data:
            header = _parse_header(data, source)
            header_bytes = bytes(np.asarray(data[HEADER_KEY]))
            arrays = {
                key: np.array(data[key])
                for key in data.files
                if key.startswith(_ARRAY_PREFIX)
            }
            stored = (
                int(np.asarray(data[CHECKSUM_KEY]).ravel()[0])
                if CHECKSUM_KEY in data.files
                else None
            )
    except FileNotFoundError:
        raise
    except _CORRUPTION_ERRORS + (OSError,) as error:
        _reraise_corrupt(source, error)
    if stored is not None:
        actual = _compute_checksum(header_bytes, arrays)
        if actual != stored:
            raise SnapshotCorruptError(
                source,
                f"envelope checksum mismatch (stored {stored:#010x}, "
                f"computed {actual:#010x})",
                version=_version_of(source),
            )
    return header, arrays, stored is not None


def verify_snapshot(path: str | os.PathLike[str] | IO[bytes]) -> bool:
    """Fully read ``path`` and verify its envelope checksum.

    Returns ``True`` when a checksum was present and matched, ``False`` for
    an intact legacy snapshot written before checksums existed.  Raises
    :class:`~repro.core.errors.SnapshotCorruptError` on any damage.
    """
    return _read_snapshot(path)[2]


def load_estimator(path: str | os.PathLike[str] | IO[bytes]) -> SelectivityEstimator:
    """Rebuild the estimator persisted at ``path``.

    The estimator is constructed from the header's registry name and config
    (via :func:`~repro.core.estimator.estimator_from_config`) and its state
    restored from the archived arrays.  The envelope checksum is verified
    first (when present); damage raises
    :class:`~repro.core.errors.SnapshotCorruptError`.
    """
    header, prefixed, _ = _read_snapshot(path)
    arrays = {key[len(_ARRAY_PREFIX):]: value for key, value in prefixed.items()}
    estimator = estimator_from_config(
        {"name": header["estimator"], **header.get("config", {})}
    )
    estimator.load_state({**header, "arrays": arrays})
    return estimator
