"""Single-file ``.npz`` snapshots of fitted estimators.

The serialisation split is deliberate: estimators describe their state as
numpy arrays plus JSON scalars (``SelectivityEstimator.state_dict``), and
this module owns the on-disk envelope — a pickle-free ``savez`` archive with
a versioned JSON header.  See :mod:`repro.persist` for the format and its
versioning policy.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import IO, Any, Mapping

import numpy as np

from repro.core.errors import PersistenceError
from repro.core.estimator import SelectivityEstimator, estimator_from_config

__all__ = [
    "FORMAT_VERSION",
    "HEADER_KEY",
    "save_estimator",
    "load_estimator",
    "read_snapshot_header",
]

#: On-disk snapshot format version (see :mod:`repro.persist` for the policy).
FORMAT_VERSION = 1

#: Archive entry holding the UTF-8 JSON header.
HEADER_KEY = "__repro_header__"

#: Prefix namespacing estimator state arrays inside the archive.
_ARRAY_PREFIX = "a::"


def _json_default(value: Any) -> Any:
    """Fold numpy scalars/arrays that leak into headers back into JSON types."""
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"snapshot header value {value!r} is not JSON-serialisable")


def save_estimator(
    estimator: SelectivityEstimator,
    path: str | os.PathLike[str] | IO[bytes],
    schema: Mapping[str, Any] | None = None,
) -> None:
    """Write ``estimator`` as a single snapshot file at ``path``.

    The file is written through ``numpy.savez`` without pickle; the
    round-trip via :func:`load_estimator` reproduces ``estimate_batch``
    output bitwise.  ``schema`` (a ``TableSchema.to_json()`` payload, its own
    ``schema_version`` inside) rides along in the header so dictionary-encoded
    columns travel with the synopsis they were fitted on; readers that
    predate it ignore the extra key, so the snapshot format version is
    unchanged.  Parent directories are created.  (Writing is *not* atomic —
    the :class:`~repro.persist.store.ModelStore` layers atomic
    write-then-rename publishing on top.)
    """
    state = estimator.state_dict()
    arrays = state.pop("arrays")
    header = {"format": FORMAT_VERSION, **state}
    if schema is not None:
        header["schema"] = dict(schema)
    encoded = np.frombuffer(
        json.dumps(header, default=_json_default).encode("utf-8"), dtype=np.uint8
    )
    payload: dict[str, np.ndarray] = {HEADER_KEY: encoded}
    for key, value in arrays.items():
        payload[_ARRAY_PREFIX + key] = np.asarray(value)
    if hasattr(path, "write"):
        np.savez(path, **payload)
        return
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    # savez appends ".npz" to bare string paths; an opened handle writes the
    # archive to exactly the requested name.
    with open(target, "wb") as handle:
        np.savez(handle, **payload)


def _parse_header(data: Mapping[str, np.ndarray], source: str) -> dict[str, Any]:
    if HEADER_KEY not in data:
        raise PersistenceError(f"{source} is not an estimator snapshot (missing header)")
    try:
        header = json.loads(bytes(np.asarray(data[HEADER_KEY])).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise PersistenceError(f"{source} has a corrupt snapshot header") from error
    version = header.get("format")
    if not isinstance(version, int) or version < 1:
        raise PersistenceError(f"{source} has an invalid snapshot format marker")
    if version > FORMAT_VERSION:
        raise PersistenceError(
            f"{source} uses snapshot format {version}, but this build reads "
            f"only up to format {FORMAT_VERSION}"
        )
    return header


def read_snapshot_header(path: str | os.PathLike[str] | IO[bytes]) -> dict[str, Any]:
    """Read and validate just the JSON header of a snapshot (cheap metadata)."""
    with np.load(path, allow_pickle=False) as data:
        return _parse_header(data, str(path))


def load_estimator(path: str | os.PathLike[str] | IO[bytes]) -> SelectivityEstimator:
    """Rebuild the estimator persisted at ``path``.

    The estimator is constructed from the header's registry name and config
    (via :func:`~repro.core.estimator.estimator_from_config`) and its state
    restored from the archived arrays.
    """
    with np.load(path, allow_pickle=False) as data:
        header = _parse_header(data, str(path))
        arrays = {
            key[len(_ARRAY_PREFIX):]: np.array(data[key])
            for key in data.files
            if key.startswith(_ARRAY_PREFIX)
        }
    estimator = estimator_from_config(
        {"name": header["estimator"], **header.get("config", {})}
    )
    estimator.load_state({**header, "arrays": arrays})
    return estimator
