"""Versioned on-disk model store.

A :class:`ModelStore` is a directory of named models.  Each publish writes an
immutable snapshot file ``<root>/<name>/v<version>.npz`` with a monotonically
increasing version number, then flips the model's ``LATEST`` pointer — both
steps via write-to-temp + ``os.replace``, so readers never observe a torn
file and the pointer flip is the atomic publication point.  A prune policy
bounds how many historical versions a model keeps.

This is the catalog-facing persistence layer: ``Catalog.save(store)``
publishes every attached synopsis and ``Catalog.restore(store)`` re-attaches
the latest published versions without refitting, and the serving layer
(:mod:`repro.serve`) loads successive versions from a store to swap them in
behind a running server.
"""

from __future__ import annotations

import os
import re
import threading
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter

from repro.core.errors import PersistenceError
from repro.obs.metrics import default_metrics
from repro.core.estimator import SelectivityEstimator
from repro.persist.snapshot import load_estimator, read_snapshot_header, save_estimator

__all__ = ["ModelStore", "ModelVersion"]

_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")
_VERSION_PATTERN = re.compile(r"^v(\d{8})\.npz$")
_LATEST = "LATEST"


@dataclass(frozen=True)
class ModelVersion:
    """Handle to one published snapshot: model name, version and file path."""

    name: str
    version: int
    path: Path


class ModelStore:
    """Directory-backed store of named, versioned estimator snapshots.

    Parameters
    ----------
    root:
        Store directory (created on first use).
    keep_versions:
        Default prune policy applied after every publish: retain at most this
        many newest versions per model.  ``None`` keeps everything.
    metrics:
        Optional :class:`repro.obs.metrics.MetricsRegistry`.  When enabled,
        every :meth:`publish` records its end-to-end latency
        (``persist.publish_seconds``, the write-temp + claim + pointer-flip
        span) and bumps ``persist.publishes``.  Defaults to the
        process-default registry (no-op unless installed).
    """

    def __init__(
        self,
        root: str | os.PathLike[str],
        keep_versions: int | None = None,
        metrics=None,
    ):
        if keep_versions is not None and keep_versions < 1:
            raise PersistenceError("keep_versions must be at least 1")
        self.root = Path(root)
        self.keep_versions = keep_versions
        self.metrics = metrics if metrics is not None else default_metrics()
        self._lock = threading.Lock()
        self.root.mkdir(parents=True, exist_ok=True)

    # -- naming / layout -----------------------------------------------------
    def _model_dir(self, name: str) -> Path:
        if not _NAME_PATTERN.match(name):
            raise PersistenceError(
                f"invalid model name {name!r}: use letters, digits, '.', '_' or '-'"
            )
        return self.root / name

    def _version_path(self, name: str, version: int) -> Path:
        return self._model_dir(name) / f"v{version:08d}.npz"

    def model_names(self) -> list[str]:
        """Names of all models with at least one published version."""
        if not self.root.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if entry.is_dir() and self._scan_versions(entry)
        )

    @staticmethod
    def _scan_versions(model_dir: Path) -> list[int]:
        """Version numbers of the snapshot *files* in a model directory.

        Foreign entries are ignored: files that do not match the version
        pattern, and — crucially — directories even when their name does
        (a sharded-model manifest directory, a backup folder); treating a
        directory as a snapshot would corrupt ``LATEST`` resolution and make
        ``prune`` attempt to unlink it.
        """
        if not model_dir.is_dir():
            return []
        found = []
        for entry in model_dir.iterdir():
            match = _VERSION_PATTERN.match(entry.name)
            if match and entry.is_file():
                found.append(int(match.group(1)))
        return sorted(found)

    def versions(self, name: str) -> list[int]:
        """All published versions of ``name``, oldest first."""
        return self._scan_versions(self._model_dir(name))

    def latest_version(self, name: str) -> int | None:
        """Version the ``LATEST`` pointer designates (``None`` if unpublished).

        Falls back to the newest on-disk snapshot when the pointer is missing
        or stale — the snapshot files, not the pointer, are ground truth.
        """
        model_dir = self._model_dir(name)
        pointer = model_dir / _LATEST
        try:
            version = int(pointer.read_text().strip())
            if self._version_path(name, version).is_file():
                return version
        except (OSError, ValueError):
            pass
        versions = self._scan_versions(model_dir)
        return versions[-1] if versions else None

    # -- publish / load --------------------------------------------------------
    def publish(
        self,
        name: str,
        estimator: SelectivityEstimator,
        keep_versions: int | None = None,
        schema: dict | None = None,
    ) -> ModelVersion:
        """Persist ``estimator`` as the next version of model ``name``.

        ``schema`` (a ``TableSchema.to_json()`` payload) is embedded in the
        snapshot header so dictionary-encoded columns travel with the model;
        it is surfaced again by :meth:`describe`.

        The snapshot is written to a temporary file in the model directory
        and then *claimed* into its version slot with ``os.link``, which is
        atomic and fails if the slot already exists — so concurrent
        publishers (threads or separate processes) can never overwrite each
        other's snapshot; the loser simply takes the next version number.
        The ``LATEST`` pointer is flipped via write-to-temp + ``os.replace``
        afterwards, so a crash mid-publish leaves the previous version
        intact and readers never see a partial file.
        """
        publish_start = perf_counter() if self.metrics.enabled else 0.0
        model_dir = self._model_dir(name)
        model_dir.mkdir(parents=True, exist_ok=True)
        with self._lock:
            versions = self._scan_versions(model_dir)
            version = (versions[-1] if versions else 0) + 1
            temp_path = model_dir / f".publish.{os.getpid()}.{id(estimator):x}.tmp"
            try:
                save_estimator(estimator, temp_path, schema=schema)
                while True:
                    final_path = self._version_path(name, version)
                    try:
                        os.link(temp_path, final_path)
                        break
                    except FileExistsError:
                        version += 1  # lost a cross-process race: take the next slot
                    except OSError:
                        # Filesystem without hard links: fall back to a plain
                        # rename (still atomic, but last-writer-wins on a
                        # cross-process version collision).
                        os.replace(temp_path, final_path)
                        break
            finally:
                temp_path.unlink(missing_ok=True)
            self._write_pointer(model_dir, version)
            keep = keep_versions if keep_versions is not None else self.keep_versions
            if keep is not None:
                self._prune_locked(name, keep)
        if self.metrics.enabled:
            self.metrics.histogram("persist.publish_seconds").record(
                perf_counter() - publish_start
            )
            self.metrics.counter("persist.publishes").inc()
        return ModelVersion(name, version, final_path)

    @staticmethod
    def _write_pointer(model_dir: Path, version: int) -> None:
        pointer = model_dir / _LATEST
        try:
            # Never move the pointer backwards (a slower concurrent publisher
            # finishing late must not shadow a newer version).
            if int(pointer.read_text().strip()) >= version:
                return
        except (OSError, ValueError):
            pass
        temp_pointer = model_dir / f".{_LATEST}.{os.getpid()}.tmp"
        temp_pointer.write_text(f"{version}\n")
        os.replace(temp_pointer, pointer)

    def load(self, name: str, version: int | None = None) -> SelectivityEstimator:
        """Load one published version of ``name`` (default: the latest)."""
        return load_estimator(self._resolve(name, version).path)

    def describe(self, name: str, version: int | None = None) -> dict:
        """Snapshot header of a published version (cheap — no arrays read)."""
        return read_snapshot_header(self._resolve(name, version).path)

    def _resolve(self, name: str, version: int | None) -> ModelVersion:
        if version is None:
            version = self.latest_version(name)
            if version is None:
                raise PersistenceError(f"model {name!r} has no published versions")
        path = self._version_path(name, version)
        if not path.is_file():
            raise PersistenceError(f"model {name!r} has no version {version}")
        return ModelVersion(name, int(version), path)

    # -- retention -------------------------------------------------------------
    def prune(self, name: str, keep_versions: int) -> list[int]:
        """Delete all but the newest ``keep_versions`` versions of ``name``.

        Returns the removed version numbers.  The latest version is never
        removed.
        """
        with self._lock:
            return self._prune_locked(name, keep_versions)

    def _prune_locked(self, name: str, keep_versions: int) -> list[int]:
        if keep_versions < 1:
            raise PersistenceError("keep_versions must be at least 1")
        versions = self.versions(name)
        doomed = versions[:-keep_versions] if len(versions) > keep_versions else []
        removed = []
        for version in doomed:
            path = self._version_path(name, version)
            try:
                path.unlink(missing_ok=True)
            except OSError:
                # A foreign entry squatting on a version name (e.g. a
                # directory) is not ours to delete; skip it rather than
                # failing the publish that triggered the prune.
                continue
            removed.append(version)
        return removed
