"""Versioned on-disk model store.

A :class:`ModelStore` is a directory of named models.  Each publish writes an
immutable snapshot file ``<root>/<name>/v<version>.npz`` with a monotonically
increasing version number, then flips the model's ``LATEST`` pointer — both
steps via write-to-temp + ``os.replace``, so readers never observe a torn
file and the pointer flip is the atomic publication point.  A prune policy
bounds how many historical versions a model keeps.

This is the catalog-facing persistence layer: ``Catalog.save(store)``
publishes every attached synopsis and ``Catalog.restore(store)`` re-attaches
the latest published versions without refitting, and the serving layer
(:mod:`repro.serve`) loads successive versions from a store to swap them in
behind a running server.
"""

from __future__ import annotations

import logging
import os
import re
import threading
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter

try:  # POSIX advisory locking for the LATEST pointer flip
    from fcntl import LOCK_EX as _LOCK_EX, flock as _flock
except ImportError:  # pragma: no cover - non-POSIX fallback: in-process only
    _flock = None
    _LOCK_EX = 0

from repro.core.errors import PersistenceError, SnapshotCorruptError
from repro.fault.plan import inject, mutate_bytes
from repro.obs.metrics import default_metrics
from repro.core.estimator import SelectivityEstimator
from repro.persist.snapshot import (
    load_estimator,
    read_snapshot_header,
    save_estimator,
    verify_snapshot,
)

__all__ = ["ModelStore", "ModelVersion"]

logger = logging.getLogger("repro.persist")

_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")
_VERSION_PATTERN = re.compile(r"^v(\d{8})\.npz$")
_LATEST = "LATEST"

#: Suffix appended to a snapshot file when ``load`` quarantines it; the
#: resulting name no longer matches the version pattern, so scans, pruning
#: and pointer resolution all skip it (kept on disk for forensics).
_QUARANTINE_SUFFIX = ".corrupt"

#: Write attempts per publish when read-back verification is on.
_PUBLISH_ATTEMPTS = 4


@dataclass(frozen=True)
class ModelVersion:
    """Handle to one published snapshot: model name, version and file path."""

    name: str
    version: int
    path: Path


class ModelStore:
    """Directory-backed store of named, versioned estimator snapshots.

    Parameters
    ----------
    root:
        Store directory (created on first use).
    keep_versions:
        Default prune policy applied after every publish: retain at most this
        many newest versions per model.  ``None`` keeps everything.
    metrics:
        Optional :class:`repro.obs.metrics.MetricsRegistry`.  When enabled,
        every :meth:`publish` records its end-to-end latency
        (``persist.publish_seconds``, the write-temp + claim + pointer-flip
        span) and bumps ``persist.publishes``.  Recovery events bump
        ``persist.publish_retries`` (a publish temp file failed read-back
        verification and was rewritten), ``persist.quarantined`` (a corrupt
        snapshot was renamed aside) and ``persist.rollbacks`` (a latest-load
        fell back to an older intact version).  Defaults to the
        process-default registry (no-op unless installed).
    verify_publish:
        Read back and checksum-verify every publish's temp file before it is
        claimed into a version slot, rewriting on mismatch (up to 4
        attempts).  This catches write-path corruption the OS reports
        nothing about — but a read-back is served from the page cache, so
        corruption that lands *after* the verify (power-loss torn writes,
        bit rot) is still possible; :meth:`load` quarantines such versions
        and rolls back to the newest intact one.
    """

    def __init__(
        self,
        root: str | os.PathLike[str],
        keep_versions: int | None = None,
        metrics=None,
        verify_publish: bool = True,
    ):
        if keep_versions is not None and keep_versions < 1:
            raise PersistenceError("keep_versions must be at least 1")
        self.root = Path(root)
        self.keep_versions = keep_versions
        self.metrics = metrics if metrics is not None else default_metrics()
        self.verify_publish = verify_publish
        self._lock = threading.Lock()
        self.root.mkdir(parents=True, exist_ok=True)

    # -- naming / layout -----------------------------------------------------
    def _model_dir(self, name: str) -> Path:
        if not _NAME_PATTERN.match(name):
            raise PersistenceError(
                f"invalid model name {name!r}: use letters, digits, '.', '_' or '-'"
            )
        return self.root / name

    def _version_path(self, name: str, version: int) -> Path:
        return self._model_dir(name) / f"v{version:08d}.npz"

    def model_names(self) -> list[str]:
        """Names of all models with at least one published version."""
        if not self.root.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if entry.is_dir() and self._scan_versions(entry)
        )

    @staticmethod
    def _scan_versions(model_dir: Path) -> list[int]:
        """Version numbers of the snapshot *files* in a model directory.

        Foreign entries are ignored: files that do not match the version
        pattern, and — crucially — directories even when their name does
        (a sharded-model manifest directory, a backup folder); treating a
        directory as a snapshot would corrupt ``LATEST`` resolution and make
        ``prune`` attempt to unlink it.
        """
        if not model_dir.is_dir():
            return []
        found = []
        for entry in model_dir.iterdir():
            match = _VERSION_PATTERN.match(entry.name)
            if match and entry.is_file():
                found.append(int(match.group(1)))
        return sorted(found)

    def versions(self, name: str) -> list[int]:
        """All published versions of ``name``, oldest first."""
        return self._scan_versions(self._model_dir(name))

    def latest_version(self, name: str) -> int | None:
        """Version the ``LATEST`` pointer designates (``None`` if unpublished).

        Falls back to the newest on-disk snapshot when the pointer is
        missing, empty, garbage, or names a version that no longer exists —
        the snapshot files, not the pointer, are ground truth — and then
        *repairs* the pointer so the next reader skips the scan.  The repair
        re-validates the pointer under the pointer flock (a concurrent
        publisher may have flipped it to a newer valid version meanwhile,
        which always wins) and is skipped on a read-only store, where the
        scan result is served without rewriting anything.
        """
        model_dir = self._model_dir(name)
        pointer = model_dir / _LATEST
        try:
            version = int(pointer.read_text().strip())
            if self._version_path(name, version).is_file():
                return version
        except (OSError, ValueError):
            pass
        versions = self._scan_versions(model_dir)
        if not versions:
            return None
        if pointer.exists():
            logger.warning(
                "repairing unusable LATEST pointer for model %r -> v%d",
                name,
                versions[-1],
            )
        with self._lock:
            try:
                self._write_pointer(model_dir, versions[-1], repair=True)
            except OSError:
                # Read-only store: keep resolving via the scan.
                return versions[-1]
        # Re-read after the repair: a concurrent publisher may have flipped
        # the pointer to a newer version, which _write_pointer (correctly)
        # refused to overwrite.
        try:
            version = int(pointer.read_text().strip())
            if self._version_path(name, version).is_file():
                return version
        except (OSError, ValueError):
            pass
        return versions[-1]

    # -- publish / load --------------------------------------------------------
    def publish(
        self,
        name: str,
        estimator: SelectivityEstimator,
        keep_versions: int | None = None,
        schema: dict | None = None,
    ) -> ModelVersion:
        """Persist ``estimator`` as the next version of model ``name``.

        ``schema`` (a ``TableSchema.to_json()`` payload) is embedded in the
        snapshot header so dictionary-encoded columns travel with the model;
        it is surfaced again by :meth:`describe`.

        The snapshot is written to a temporary file in the model directory
        and then *claimed* into its version slot with ``os.link``, which is
        atomic and fails if the slot already exists — so concurrent
        publishers (threads or separate processes) can never overwrite each
        other's snapshot; the loser simply takes the next version number.
        The ``LATEST`` pointer is flipped via write-to-temp + ``os.replace``
        afterwards, so a crash mid-publish leaves the previous version
        intact and readers never see a partial file.  With
        ``verify_publish`` (the default) the temp file is read back and
        checksum-verified before the claim; a failed verification rewrites
        it, up to 4 attempts, then raises
        :class:`~repro.core.errors.SnapshotCorruptError` rather than ever
        claiming a corrupt file.
        """
        publish_start = perf_counter() if self.metrics.enabled else 0.0
        model_dir = self._model_dir(name)
        model_dir.mkdir(parents=True, exist_ok=True)
        with self._lock:
            versions = self._scan_versions(model_dir)
            version = (versions[-1] if versions else 0) + 1
            temp_path = model_dir / f".publish.{os.getpid()}.{id(estimator):x}.tmp"
            try:
                for attempt in range(_PUBLISH_ATTEMPTS):
                    save_estimator(
                        estimator,
                        temp_path,
                        schema=schema,
                        fault_point="persist.publish.write",
                    )
                    if not self.verify_publish:
                        break
                    try:
                        verify_snapshot(temp_path)
                        break
                    except SnapshotCorruptError:
                        temp_path.unlink(missing_ok=True)
                        self.metrics.counter("persist.publish_retries").inc()
                        logger.warning(
                            "publish of model %r v%d failed read-back "
                            "verification (attempt %d/%d)",
                            name,
                            version,
                            attempt + 1,
                            _PUBLISH_ATTEMPTS,
                        )
                        if attempt == _PUBLISH_ATTEMPTS - 1:
                            raise
                while True:
                    final_path = self._version_path(name, version)
                    try:
                        os.link(temp_path, final_path)
                        break
                    except FileExistsError:
                        version += 1  # lost a cross-process race: take the next slot
                    except OSError:
                        # Filesystem without hard links: fall back to a plain
                        # rename (still atomic, but last-writer-wins on a
                        # cross-process version collision).
                        os.replace(temp_path, final_path)
                        break
            finally:
                temp_path.unlink(missing_ok=True)
            # The pointer flip below is the commit point.  A crash in this
            # window leaves an orphaned (claimed but never announced)
            # version slot: readers keep serving the previous version and
            # the next publish claims the slot after the orphan.
            inject("persist.publish.crash")
            self._write_pointer(model_dir, version)
            keep = keep_versions if keep_versions is not None else self.keep_versions
            if keep is not None:
                self._prune_locked(name, keep)
        if self.metrics.enabled:
            self.metrics.histogram("persist.publish_seconds").record(
                perf_counter() - publish_start
            )
            self.metrics.counter("persist.publishes").inc()
        return ModelVersion(name, version, final_path)

    @staticmethod
    def _write_pointer(model_dir: Path, version: int, repair: bool = False) -> None:
        pointer = model_dir / _LATEST
        # The read-guard + replace below is not atomic, so the whole flip is
        # serialised through an advisory file lock — it covers independent
        # store handles and separate processes, which the in-process lock
        # cannot.  (Released when the descriptor closes.)
        with open(model_dir / f".{_LATEST}.lock", "w") as lock_file:
            if _flock is not None:
                _flock(lock_file, _LOCK_EX)
            try:
                current = int(pointer.read_text().strip())
            except (OSError, ValueError):
                current = None
            if current is not None and current >= version:
                # Never move the pointer backwards (a slower concurrent
                # publisher finishing late must not shadow a newer version).
                # ``repair`` (pointer repair / corruption rollback) may
                # regress only when the pointed-to snapshot is actually gone
                # (quarantined or deleted): the check runs under the flock,
                # so a concurrent publisher that flipped the pointer to a
                # newer intact version since the caller scanned always wins.
                pointed = model_dir / f"v{current:08d}.npz"
                if not repair or pointed.is_file():
                    return
            temp_pointer = model_dir / f".{_LATEST}.{os.getpid()}.{threading.get_ident()}.tmp"
            temp_pointer.write_bytes(
                mutate_bytes("persist.pointer.write", f"{version}\n".encode())
            )
            os.replace(temp_pointer, pointer)

    def load(self, name: str, version: int | None = None) -> SelectivityEstimator:
        """Load one published version of ``name`` (default: the latest).

        Loading the latest version is corruption-tolerant: a version that
        fails checksum verification is quarantined (renamed aside) and the
        load *rolls back* to the newest intact version, repairing the
        ``LATEST`` pointer — a corrupt snapshot is never served.  Loading an
        explicitly requested version raises
        :class:`~repro.core.errors.SnapshotCorruptError` without touching
        the file (the caller targeted those exact bytes).
        """
        if version is not None:
            return load_estimator(self._resolve(name, version).path)
        return self.load_latest(name)[1]

    def load_latest(self, name: str) -> tuple[ModelVersion, SelectivityEstimator]:
        """Load the newest *intact* version of ``name`` with its handle.

        Corrupt versions encountered on the way are quarantined (renamed
        with a ``.corrupt`` suffix, bumping ``persist.quarantined``) and the
        search rolls back to older versions (``persist.rollbacks``); the
        ``LATEST`` pointer is repaired to the version actually served.
        Raises :class:`~repro.core.errors.PersistenceError` when no intact
        version remains.
        """
        rolled_back = False
        tried: set[int] = set()
        last_error: SnapshotCorruptError | None = None
        while True:
            try:
                resolved = self._resolve(name, None)
            except PersistenceError:
                if last_error is not None:
                    raise PersistenceError(
                        f"model {name!r} has no intact versions "
                        f"(all quarantined; last failure: {last_error})"
                    ) from last_error
                raise
            if resolved.version in tried:
                # Quarantine could not move the file aside (read-only
                # store); re-resolving would spin on the same version.
                assert last_error is not None
                raise last_error
            tried.add(resolved.version)
            try:
                estimator = load_estimator(resolved.path)
            except SnapshotCorruptError as error:
                self._quarantine(resolved)
                last_error = error
                rolled_back = True
                continue
            if rolled_back:
                self.metrics.counter("persist.rollbacks").inc()
                logger.warning(
                    "model %r rolled back to intact version %d", name, resolved.version
                )
                with self._lock:
                    try:
                        self._write_pointer(
                            self._model_dir(name), resolved.version, repair=True
                        )
                    except OSError:
                        # Read-only store: quarantine already degraded to
                        # best-effort; keep serving the intact version found.
                        pass
            return resolved, estimator

    def _quarantine(self, resolved: ModelVersion) -> Path:
        """Rename a corrupt snapshot aside so scans and loads skip it."""
        corrupt_path = resolved.path.with_name(resolved.path.name + _QUARANTINE_SUFFIX)
        try:
            os.replace(resolved.path, corrupt_path)
        except OSError:
            # Renaming is best-effort (read-only store, concurrent
            # quarantine); resolution order still skips the version once the
            # caller records the failure, and re-reading it just fails again.
            pass
        self.metrics.counter("persist.quarantined").inc()
        logger.warning(
            "quarantined corrupt snapshot %s (model %r version %d)",
            corrupt_path,
            resolved.name,
            resolved.version,
        )
        return corrupt_path

    def describe(self, name: str, version: int | None = None) -> dict:
        """Snapshot header of a published version (cheap — no arrays read)."""
        return read_snapshot_header(self._resolve(name, version).path)

    def _resolve(self, name: str, version: int | None) -> ModelVersion:
        if version is None:
            version = self.latest_version(name)
            if version is None:
                raise PersistenceError(f"model {name!r} has no published versions")
        path = self._version_path(name, version)
        if not path.is_file():
            raise PersistenceError(f"model {name!r} has no version {version}")
        return ModelVersion(name, int(version), path)

    # -- retention -------------------------------------------------------------
    def prune(self, name: str, keep_versions: int) -> list[int]:
        """Delete all but the newest ``keep_versions`` versions of ``name``.

        Returns the removed version numbers.  The latest version is never
        removed.
        """
        with self._lock:
            return self._prune_locked(name, keep_versions)

    def _prune_locked(self, name: str, keep_versions: int) -> list[int]:
        if keep_versions < 1:
            raise PersistenceError("keep_versions must be at least 1")
        versions = self.versions(name)
        doomed = versions[:-keep_versions] if len(versions) > keep_versions else []
        removed = []
        for version in doomed:
            path = self._version_path(name, version)
            try:
                path.unlink(missing_ok=True)
            except OSError:
                # A foreign entry squatting on a version name (e.g. a
                # directory) is not ours to delete; skip it rather than
                # failing the publish that triggered the prune.
                continue
            removed.append(version)
        return removed
