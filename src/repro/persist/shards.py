"""Sharded-model manifests: one directory, one npz per shard.

The single-file snapshot (:mod:`repro.persist.snapshot`) already round-trips
a :class:`~repro.shard.sharded.ShardedEstimator` — every shard's arrays
travel inside one archive, which is what :class:`~repro.persist.store.ModelStore`
publishes.  The *manifest* layout persisted here is the operational
alternative for large sharded models: each shard synopsis is written as an
ordinary estimator snapshot file of its own, so shards can be copied,
distributed and reloaded independently, and a per-shard refresh only rewrites
one file.

Layout of a manifest directory::

    <dir>/manifest.json      versioned JSON header (see below)
    <dir>/shard-0000.npz     standard estimator snapshot of shard 0
    <dir>/shard-0001.npz     ... one per shard

``manifest.json`` carries the snapshot format version, the front end's
reconstruction config, the fitted envelope (columns, row count), the
partitioner config/state (routing boundaries are JSON-encoded — they are a
handful of floats, and Python's JSON floats round-trip float64 bitwise) and
the shard file names.  The shard files are self-contained snapshots, so a
partial reader can load any single shard with
:func:`repro.persist.snapshot.load_estimator` without touching the manifest.

A manifest directory is deliberately inert inside a
:class:`~repro.persist.store.ModelStore` root or model directory: the store's
version scans and prune only consider ``v<NNNNNNNN>.npz`` *files*, so the two
layouts can share a directory tree.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.errors import PersistenceError
from repro.persist.snapshot import FORMAT_VERSION, load_estimator, save_estimator
from repro.shard.partition import make_partitioner
from repro.shard.sharded import ShardedEstimator

__all__ = ["save_sharded", "load_sharded", "MANIFEST_NAME"]

#: File name of the manifest inside a sharded-model directory.
MANIFEST_NAME = "manifest.json"


def _shard_file(index: int) -> str:
    return f"shard-{index:04d}.npz"


def save_sharded(
    estimator: ShardedEstimator,
    directory: str | os.PathLike[str],
    schema: dict | None = None,
) -> Path:
    """Write ``estimator`` as a manifest directory (see module docstring).

    ``schema`` (a ``TableSchema.to_json()`` payload, carrying its own
    ``schema_version``) is embedded verbatim in the manifest so the
    dictionaries of encoded columns travel with the sharded model; loaders
    that predate the key ignore it.  The manifest is written last, so a
    crashed save never leaves a directory that parses as a complete model.
    Returns the manifest path.
    """
    if not isinstance(estimator, ShardedEstimator):
        raise PersistenceError(
            f"save_sharded persists ShardedEstimator models, got "
            f"{type(estimator).__name__} (use save_estimator instead)"
        )
    if not estimator.is_fitted:
        raise PersistenceError("cannot write a manifest for an unfitted model")
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    shards = estimator.shard_estimators
    for index, shard in enumerate(shards):
        save_estimator(shard, target / _shard_file(index))
    partitioner = estimator.partitioner
    part_arrays, part_meta = partitioner.state()
    frame = estimator._frame
    manifest: dict[str, Any] = {
        "format": FORMAT_VERSION,
        "estimator": estimator.name,
        "config": estimator._config_params(),
        "columns": list(estimator.columns),
        "row_count": int(estimator.row_count),
        "shard_files": [_shard_file(i) for i in range(len(shards))],
        "partitioner": {
            "config": partitioner.config(),
            "meta": part_meta,
            "arrays": {k: np.asarray(v).tolist() for k, v in part_arrays.items()},
        },
        "frame": (
            {k: np.asarray(v).tolist() for k, v in frame.items()}
            if frame is not None
            else None
        ),
    }
    if schema is not None:
        manifest["schema"] = dict(schema)
    temp_path = target / f".{MANIFEST_NAME}.{os.getpid()}.tmp"
    temp_path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    manifest_path = target / MANIFEST_NAME
    os.replace(temp_path, manifest_path)
    return manifest_path


def load_sharded(directory: str | os.PathLike[str]) -> ShardedEstimator:
    """Rebuild the sharded model persisted at ``directory`` by :func:`save_sharded`."""
    target = Path(directory)
    manifest_path = target / MANIFEST_NAME
    try:
        manifest = json.loads(manifest_path.read_text())
    except FileNotFoundError:
        raise PersistenceError(
            f"{target} is not a sharded-model directory (no {MANIFEST_NAME})"
        ) from None
    except json.JSONDecodeError as error:
        raise PersistenceError(f"{manifest_path} holds a corrupt manifest") from error
    version = manifest.get("format")
    if not isinstance(version, int) or version < 1:
        raise PersistenceError(f"{manifest_path} has an invalid format marker")
    if version > FORMAT_VERSION:
        raise PersistenceError(
            f"{manifest_path} uses snapshot format {version}, but this build "
            f"reads only up to format {FORMAT_VERSION}"
        )
    config = manifest.get("config", {})
    front = ShardedEstimator(**config)
    shards = []
    for name in manifest.get("shard_files", []):
        shard_path = target / name
        if not shard_path.is_file():
            raise PersistenceError(f"manifest references missing shard file {name!r}")
        shards.append(load_estimator(shard_path))
    part = manifest.get("partitioner") or {}
    partitioner = make_partitioner(part.get("config", "hash"), front.shard_count)
    partitioner.load_state(
        {k: np.asarray(v, dtype=float) for k, v in part.get("arrays", {}).items()},
        part.get("meta", {}),
    )
    frame = manifest.get("frame")
    return front.adopt(
        shards,
        partitioner,
        None
        if frame is None
        else {k: np.asarray(v, dtype=float) for k, v in frame.items()},
        row_count=manifest.get("row_count"),
    )
