"""Deterministic fault injection: seedable plans armed at named points.

Production code is sprinkled with *injection points* — cheap, inert-by-default
hooks named like metrics (``"persist.publish.write"``, ``"shard.task"``).
Three hook shapes cover the fault surface:

- :func:`inject` — control-flow faults: raise :class:`InjectedFault` or hang
  (a bounded sleep) at the point.
- :func:`mutate_bytes` — data faults: tear (truncate) or bit-flip a byte
  payload on its way to disk.
- :func:`skew_clock` — time faults: offset a timestamp before it is used.

A :class:`FaultPlan` arms rules against those points.  Rules fire
deterministically: every call to a point bumps a per-point hit counter, and a
rule fires based on that counter (``at=``/``after=``/``every=``/``limit=``)
or on a draw from a per-point RNG seeded from ``(plan seed, point name)``
(``probability=``).  Replaying the same call sequence against the same plan
replays the same faults — no real process kills, no flakiness.

The default plan is the inert :data:`NULL_PLAN` (mirroring
``obs.metrics.NULL_REGISTRY``): unarmed code pays one global load and a
branch per point.  Arm a plan process-wide with :func:`set_default_fault_plan`
or for a scope with the :func:`use_fault_plan` context manager.
"""

from __future__ import annotations

import threading
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field, fields
from fnmatch import fnmatchcase
from typing import Iterator, Sequence

import numpy as np

from repro.core.errors import InjectedFault, InvalidParameterError

__all__ = [
    "ACTIONS",
    "FaultPlan",
    "FaultRule",
    "NULL_PLAN",
    "NullFaultPlan",
    "RECOVERABLE_POINTS",
    "default_fault_plan",
    "inject",
    "mutate_bytes",
    "random_plan",
    "set_default_fault_plan",
    "skew_clock",
    "use_fault_plan",
]

#: Supported rule actions.  ``raise`` and ``hang`` apply at :func:`inject`
#: points (``raise`` also fails :func:`mutate_bytes` writes); ``torn`` and
#: ``bitflip`` apply at :func:`mutate_bytes` points; ``skew`` applies at
#: :func:`skew_clock` points.
ACTIONS = ("raise", "hang", "torn", "bitflip", "skew")

#: Injection points that the hardened layers absorb *by design* (publish
#: verify-and-retry, executor transient retries).  A low-rate random plan
#: over these points — see :func:`random_plan` — can be armed under a full
#: test run without changing any test's outcome.
RECOVERABLE_POINTS = ("persist.publish.write", "shard.task")

#: Default action used by :func:`random_plan` for each recoverable point.
_RANDOM_ACTIONS = {"persist.publish.write": "bitflip", "shard.task": "raise"}


@dataclass
class FaultRule:
    """One armed fault: *where* it applies, *what* it does, *when* it fires.

    Scheduling fields compose: a rule fires on a given hit iff the hit index
    (1-based, per point) is listed in ``at`` (when non-empty), is past
    ``after``, lands on an ``every`` stride, survives a ``probability`` draw,
    and the rule has fired fewer than ``limit`` times.
    """

    pattern: str
    action: str = "raise"
    at: tuple[int, ...] = ()
    after: int = 0
    every: int = 1
    probability: float = 1.0
    limit: int | None = None
    fraction: float = 0.5  # torn: fraction of the payload kept
    flips: int = 1  # bitflip: number of bits flipped
    delay: float = 0.0  # hang: seconds slept
    skew: float = 0.0  # skew: seconds added to the clock
    message: str = ""
    fired: int = field(default=0, compare=False)

    def matches(self, point: str) -> bool:
        return fnmatchcase(point, self.pattern)

    def _due(self, hit: int, rng: np.random.Generator) -> bool:
        """Whether this rule fires on hit number ``hit`` of its point.

        The probability draw is consumed only for probabilistic rules so that
        deterministic (``at=``/``every=``) rules never perturb the stream.
        """
        if self.limit is not None and self.fired >= self.limit:
            return False
        if self.at:
            return hit in self.at
        if hit <= self.after:
            return False
        if (hit - self.after - 1) % self.every != 0:
            return False
        if self.probability < 1.0 and rng.random() >= self.probability:
            return False
        return True


#: Keyword options :meth:`FaultPlan.arm` accepts — every ``FaultRule`` field
#: except the positionals and the ``fired`` bookkeeping counter.
_RULE_OPTIONS = frozenset(f.name for f in fields(FaultRule)) - {
    "pattern",
    "action",
    "fired",
}


class FaultPlan:
    """A seedable schedule of faults armed against named injection points.

    Thread-safe: hit accounting and RNG draws are serialized, so concurrent
    callers (thread-backend shard workers, serving threads) see a consistent
    fault budget — though with ``probability`` rules the *assignment* of
    draws to threads follows scheduling order.  Counter-scheduled rules
    (``at=``, ``every=``) stay exactly reproducible under a fixed call
    sequence.
    """

    enabled = True

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self.rules: list[FaultRule] = []
        self.hits: dict[str, int] = {}
        self.fired: dict[str, int] = {}
        self._rngs: dict[str, np.random.Generator] = {}
        self._lock = threading.Lock()

    def arm(self, pattern: str, action: str = "raise", **kwargs: object) -> FaultRule:
        """Arm a rule at ``pattern`` (exact point name or fnmatch glob).

        Options are validated *before* the rule is built: an unknown option,
        a malformed ``at``, or any out-of-range value raises
        :class:`~repro.core.errors.InvalidParameterError` (never a raw
        ``TypeError``) and nothing is armed.
        """
        if action not in ACTIONS:
            raise InvalidParameterError(
                f"unknown fault action {action!r}; expected one of {ACTIONS}"
            )
        unknown = set(kwargs) - _RULE_OPTIONS
        if unknown:
            raise InvalidParameterError(
                f"unknown fault rule option(s) {sorted(unknown)}; "
                f"expected any of {sorted(_RULE_OPTIONS)}"
            )
        if "at" in kwargs:
            kwargs["at"] = self._coerce_at(kwargs["at"])
        try:
            rule = FaultRule(pattern=pattern, action=action, **kwargs)  # type: ignore[arg-type]
        except (TypeError, ValueError) as error:
            raise InvalidParameterError(f"invalid fault rule options: {error}") from error
        if rule.every < 1:
            raise InvalidParameterError("every must be >= 1")
        if not 0.0 <= rule.probability <= 1.0:
            raise InvalidParameterError("probability must be in [0, 1]")
        if not 0.0 <= rule.fraction < 1.0:
            raise InvalidParameterError("fraction must be in [0, 1)")
        with self._lock:
            self.rules.append(rule)
        return rule

    @staticmethod
    def _coerce_at(value: object) -> tuple[int, ...]:
        """Normalise an ``at=`` option into a tuple of hit indices.

        Accepts a single hit number or any iterable of them, so
        ``arm(p, at=3)`` and ``arm(p, at=(3,))`` are equivalent.
        """
        if isinstance(value, (int, np.integer)):
            return (int(value),)
        try:
            return tuple(int(i) for i in value)  # type: ignore[union-attr]
        except (TypeError, ValueError) as error:
            raise InvalidParameterError(
                f"at must be a hit number or an iterable of hit numbers, "
                f"got {value!r}"
            ) from error

    def reset_counters(self) -> None:
        """Zero all hit/fire accounting (rules stay armed)."""
        with self._lock:
            self.hits.clear()
            self.fired.clear()
            self._rngs.clear()
            for rule in self.rules:
                rule.fired = 0

    # -- hit dispatch -----------------------------------------------------

    def _rng(self, point: str) -> np.random.Generator:
        rng = self._rngs.get(point)
        if rng is None:
            entropy = np.random.SeedSequence([self.seed, zlib.crc32(point.encode())])
            rng = self._rngs[point] = np.random.default_rng(entropy)
        return rng

    def _hit(self, point: str) -> FaultRule | None:
        """Count a hit at ``point`` and return the first rule that fires."""
        with self._lock:
            hit = self.hits.get(point, 0) + 1
            self.hits[point] = hit
            for rule in self.rules:
                if rule.matches(point) and rule._due(hit, self._rng(point)):
                    rule.fired += 1
                    self.fired[point] = self.fired.get(point, 0) + 1
                    return rule
        return None

    # -- the three hook shapes -------------------------------------------

    def inject(self, point: str) -> None:
        """Control-flow hook: raise or hang when an armed rule fires."""
        rule = self._hit(point)
        if rule is None:
            return
        if rule.action == "hang":
            time.sleep(rule.delay)
        elif rule.action == "raise":
            raise InjectedFault(point, rule.message)

    def mutate_bytes(self, point: str, data: bytes) -> bytes:
        """Data hook: tear, bit-flip, or fail a byte payload."""
        rule = self._hit(point)
        if rule is None or not data:
            return data
        if rule.action == "raise":
            raise InjectedFault(point, rule.message)
        if rule.action == "torn":
            return data[: max(1, int(len(data) * rule.fraction))]
        if rule.action == "bitflip":
            buf = bytearray(data)
            rng = self._rng(point)
            with self._lock:
                positions = rng.integers(0, len(buf) * 8, size=max(1, rule.flips))
            for pos in positions:
                buf[int(pos) // 8] ^= 1 << (int(pos) % 8)
            return bytes(buf)
        return data

    def skew_clock(self, point: str, now: float) -> float:
        """Time hook: offset a timestamp when an armed ``skew`` rule fires."""
        rule = self._hit(point)
        if rule is not None and rule.action == "skew":
            return now + rule.skew
        return now

    # -- introspection ----------------------------------------------------

    def describe(self) -> dict[str, object]:
        with self._lock:
            return {
                "seed": self.seed,
                "rules": len(self.rules),
                "hits": dict(self.hits),
                "fired": dict(self.fired),
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan(seed={self.seed}, rules={len(self.rules)})"

    # Plans travel by reference through deepcopy (copied estimators keep
    # injecting into the same schedule) and pickle to the inert plan, so a
    # process-pool worker never double-counts hits armed in the parent.
    def __deepcopy__(self, memo: dict) -> "FaultPlan":
        return self

    def __reduce__(self):
        return (_null_plan, ())


class NullFaultPlan(FaultPlan):
    """The inert default: every hook is a no-op and ``arm`` is refused."""

    enabled = False

    def arm(self, pattern: str, action: str = "raise", **kwargs: object) -> FaultRule:
        raise InvalidParameterError(
            "cannot arm rules on the null fault plan; create a FaultPlan() and "
            "install it with set_default_fault_plan() or use_fault_plan()"
        )

    def inject(self, point: str) -> None:
        return None

    def mutate_bytes(self, point: str, data: bytes) -> bytes:
        return data

    def skew_clock(self, point: str, now: float) -> float:
        return now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NullFaultPlan()"


#: Process-wide inert plan; shared, stateless, safe from any thread.
NULL_PLAN = NullFaultPlan()


def _null_plan() -> NullFaultPlan:
    return NULL_PLAN


_default_plan: FaultPlan = NULL_PLAN


def default_fault_plan() -> FaultPlan:
    """Return the process-default fault plan (the inert plan unless armed)."""
    return _default_plan


def set_default_fault_plan(plan: FaultPlan | None) -> FaultPlan:
    """Install ``plan`` as the process default; ``None`` restores inertness.

    Returns the previous default so callers can restore it.
    """
    global _default_plan
    previous = _default_plan
    _default_plan = NULL_PLAN if plan is None else plan
    return previous


@contextmanager
def use_fault_plan(plan: FaultPlan | None) -> Iterator[FaultPlan]:
    """Scope ``plan`` as the process default for a ``with`` block."""
    previous = set_default_fault_plan(plan)
    try:
        yield _default_plan
    finally:
        set_default_fault_plan(previous)


def inject(point: str) -> None:
    """Module-level hook: dispatch ``point`` against the default plan.

    Inert-by-default: when no plan is armed this is one attribute load and a
    class-level flag check.
    """
    plan = _default_plan
    if plan.enabled:
        plan.inject(point)


def mutate_bytes(point: str, data: bytes) -> bytes:
    plan = _default_plan
    if plan.enabled:
        return plan.mutate_bytes(point, data)
    return data


def skew_clock(point: str, now: float) -> float:
    plan = _default_plan
    if plan.enabled:
        return plan.skew_clock(point, now)
    return now


def random_plan(
    rate: float,
    seed: int = 0,
    points: Sequence[str] = RECOVERABLE_POINTS,
) -> FaultPlan:
    """Low-rate random plan over points the library recovers from by design.

    Used by the CI fault-injection leg: arming this plan under the full
    persist/serve/shard suites must not change any test outcome, because
    every armed point sits behind a retry layer (publish verify-and-retry,
    executor transient retries).  Keep ``rate`` small: a fault must fire on
    *consecutive* retries of the same operation to escape, so the escape
    probability per operation is roughly ``rate ** (retries + 1)``.
    """
    plan = FaultPlan(seed=seed)
    for point in points:
        plan.arm(point, action=_RANDOM_ACTIONS.get(point, "raise"), probability=rate)
    return plan
