"""Deterministic fault injection (`repro.fault`).

Seedable :class:`FaultPlan` schedules armed against named injection points
sprinkled through the persist/shard/serve layers; inert by default.  See
:mod:`repro.fault.plan` for the model and ``ARCHITECTURE.md`` ("Fault model
& recovery") for the catalogue of injection points.
"""

from repro.fault.plan import (
    ACTIONS,
    NULL_PLAN,
    RECOVERABLE_POINTS,
    FaultPlan,
    FaultRule,
    NullFaultPlan,
    default_fault_plan,
    inject,
    mutate_bytes,
    random_plan,
    set_default_fault_plan,
    skew_clock,
    use_fault_plan,
)

__all__ = [
    "ACTIONS",
    "FaultPlan",
    "FaultRule",
    "NULL_PLAN",
    "NullFaultPlan",
    "RECOVERABLE_POINTS",
    "default_fault_plan",
    "inject",
    "mutate_bytes",
    "random_plan",
    "set_default_fault_plan",
    "skew_clock",
    "use_fault_plan",
]
