"""Parallel execution layer for per-shard work.

A :class:`ShardExecutor` runs one task per shard — fit, bulk insert,
``estimate_batch`` — on a ``concurrent.futures`` pool and always falls back
to serial execution when a pool cannot be created (restricted environments,
no usable ``fork``) or is not worth spinning up (one shard, one worker).

Backend guidance:

* ``"thread"`` (default) — numpy releases the GIL inside the kernels that
  dominate fitting and batch estimation, so threads overlap on multi-core
  hardware with zero serialisation cost.  Safe for every task type.
* ``"process"`` — true parallelism for Python-heavy fits; tasks and results
  cross process boundaries by pickling, so it pays off for expensive fits on
  large shards and is wasted on cheap per-shard estimates.
* ``"serial"`` — no pool at all; the deterministic reference path.

Results preserve task order regardless of completion order, and a task
exception propagates to the caller after the remaining tasks finish
(the pool is always drained, never abandoned mid-flight).

Fault tolerance: tasks that fail with a *transient* error (an injected
fault, a timeout, a dropped connection) are retried in place with
exponential backoff (``retries`` attempts, ``shard.task_retries`` counter).
A broken pool (``BrokenProcessPool`` and kin) degrades the executor to the
serial reference path — once, with a warning log and a
``shard.pool_broken`` counter, after which the executor stays serial rather
than paying the broken-pool discovery cost on every map.
"""

from __future__ import annotations

import logging
import os
import time
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from time import perf_counter
from typing import Any, Callable, Iterable, Sequence

from repro.core.errors import InjectedFault, InvalidParameterError
from repro.fault.plan import inject
from repro.obs.metrics import default_metrics

__all__ = ["ShardExecutor", "BACKENDS", "TRANSIENT_ERRORS"]

logger = logging.getLogger("repro.shard")

BACKENDS = ("serial", "thread", "process")

#: Exception types retried as transient worker failures.  ``InjectedFault``
#: is the deterministic stand-in used by fault-injection tests; the rest are
#: the usual flaky-infrastructure suspects.
TRANSIENT_ERRORS = (
    InjectedFault,
    TimeoutError,
    ConnectionError,
    InterruptedError,
)


def _cpu_count() -> int:
    try:
        return os.cpu_count() or 1
    except Exception:  # pragma: no cover - platform oddity
        return 1


class ShardExecutor:
    """Maps a function over per-shard tasks, in parallel where possible.

    Parameters
    ----------
    backend:
        ``"serial"``, ``"thread"`` or ``"process"`` (see module docstring).
        ``None`` means ``"serial"``.
    max_workers:
        Pool width; defaults to ``min(tasks, cpu_count)`` at call time.
    retries:
        Extra attempts per task when it fails with one of
        :data:`TRANSIENT_ERRORS`, with exponential backoff starting at
        ``retry_backoff`` seconds.  Applied on the serial and thread
        backends (and the serial fallback); a process pool cannot pickle
        the retry wrapper, so its tasks run unwrapped.  ``0`` disables.
    retry_backoff:
        First-retry sleep in seconds; attempt ``k`` sleeps
        ``retry_backoff * 2**(k-1)``.
    metrics:
        Optional :class:`repro.obs.metrics.MetricsRegistry`.  When enabled,
        every :meth:`map` records its wall-clock span
        (``shard.map_seconds``) and — on the serial/thread backends, where
        the wrapper needs no pickling — each task's span
        (``shard.task_seconds``), labelled with the caller-supplied ``op``.
        Transient retries bump ``shard.task_retries``; a broken pool bumps
        ``shard.pool_broken``.  Defaults to the process-default registry
        (no-op unless installed).
    """

    def __init__(
        self,
        backend: str | None = "thread",
        max_workers: int | None = None,
        metrics=None,
        retries: int = 2,
        retry_backoff: float = 0.01,
    ) -> None:
        backend = backend or "serial"
        if backend not in BACKENDS:
            raise InvalidParameterError(
                f"unknown parallel backend {backend!r}; available: {list(BACKENDS)}"
            )
        if max_workers is not None and max_workers < 1:
            raise InvalidParameterError("max_workers must be positive")
        if retries < 0:
            raise InvalidParameterError("retries must be >= 0")
        if retry_backoff < 0:
            raise InvalidParameterError("retry_backoff must be >= 0")
        self.backend = backend
        self.max_workers = max_workers
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.metrics = metrics if metrics is not None else default_metrics()
        self._pool_broken = False

    def _pool(self, tasks: int) -> Executor | None:
        if self._pool_broken:
            return None  # latched serial after a BrokenExecutor (see map)
        workers = self.max_workers or min(tasks, _cpu_count())
        if self.backend == "serial" or workers < 2 or tasks < 2:
            return None
        try:
            if self.backend == "process":
                return ProcessPoolExecutor(max_workers=workers)
            return ThreadPoolExecutor(max_workers=workers)
        except (OSError, ValueError, RuntimeError):  # pragma: no cover - env specific
            return None  # restricted environment: serial fallback

    def _run_task(self, fn: Callable[..., Any], args: tuple) -> Any:
        """One task with the ``shard.task`` injection point and retries."""
        attempt = 0
        while True:
            try:
                inject("shard.task")
                return fn(*args)
            except TRANSIENT_ERRORS:
                if attempt >= self.retries:
                    raise
                attempt += 1
                self.metrics.counter("shard.task_retries").inc()
                if self.retry_backoff:
                    time.sleep(self.retry_backoff * (2 ** (attempt - 1)))

    def map(
        self, fn: Callable[..., Any], *iterables: Iterable[Any], op: str | None = None
    ) -> list[Any]:
        """Apply ``fn`` across zipped task arguments, preserving order.

        Equivalent to ``[fn(*args) for args in zip(*iterables)]`` with the
        work spread over the pool; falls back to exactly that loop when no
        pool is available.  ``op`` labels the per-task telemetry series
        (``"fit"``, ``"insert"``, ``"estimate"``, ...).
        """
        tasks: Sequence[tuple] = list(zip(*iterables))
        if not tasks:
            return []
        instrumented = self.metrics.enabled
        if instrumented:
            map_start = perf_counter()
            if self.backend != "process" or self._pool_broken:
                # Per-task spans need a closure over the histogram, which a
                # process pool cannot pickle; process-backend runs are
                # covered by the whole-map span below.
                task_seconds = self.metrics.histogram(
                    "shard.task_seconds", **({"op": op} if op else {})
                )
                inner = fn

                def fn(*args: Any) -> Any:
                    task_start = perf_counter()
                    try:
                        return inner(*args)
                    finally:
                        task_seconds.record(perf_counter() - task_start)

        try:
            pool = self._pool(len(tasks))
            if pool is None:
                return [self._run_task(fn, args) for args in tasks]
            try:
                if self.backend == "process":
                    # Tasks must pickle: no retry/injection wrapper.  The
                    # transient-retry contract is honoured by the serial
                    # fallback below when the pool itself breaks.
                    with pool:
                        return list(pool.map(fn, *map(list, zip(*tasks))))
                run = self._run_task
                with pool:
                    return list(
                        pool.map(lambda args: run(fn, args), tasks)
                    )
            except BrokenExecutor:
                # The pool itself died (sandboxed fork/spawn, OOM-killed
                # worker) — distinct from a *task* raising, which propagates
                # above.  Degrade to the serial reference path rather than
                # failing the operation, and latch: a pool that broke once
                # will break again, so later maps skip straight to serial.
                if not self._pool_broken:
                    self._pool_broken = True
                    self.metrics.counter("shard.pool_broken").inc()
                    logger.warning(
                        "%s pool broke during %r map; executor degraded to "
                        "serial execution",
                        self.backend,
                        op or "anonymous",
                    )
                return [self._run_task(fn, args) for args in tasks]
        finally:
            if instrumented:
                self.metrics.histogram(
                    "shard.map_seconds", **({"op": op} if op else {})
                ).record(perf_counter() - map_start)

    def describe(self) -> dict[str, Any]:
        """JSON description used by sharded-estimator configs."""
        return {"backend": self.backend, "max_workers": self.max_workers}
