"""Parallel execution layer for per-shard work.

A :class:`ShardExecutor` runs one task per shard — fit, bulk insert,
``estimate_batch`` — on a ``concurrent.futures`` pool and always falls back
to serial execution when a pool cannot be created (restricted environments,
no usable ``fork``) or is not worth spinning up (one shard, one worker).

Backend guidance:

* ``"thread"`` (default) — numpy releases the GIL inside the kernels that
  dominate fitting and batch estimation, so threads overlap on multi-core
  hardware with zero serialisation cost.  Safe for every task type.
* ``"process"`` — true parallelism for Python-heavy fits; tasks and results
  cross process boundaries by pickling, so it pays off for expensive fits on
  large shards and is wasted on cheap per-shard estimates.
* ``"serial"`` — no pool at all; the deterministic reference path.

Results preserve task order regardless of completion order, and a task
exception propagates to the caller after the remaining tasks finish
(the pool is always drained, never abandoned mid-flight).
"""

from __future__ import annotations

import os
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import Any, Callable, Iterable, Sequence

from repro.core.errors import InvalidParameterError

__all__ = ["ShardExecutor", "BACKENDS"]

BACKENDS = ("serial", "thread", "process")


def _cpu_count() -> int:
    try:
        return os.cpu_count() or 1
    except Exception:  # pragma: no cover - platform oddity
        return 1


class ShardExecutor:
    """Maps a function over per-shard tasks, in parallel where possible.

    Parameters
    ----------
    backend:
        ``"serial"``, ``"thread"`` or ``"process"`` (see module docstring).
        ``None`` means ``"serial"``.
    max_workers:
        Pool width; defaults to ``min(tasks, cpu_count)`` at call time.
    """

    def __init__(
        self, backend: str | None = "thread", max_workers: int | None = None
    ) -> None:
        backend = backend or "serial"
        if backend not in BACKENDS:
            raise InvalidParameterError(
                f"unknown parallel backend {backend!r}; available: {list(BACKENDS)}"
            )
        if max_workers is not None and max_workers < 1:
            raise InvalidParameterError("max_workers must be positive")
        self.backend = backend
        self.max_workers = max_workers

    def _pool(self, tasks: int) -> Executor | None:
        workers = self.max_workers or min(tasks, _cpu_count())
        if self.backend == "serial" or workers < 2 or tasks < 2:
            return None
        try:
            if self.backend == "process":
                return ProcessPoolExecutor(max_workers=workers)
            return ThreadPoolExecutor(max_workers=workers)
        except (OSError, ValueError, RuntimeError):  # pragma: no cover - env specific
            return None  # restricted environment: serial fallback

    def map(
        self, fn: Callable[..., Any], *iterables: Iterable[Any]
    ) -> list[Any]:
        """Apply ``fn`` across zipped task arguments, preserving order.

        Equivalent to ``[fn(*args) for args in zip(*iterables)]`` with the
        work spread over the pool; falls back to exactly that loop when no
        pool is available.
        """
        tasks: Sequence[tuple] = list(zip(*iterables))
        if not tasks:
            return []
        pool = self._pool(len(tasks))
        if pool is None:
            return [fn(*args) for args in tasks]
        try:
            with pool:
                return list(pool.map(fn, *map(list, zip(*tasks))))
        except BrokenExecutor:
            # The pool itself died (sandboxed fork/spawn, OOM-killed worker)
            # — distinct from a *task* raising, which propagates above.
            # Degrade to the serial reference path rather than failing the
            # operation.
            return [fn(*args) for args in tasks]

    def describe(self) -> dict[str, Any]:
        """JSON description used by sharded-estimator configs."""
        return {"backend": self.backend, "max_workers": self.max_workers}
