"""Parallel execution layer for per-shard work.

A :class:`ShardExecutor` runs one task per shard — fit, bulk insert,
``estimate_batch`` — on a ``concurrent.futures`` pool and always falls back
to serial execution when a pool cannot be created (restricted environments,
no usable ``fork``) or is not worth spinning up (one shard, one worker).

Backend guidance:

* ``"thread"`` (default) — numpy releases the GIL inside the kernels that
  dominate fitting and batch estimation, so threads overlap on multi-core
  hardware with zero serialisation cost.  Safe for every task type.
* ``"process"`` — true parallelism for Python-heavy fits; tasks and results
  cross process boundaries by pickling, so it pays off for expensive fits on
  large shards and is wasted on cheap per-shard estimates.
* ``"serial"`` — no pool at all; the deterministic reference path.

Results preserve task order regardless of completion order, and a task
exception propagates to the caller after the remaining tasks finish
(the pool is always drained, never abandoned mid-flight).
"""

from __future__ import annotations

import os
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from time import perf_counter
from typing import Any, Callable, Iterable, Sequence

from repro.core.errors import InvalidParameterError
from repro.obs.metrics import default_metrics

__all__ = ["ShardExecutor", "BACKENDS"]

BACKENDS = ("serial", "thread", "process")


def _cpu_count() -> int:
    try:
        return os.cpu_count() or 1
    except Exception:  # pragma: no cover - platform oddity
        return 1


class ShardExecutor:
    """Maps a function over per-shard tasks, in parallel where possible.

    Parameters
    ----------
    backend:
        ``"serial"``, ``"thread"`` or ``"process"`` (see module docstring).
        ``None`` means ``"serial"``.
    max_workers:
        Pool width; defaults to ``min(tasks, cpu_count)`` at call time.
    metrics:
        Optional :class:`repro.obs.metrics.MetricsRegistry`.  When enabled,
        every :meth:`map` records its wall-clock span
        (``shard.map_seconds``) and — on the serial/thread backends, where
        the wrapper needs no pickling — each task's span
        (``shard.task_seconds``), labelled with the caller-supplied ``op``.
        Defaults to the process-default registry (no-op unless installed).
    """

    def __init__(
        self,
        backend: str | None = "thread",
        max_workers: int | None = None,
        metrics=None,
    ) -> None:
        backend = backend or "serial"
        if backend not in BACKENDS:
            raise InvalidParameterError(
                f"unknown parallel backend {backend!r}; available: {list(BACKENDS)}"
            )
        if max_workers is not None and max_workers < 1:
            raise InvalidParameterError("max_workers must be positive")
        self.backend = backend
        self.max_workers = max_workers
        self.metrics = metrics if metrics is not None else default_metrics()

    def _pool(self, tasks: int) -> Executor | None:
        workers = self.max_workers or min(tasks, _cpu_count())
        if self.backend == "serial" or workers < 2 or tasks < 2:
            return None
        try:
            if self.backend == "process":
                return ProcessPoolExecutor(max_workers=workers)
            return ThreadPoolExecutor(max_workers=workers)
        except (OSError, ValueError, RuntimeError):  # pragma: no cover - env specific
            return None  # restricted environment: serial fallback

    def map(
        self, fn: Callable[..., Any], *iterables: Iterable[Any], op: str | None = None
    ) -> list[Any]:
        """Apply ``fn`` across zipped task arguments, preserving order.

        Equivalent to ``[fn(*args) for args in zip(*iterables)]`` with the
        work spread over the pool; falls back to exactly that loop when no
        pool is available.  ``op`` labels the per-task telemetry series
        (``"fit"``, ``"insert"``, ``"estimate"``, ...).
        """
        tasks: Sequence[tuple] = list(zip(*iterables))
        if not tasks:
            return []
        instrumented = self.metrics.enabled
        if instrumented:
            map_start = perf_counter()
            if self.backend != "process":
                # Per-task spans need a closure over the histogram, which a
                # process pool cannot pickle; process-backend runs are
                # covered by the whole-map span below.
                task_seconds = self.metrics.histogram(
                    "shard.task_seconds", **({"op": op} if op else {})
                )
                inner = fn

                def fn(*args: Any) -> Any:
                    task_start = perf_counter()
                    try:
                        return inner(*args)
                    finally:
                        task_seconds.record(perf_counter() - task_start)

        try:
            pool = self._pool(len(tasks))
            if pool is None:
                return [fn(*args) for args in tasks]
            try:
                with pool:
                    return list(pool.map(fn, *map(list, zip(*tasks))))
            except BrokenExecutor:
                # The pool itself died (sandboxed fork/spawn, OOM-killed
                # worker) — distinct from a *task* raising, which propagates
                # above.  Degrade to the serial reference path rather than
                # failing the operation.
                return [fn(*args) for args in tasks]
        finally:
            if instrumented:
                self.metrics.histogram(
                    "shard.map_seconds", **({"op": op} if op else {})
                ).record(perf_counter() - map_start)

    def describe(self) -> dict[str, Any]:
        """JSON description used by sharded-estimator configs."""
        return {"backend": self.backend, "max_workers": self.max_workers}
