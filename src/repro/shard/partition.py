"""Row partitioners: deterministic routing of rows to shards.

A :class:`Partitioner` maps a ``(rows, d)`` matrix of partition-column values
to a ``(rows,)`` vector of shard ids.  The routing contract is the foundation
of the sharded estimation engine:

* **Deterministic** — the same rows always route to the same shards, so a
  refit of one shard sees exactly the rows that shard's synopsis models.
* **Batch-invariant** — routing a bulk ``insert`` produces bitwise the same
  shard contents as routing the rows one at a time.  Hash and range routing
  are pure functions of the row values, so this holds trivially; round-robin
  routing keeps an explicit stream position so a batch of ``n`` rows consumes
  exactly ``n`` ticks of the counter, matching the row-at-a-time sequence.
* **Stable under growth** — hash and range routing never re-route existing
  rows when new rows arrive (range boundaries are frozen when first bound to
  data), which is what makes per-shard refresh sound.

Partitioners are persisted alongside a sharded synopsis: :meth:`config`
returns the JSON recipe and :meth:`state` / :meth:`load_state` the runtime
state (frozen range boundaries, the round-robin stream position).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Mapping, Sequence

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.engine.table import Table

__all__ = [
    "Partitioner",
    "HashPartitioner",
    "RangePartitioner",
    "RoundRobinPartitioner",
    "make_partitioner",
    "partition_table",
    "PARTITIONER_KINDS",
]


class Partitioner(ABC):
    """Routes rows (matrices of the bound partition columns) to shard ids."""

    #: registry kind; subclasses override.
    kind: str = "partitioner"

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise InvalidParameterError("a partitioner needs at least one shard")
        self.shards = int(shards)
        self._columns: tuple[str, ...] = ()

    # -- binding ---------------------------------------------------------------
    @property
    def columns(self) -> tuple[str, ...]:
        """Partition columns the router consumes (set by :meth:`bind`)."""
        return self._columns

    @property
    def is_bound(self) -> bool:
        """Whether the partitioner has been bound to columns (and data)."""
        return bool(self._columns)

    def bind(self, columns: Sequence[str], table: Table | None = None) -> "Partitioner":
        """Bind the router to its partition columns (idempotent).

        ``table`` provides the data a router may need to freeze its layout
        (range boundaries); once bound, the layout never changes, so routing
        stays stable while the table grows.
        """
        if self._columns:
            return self
        columns = tuple(columns)
        if not columns:
            raise InvalidParameterError("a partitioner needs at least one column")
        self._columns = columns
        self._bind_data(table)
        return self

    def _bind_data(self, table: Table | None) -> None:
        """Hook for routers that freeze layout from data (default: nothing)."""

    def _require_bound(self) -> None:
        if not self._columns:
            raise InvalidParameterError(
                f"{type(self).__name__} must be bound to columns before routing"
            )

    # -- routing ---------------------------------------------------------------
    def assign(self, rows: np.ndarray) -> np.ndarray:
        """Shard id of every row of a ``(rows, len(columns))`` matrix."""
        self._require_bound()
        rows = np.atleast_2d(np.asarray(rows, dtype=float))
        if rows.shape[0] and rows.shape[1] != len(self._columns):
            raise InvalidParameterError(
                f"rows have {rows.shape[1]} partition columns, expected "
                f"{len(self._columns)}"
            )
        if rows.shape[0] == 0:
            return np.zeros(0, dtype=np.int64)
        return self._assign(rows)

    @abstractmethod
    def _assign(self, rows: np.ndarray) -> np.ndarray:
        """Routing of a validated, non-empty ``(n, d)`` matrix."""

    def assign_static(self, rows: np.ndarray) -> np.ndarray:
        """Shard ids of a whole table's rows, without advancing any state.

        Value-based routers (hash, range) are pure functions, so this equals
        :meth:`assign`; positional routers (round-robin) route row ``t`` of
        the table as stream position ``t`` — reproducing the assignment a
        fresh fit would compute — while leaving the live stream counter
        untouched.  This is the routing a per-shard *refit* must use:
        re-deriving one partition of the current table is a read, not a
        stream advance.
        """
        self._require_bound()
        rows = np.atleast_2d(np.asarray(rows, dtype=float))
        if rows.shape[0] and rows.shape[1] != len(self._columns):
            raise InvalidParameterError(
                f"rows have {rows.shape[1]} partition columns, expected "
                f"{len(self._columns)}"
            )
        if rows.shape[0] == 0:
            return np.zeros(0, dtype=np.int64)
        return self._assign_static(rows)

    def _assign_static(self, rows: np.ndarray) -> np.ndarray:
        """State-free routing hook (defaults to :meth:`_assign` — pure routers)."""
        return self._assign(rows)

    # -- persistence -----------------------------------------------------------
    def config(self) -> dict[str, Any]:
        """JSON reconstruction recipe (``{"kind": ..., "shards": ...}``)."""
        return {"kind": self.kind, "shards": self.shards}

    def state(self) -> tuple[dict[str, np.ndarray], dict[str, Any]]:
        """Runtime state as ``(arrays, meta)`` — mirrors the estimator hooks."""
        return {}, {"columns": list(self._columns)}

    def load_state(
        self, arrays: Mapping[str, np.ndarray], meta: Mapping[str, Any]
    ) -> None:
        """Restore a :meth:`state` snapshot."""
        self._columns = tuple(meta.get("columns", ()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(shards={self.shards}, columns={list(self._columns)})"


# -- hash ----------------------------------------------------------------------

#: splitmix64 multipliers (Steele et al.); arithmetic wraps modulo 2**64.
_MIX_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_2 = np.uint64(0x94D049BB133111EB)
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)


def _splitmix64(values: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer over a ``uint64`` array."""
    values = (values ^ (values >> np.uint64(30))) * _MIX_1
    values = (values ^ (values >> np.uint64(27))) * _MIX_2
    return values ^ (values >> np.uint64(31))


class HashPartitioner(Partitioner):
    """Value-hash routing over all bound partition columns.

    Rows route by a splitmix64 hash of their float64 bit patterns (with
    ``-0.0`` canonicalised to ``0.0``), combined across columns — a pure
    function of the row values, so routing is deterministic, batch-invariant
    and stable as the table grows.
    """

    kind = "hash"

    def __init__(self, shards: int, seed: int = 0) -> None:
        super().__init__(shards)
        self.seed = int(seed)

    def _assign(self, rows: np.ndarray) -> np.ndarray:
        rows = np.where(rows == 0.0, 0.0, rows)  # -0.0 == 0.0 must route together
        bits = np.ascontiguousarray(rows, dtype=np.float64).view(np.uint64)
        with np.errstate(over="ignore"):
            acc = np.full(rows.shape[0], np.uint64(self.seed) ^ _GOLDEN)
            for d in range(bits.shape[1]):
                acc = _splitmix64(acc + _GOLDEN * np.uint64(d + 1) + bits[:, d])
        return (acc % np.uint64(self.shards)).astype(np.int64)

    def config(self) -> dict[str, Any]:
        return {**super().config(), "seed": self.seed}


# -- range ---------------------------------------------------------------------


class RangePartitioner(Partitioner):
    """Range routing on one column with frozen boundaries.

    ``boundaries`` are the ``shards - 1`` interior split points; when not
    given they are computed once — from the quantiles of the bind-time table —
    and frozen, so later inserts never re-route existing rows.  Rows route to
    the shard whose half-open range ``(boundary[i-1], boundary[i]]`` contains
    the value of the partition column (the first bound column by default).
    """

    kind = "range"

    def __init__(
        self,
        shards: int,
        column: str | None = None,
        boundaries: Sequence[float] | None = None,
    ) -> None:
        super().__init__(shards)
        self.column = column
        self._boundaries: np.ndarray | None = None
        if boundaries is not None:
            self._set_boundaries(np.asarray(boundaries, dtype=float))

    def _set_boundaries(self, boundaries: np.ndarray) -> None:
        boundaries = np.asarray(boundaries, dtype=float).ravel()
        if boundaries.size != self.shards - 1:
            raise InvalidParameterError(
                f"{self.shards}-shard range routing needs {self.shards - 1} "
                f"boundaries, got {boundaries.size}"
            )
        if np.any(np.diff(boundaries) < 0):
            raise InvalidParameterError("range boundaries must be non-decreasing")
        self._boundaries = boundaries

    @property
    def boundaries(self) -> np.ndarray:
        """Frozen interior split points (copy)."""
        self._require_bound()
        assert self._boundaries is not None
        return self._boundaries.copy()

    def _bind_data(self, table: Table | None) -> None:
        if self.column is None:
            self.column = self._columns[0]
        if self.column not in self._columns:
            raise InvalidParameterError(
                f"range column {self.column!r} is not a partition column "
                f"{list(self._columns)}"
            )
        if self._boundaries is None:
            if table is None:
                raise InvalidParameterError(
                    "a RangePartitioner without explicit boundaries must be "
                    "bound with a table to derive them from"
                )
            values = np.asarray(table.column(self.column), dtype=float)
            if values.size == 0:
                boundaries = np.zeros(self.shards - 1)
            else:
                quantiles = np.linspace(0.0, 100.0, self.shards + 1)[1:-1]
                boundaries = np.percentile(values, quantiles)
            self._set_boundaries(np.maximum.accumulate(np.atleast_1d(boundaries)))

    def _assign(self, rows: np.ndarray) -> np.ndarray:
        assert self._boundaries is not None
        index = self._columns.index(self.column)
        return np.searchsorted(self._boundaries, rows[:, index], side="left").astype(
            np.int64
        )

    def config(self) -> dict[str, Any]:
        return {**super().config(), "column": self.column}

    def state(self) -> tuple[dict[str, np.ndarray], dict[str, Any]]:
        arrays, meta = super().state()
        if self._boundaries is not None:
            arrays["boundaries"] = self._boundaries
        return arrays, meta

    def load_state(self, arrays, meta) -> None:
        super().load_state(arrays, meta)
        if "boundaries" in arrays:
            self._set_boundaries(np.asarray(arrays["boundaries"], dtype=float))


# -- round-robin -----------------------------------------------------------------


class RoundRobinPartitioner(Partitioner):
    """Stream-position routing: row ``t`` goes to shard ``t % shards``.

    The position counter advances by the batch size, so a bulk insert routes
    bitwise like the same rows inserted one at a time.  Routing ignores the
    row values entirely — it balances load perfectly but supports no
    value-based shard pruning.
    """

    kind = "round_robin"

    def __init__(self, shards: int) -> None:
        super().__init__(shards)
        self._position = 0

    @property
    def position(self) -> int:
        """Total number of rows routed so far."""
        return self._position

    def _assign(self, rows: np.ndarray) -> np.ndarray:
        ids = (self._position + np.arange(rows.shape[0], dtype=np.int64)) % self.shards
        self._position += rows.shape[0]
        return ids

    def _assign_static(self, rows: np.ndarray) -> np.ndarray:
        # Table row t is stream position t; the live counter is not consumed.
        return np.arange(rows.shape[0], dtype=np.int64) % self.shards

    def state(self) -> tuple[dict[str, np.ndarray], dict[str, Any]]:
        arrays, meta = super().state()
        return arrays, {**meta, "position": int(self._position)}

    def load_state(self, arrays, meta) -> None:
        super().load_state(arrays, meta)
        self._position = int(meta.get("position", 0))


# -- factory & helpers -----------------------------------------------------------

PARTITIONER_KINDS: dict[str, type[Partitioner]] = {
    "hash": HashPartitioner,
    "range": RangePartitioner,
    "round_robin": RoundRobinPartitioner,
}


def make_partitioner(
    spec: "str | Mapping[str, Any] | Partitioner", shards: int
) -> Partitioner:
    """Build a partitioner from a kind name, a config mapping or an instance.

    An instance is passed through (its shard count must match); a mapping is
    ``{"kind": ..., **params}`` as produced by :meth:`Partitioner.config`.
    """
    if isinstance(spec, Partitioner):
        if spec.shards != shards:
            raise InvalidParameterError(
                f"partitioner routes to {spec.shards} shards, expected {shards}"
            )
        return spec
    if isinstance(spec, str):
        params: dict[str, Any] = {}
        kind = spec
    elif isinstance(spec, Mapping):
        params = {k: v for k, v in spec.items() if k not in ("kind", "shards")}
        kind = str(spec.get("kind", "hash"))
    else:
        raise InvalidParameterError(
            f"partitioner spec must be a kind name, config mapping or instance, "
            f"got {type(spec).__name__}"
        )
    try:
        factory = PARTITIONER_KINDS[kind]
    except KeyError:
        raise InvalidParameterError(
            f"unknown partitioner kind {kind!r}; available: {sorted(PARTITIONER_KINDS)}"
        ) from None
    return factory(shards, **params)


def partition_table(
    table: Table,
    partitioner: Partitioner,
    columns: Sequence[str] | None = None,
) -> list[Table]:
    """Split ``table`` into one sub-table per shard (all columns retained).

    ``columns`` are the partition columns the router consumes (default: the
    router's bound columns, else all table columns); the partitioner is bound
    on first use.  Every row lands in exactly one shard; shard sub-tables are
    named ``<table>::shard<i>``.
    """
    if columns is not None:
        partitioner.bind(columns, table)
    elif not partitioner.is_bound:
        partitioner.bind(table.column_names, table)
    assignment = partitioner.assign(table.columns(list(partitioner.columns)))
    shards: list[Table] = []
    for shard_id in range(partitioner.shards):
        mask = assignment == shard_id
        shards.append(
            Table(
                f"{table.name}::shard{shard_id}",
                {name: table.column(name)[mask] for name in table.column_names},
                schema=table.schema,
            )
        )
    return shards
