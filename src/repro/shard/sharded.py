"""The sharded estimation front end.

:class:`ShardedEstimator` is itself a :class:`~repro.core.estimator.SelectivityEstimator`
(and a :class:`~repro.core.estimator.StreamingEstimator` when its shard
synopses are): it partitions the fitted table with a
:class:`~repro.shard.partition.Partitioner`, fits one clone of the base
synopsis per shard (in parallel through a
:class:`~repro.shard.parallel.ShardExecutor`), and serves the whole estimator
contract — ``fit`` / ``insert`` / ``flush`` / ``estimate_batch`` /
``state_dict`` — by routing per shard.

Estimation modes (the ``combine`` parameter)
--------------------------------------------

``"auto"`` (default)
    Estimators with an *exact* state-merge (``merge_exact`` — the histogram
    family) are served through a lazily maintained merged synopsis, which
    reproduces the monolithic estimator **bitwise**.  Everything else is
    served by the weighted path.
``"weighted"``
    One vectorized ``estimate_batch`` pass per shard, reduced with the base
    estimator's row-count-weighted
    :meth:`~repro.core.estimator.SelectivityEstimator.combine_estimates`.
    Exact when per-shard estimates are exact; for KDE-family synopses over a
    hash partition the deviation from the monolithic model is small
    (≤ 5 % mean relative deviation on the standard workloads — pinned by
    ``tests/shard/test_sharded_estimator.py``).
``"merge"``
    Force the merged-synopsis path (requires ``supports_merge``; samplers
    merge statistically rather than bitwise).

The memory accounting (``memory_bytes``) charges the shard synopses only —
the merged view is a cache rebuilt from shard state, not independent state.

Query fast path: kernel-family shard synopses each carry their own
support-culling index (:mod:`repro.core.fastpath`), built lazily inside the
shard's ``estimate_batch`` and invalidated by that shard's own staleness
counter — so a routed ``insert`` only invalidates the indexes of the shards
that actually received rows, and a copy-on-write shard swap
(:meth:`ShardedEstimator.with_shard`) keeps the untouched shards' indexes
warm.
"""

from __future__ import annotations

import copy
import logging
from typing import Any, Mapping, Sequence

import numpy as np

from repro.core.errors import (
    DimensionMismatchError,
    InvalidParameterError,
    NotFittedError,
    ReproError,
    StreamError,
)
from repro.obs.metrics import default_metrics
from repro.core.estimator import (
    SelectivityEstimator,
    StreamingEstimator,
    estimator_from_config,
    register_estimator,
)
from repro.core.resolve import resolve_estimator
from repro.engine.table import Table
from repro.fault.plan import inject
from repro.shard.parallel import ShardExecutor
from repro.shard.partition import Partitioner, make_partitioner, partition_table

__all__ = ["ShardedEstimator"]

logger = logging.getLogger("repro.shard")

#: Below this many (queries × shards) the per-shard estimate passes run
#: serially — a thread pool costs more than it saves on tiny batches.
_PARALLEL_ESTIMATE_THRESHOLD = 4096


def _fit_one(
    estimator: SelectivityEstimator,
    table: Table,
    columns: Sequence[str],
    frame: Mapping[str, np.ndarray] | None,
) -> SelectivityEstimator:
    """Per-shard fit task (module-level so process pools can pickle it)."""
    return estimator.fit_shard(table, list(columns), frame)


@register_estimator("sharded")
class ShardedEstimator(StreamingEstimator):
    """Partition-wise synopsis: one base-estimator clone per table shard.

    Parameters
    ----------
    base:
        The shard synopsis: an estimator instance (used as a configuration
        template — one fresh clone is fitted per shard), a registry name, or
        a ``{"name": ..., **params}`` config mapping.
    shards:
        Number of partitions.
    partitioner:
        Routing policy: ``"hash"`` / ``"range"`` / ``"round_robin"``, a
        config mapping, or a :class:`~repro.shard.partition.Partitioner`
        instance.
    combine:
        Estimation mode (see module docstring): ``"auto"``, ``"weighted"``
        or ``"merge"``.
    parallel:
        Execution backend for per-shard fit work: ``"thread"`` (default),
        ``"process"`` or ``"serial"``.  In-place shard mutation (``insert``,
        ``flush``) and estimation never cross process boundaries; they use
        threads (or run serially) even under ``"process"``.
    max_workers:
        Pool width (default: ``min(shards, cpu_count)``).
    """

    name = "sharded"

    def __init__(
        self,
        base: "SelectivityEstimator | Mapping[str, Any] | str" = "equiwidth",
        shards: int = 4,
        partitioner: "str | Mapping[str, Any] | Partitioner" = "hash",
        combine: str = "auto",
        parallel: str | None = "thread",
        max_workers: int | None = None,
    ) -> None:
        super().__init__()
        if shards < 1:
            raise InvalidParameterError("shards must be positive")
        if combine not in ("auto", "weighted", "merge"):
            raise InvalidParameterError(
                "combine must be 'auto', 'weighted' or 'merge'"
            )
        template = resolve_estimator(base, what="base")
        if isinstance(template, ShardedEstimator):
            raise InvalidParameterError("sharded estimators cannot be nested")
        if combine == "merge" and not template.supports_merge:
            raise InvalidParameterError(
                f"combine='merge' requires a mergeable base, and "
                f"{template.name!r} does not support state-merge"
            )
        self.shard_count = int(shards)
        self.combine = combine
        self.parallel = parallel
        self.max_workers = max_workers
        self._template = template
        self._partitioner_spec = partitioner
        self._fit_executor = ShardExecutor(parallel, max_workers)
        # In-place shard mutation and estimation must stay in-process.
        serve_backend = "thread" if parallel == "process" else parallel
        self._serve_executor = ShardExecutor(serve_backend, max_workers)
        self._partitioner: Partitioner | None = None
        self._shards: list[SelectivityEstimator] = []
        self._frame: dict[str, np.ndarray] | None = None
        self._merged: SelectivityEstimator | None = None
        self._lost: set[int] = set()
        #: Consecutive estimate failures a shard is allowed before it is
        #: declared lost (mirrors the serving circuit breaker's
        #: consecutive-failure threshold): a one-off transient fault only
        #: excludes the shard from that batch's reduction, and any success
        #: clears its strikes.
        self.estimate_failure_threshold = 3
        self._estimate_strikes: dict[int, int] = {}

    # -- lifecycle -------------------------------------------------------------
    def fit(
        self, table: Table, columns: Sequence[str] | None = None
    ) -> "ShardedEstimator":
        columns = self._resolve_columns(table, columns)
        # A full fit re-derives the routing layout (range boundaries etc.);
        # an explicitly supplied Partitioner instance keeps its frozen state.
        self._partitioner = make_partitioner(self._partitioner_spec, self.shard_count)
        sub_tables = partition_table(table, self._partitioner, columns)
        self._frame = (
            dict(self._template.shard_frame(table, columns))
            if self._template.supports_merge
            else None
        )
        clones = [self._clone_template() for _ in range(self.shard_count)]
        self._shards = self._fit_executor.map(
            _fit_one,
            clones,
            sub_tables,
            [columns] * self.shard_count,
            [self._frame] * self.shard_count,
            op="fit",
        )
        self._merged = None
        self._lost = set()
        self._estimate_strikes = {}
        self._mark_fitted(columns, table.row_count)
        return self

    def _clone_template(self) -> SelectivityEstimator:
        return estimator_from_config(self._template.config())

    # -- introspection ---------------------------------------------------------
    @property
    def shard_estimators(self) -> tuple[SelectivityEstimator, ...]:
        """The per-shard synopses (treat as immutable on the read path)."""
        return tuple(self._shards)

    def shard(self, shard_id: int) -> SelectivityEstimator:
        """The synopsis of one shard."""
        self._require_fitted()
        return self._shards[self._check_shard_id(shard_id)]

    @property
    def partitioner(self) -> Partitioner:
        """The bound row router."""
        self._require_fitted()
        assert self._partitioner is not None
        return self._partitioner

    def shard_row_counts(self) -> np.ndarray:
        """Rows modelled by each shard synopsis."""
        self._require_fitted()
        return np.array([shard.row_count for shard in self._shards], dtype=np.int64)

    def _check_shard_id(self, shard_id: int) -> int:
        if not 0 <= shard_id < len(self._shards):
            raise InvalidParameterError(
                f"shard id {shard_id} out of range [0, {len(self._shards)})"
            )
        return int(shard_id)

    # -- degraded mode (lost shards) -------------------------------------------
    @property
    def degraded(self) -> bool:
        """Whether any shard has been marked lost (estimates renormalize)."""
        return bool(self._lost)

    @property
    def lost_shards(self) -> tuple[int, ...]:
        """Shard ids currently marked lost, ascending."""
        return tuple(sorted(self._lost))

    def mark_shard_lost(self, shard_id: int, reason: str = "manual") -> None:
        """Declare one shard's synopsis permanently unavailable.

        The front end keeps serving: estimates renormalize over the
        surviving shards (row-count-weighted ``combine_estimates``, which a
        hash partition makes an unbiased-sample approximation of the full
        ensemble), rows routed to the lost shard are dropped and counted
        (``shard.dropped_rows``), and the loss is surfaced in
        :meth:`describe` plus the ``shard.lost`` obs counter.  Heal by
        swapping a rebuilt synopsis in (:meth:`with_shard` /
        :meth:`refit_shard`) or refitting.
        """
        self._require_fitted()
        shard_id = self._check_shard_id(shard_id)
        if shard_id in self._lost:
            return
        self._lost.add(shard_id)
        self._merged = None
        default_metrics().counter("shard.lost", reason=reason).inc()
        logger.warning(
            "shard %d marked lost (%s); serving degraded estimates over %d/%d shards",
            shard_id,
            reason,
            len(self._shards) - len(self._lost),
            len(self._shards),
        )

    def memory_bytes(self) -> int:
        self._require_fitted()
        return int(sum(shard.memory_bytes() for shard in self._shards))

    # -- streaming maintenance -------------------------------------------------
    def insert(self, rows: np.ndarray) -> None:
        """Route a batch of rows to their shards' streaming synopses.

        Routing is batch-invariant (see :mod:`repro.shard.partition`), so the
        resulting shard synopses are independent of how the caller sliced the
        stream — given the shard synopses themselves honour that contract.
        """
        self._require_fitted()
        rows = np.atleast_2d(np.asarray(rows, dtype=float))
        if rows.size == 0:
            return
        if rows.shape[1] != len(self._columns):
            raise DimensionMismatchError(
                f"insert rows have {rows.shape[1]} attributes, expected "
                f"{len(self._columns)}"
            )
        if not all(isinstance(shard, StreamingEstimator) for shard in self._shards):
            raise StreamError(
                f"base estimator {self._template.name!r} is not a streaming "
                "synopsis; rebuild with fit() instead"
            )
        assert self._partitioner is not None
        assignment = self._partitioner.assign(rows)
        targets = []
        dropped = 0
        for shard_id in range(self.shard_count):
            batch = rows[assignment == shard_id]
            if not batch.shape[0]:
                continue
            if shard_id in self._lost:
                # A lost shard has nowhere durable to put its rows; dropping
                # (counted) keeps the surviving shards' synopses honest
                # rather than silently skewing another shard's partition.
                dropped += batch.shape[0]
                continue
            targets.append((self._shards[shard_id], batch))
        if dropped:
            default_metrics().counter("shard.dropped_rows").inc(dropped)
        self._serve_executor.map(
            lambda shard, batch: shard.insert(batch),
            [shard for shard, _ in targets],
            [batch for _, batch in targets],
            op="insert",
        )
        self._row_count += rows.shape[0] - dropped
        self._merged = None

    def flush(self) -> None:
        """Flush every surviving streaming shard's pending ingestion buffer."""
        streaming = [
            s
            for i, s in enumerate(self._shards)
            if isinstance(s, StreamingEstimator) and i not in self._lost
        ]
        if streaming:
            self._serve_executor.map(lambda shard: shard.flush(), streaming, op="flush")
            self._merged = None

    # -- estimation ------------------------------------------------------------
    @property
    def merge_mode(self) -> bool:
        """Whether estimates are served through the merged synopsis."""
        if self._lost:
            # Degraded: the merged synopsis would fold lost-shard state back
            # in; only the weighted path can renormalize over survivors.
            return False
        if self.combine == "merge":
            return True
        if self.combine == "weighted":
            return False
        # auto: merge when it is a deterministic statistics recombination
        # (histograms: bitwise; independence: float-rounding exact).  Sample
        # merges *shrink* the pooled evidence back to one sample, so the
        # weighted path serves samplers better.
        return self._template.merge_lossless

    def merged_estimator(self) -> SelectivityEstimator:
        """The shard states folded into one monolithic-equivalent synopsis.

        Requires a mergeable base.  The result is cached until the next
        ``insert`` / ``flush`` / shard swap; callers must treat it as
        immutable.
        """
        self._require_fitted()
        if not self._template.supports_merge:
            raise InvalidParameterError(
                f"base estimator {self._template.name!r} does not support "
                "state-merge"
            )
        if self._merged is None:
            self._merged = self._clone_template().merge_state(self._shards)
        return self._merged

    def _estimate_batch(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        if self.merge_mode:
            merged = self.merged_estimator()
            return np.asarray(merged._estimate_batch(lows, highs), dtype=float)
        live = [i for i in range(len(self._shards)) if i not in self._lost]

        def one(shard_id: int) -> "np.ndarray | Exception":
            # A shard whose synopsis faults mid-estimate is captured and
            # excluded from the reduction — one bad shard degrades the answer
            # instead of failing the whole batch; ``estimate_failure_threshold``
            # consecutive faults mark it lost below.  (The
            # executor's "shard.task" point sits *outside* this boundary and
            # models retryable transport faults instead.)
            try:
                inject("shard.estimate")
                return self._shards[shard_id]._estimate_batch(lows, highs)
            except Exception as error:  # noqa: BLE001 - fault boundary
                return error

        if lows.shape[0] * len(live) >= _PARALLEL_ESTIMATE_THRESHOLD:
            raw = self._serve_executor.map(one, live, op="estimate")
        else:
            raw = [one(shard_id) for shard_id in live]
        survivors: list[int] = []
        results: list[np.ndarray] = []
        last_error: Exception | None = None
        for shard_id, result in zip(live, raw):
            if isinstance(result, Exception):
                last_error = result
                default_metrics().counter("shard.estimate_failures").inc()
                strikes = self._estimate_strikes.get(shard_id, 0) + 1
                self._estimate_strikes[shard_id] = strikes
                if strikes >= self.estimate_failure_threshold:
                    self.mark_shard_lost(shard_id, reason="estimate_failure")
                else:
                    # Probation: a transient fault excludes the shard from
                    # this batch only; it is retried on the next call and a
                    # success clears its strikes.
                    logger.warning(
                        "shard %d estimate failed (%s); strike %d/%d, "
                        "excluded from this batch",
                        shard_id,
                        result,
                        strikes,
                        self.estimate_failure_threshold,
                    )
            else:
                self._estimate_strikes.pop(shard_id, None)
                survivors.append(shard_id)
                results.append(result)
        if not results:
            if last_error is not None:
                raise last_error
            raise ReproError(
                f"all {len(self._shards)} shards are lost; no estimates available"
            )
        weights = np.array(
            [self._shards[shard_id].row_count for shard_id in survivors],
            dtype=np.int64,
        )
        estimates = np.stack(
            [self._clip_fractions(np.asarray(r, dtype=float)) for r in results]
        )
        return type(self._template).combine_estimates(estimates, weights)

    # -- per-shard lifecycle (refresh / copy-on-write swap) ---------------------
    def refit_shard(self, shard_id: int, table: Table) -> SelectivityEstimator:
        """Refit one shard's synopsis from the current table, in place.

        The frozen routing layout selects the shard's rows, so only that
        partition is scanned and only that synopsis is rebuilt — the
        per-shard refresh path.  The fit frame pinned by the original full
        fit is reused so a mergeable base stays merge-compatible; run a full
        :meth:`fit` to re-derive frame and routing.  Returns the new shard
        synopsis.
        """
        self._require_fitted()
        shard_id = self._check_shard_id(shard_id)
        assert self._partitioner is not None
        # Static routing: re-deriving a partition of the current table must
        # not consume the round-robin stream counter (which tracks inserts).
        assignment = self._partitioner.assign_static(
            table.columns(list(self._partitioner.columns))
        )
        mask = assignment == shard_id
        sub_table = Table(
            f"{table.name}::shard{shard_id}",
            {name: table.column(name)[mask] for name in table.column_names},
            schema=table.schema,
        )
        fresh = _fit_one(self._clone_template(), sub_table, self._columns, self._frame)
        self._shards[shard_id] = fresh
        self._lost.discard(shard_id)  # a rebuilt synopsis heals a lost shard
        self._estimate_strikes.pop(shard_id, None)
        self._row_count = int(sum(shard.row_count for shard in self._shards))
        self._merged = None
        return fresh

    def checkout_shard(self, shard_id: int) -> SelectivityEstimator:
        """Private deep copy of one shard's synopsis for a writer to mutate."""
        self._require_fitted()
        return copy.deepcopy(self._shards[self._check_shard_id(shard_id)])

    def with_shard(
        self, shard_id: int, estimator: SelectivityEstimator
    ) -> "ShardedEstimator":
        """A new sharded front end with one shard replaced (copy-on-write).

        The other shard synopses are *shared*, not copied — they are
        immutable on the read path — so swapping one shard behind a server
        costs O(1) in the other shards.  The original instance is untouched.
        """
        self._require_fitted()
        shard_id = self._check_shard_id(shard_id)
        if estimator.name != self._template.name:
            raise InvalidParameterError(
                f"cannot swap a {estimator.name!r} synopsis into a sharded "
                f"{self._template.name!r} estimator"
            )
        if not estimator.is_fitted:
            raise NotFittedError("cannot swap in an unfitted shard synopsis")
        if estimator.columns != self._columns:
            raise DimensionMismatchError(
                f"shard covers {list(estimator.columns)}, expected "
                f"{list(self._columns)}"
            )
        clone = copy.copy(self)
        clone._shards = list(self._shards)
        clone._shards[shard_id] = estimator
        clone._partitioner = copy.deepcopy(self._partitioner)
        clone._merged = None
        # Private lost-set: swapping a fresh synopsis into a lost slot heals
        # it on the clone (the original keeps serving degraded).
        clone._lost = set(self._lost) - {shard_id}
        clone._estimate_strikes = {
            sid: n for sid, n in self._estimate_strikes.items() if sid != shard_id
        }
        clone._row_count = int(sum(shard.row_count for shard in clone._shards))
        return clone

    def adopt(
        self,
        shards: Sequence[SelectivityEstimator],
        partitioner: Partitioner,
        frame: Mapping[str, np.ndarray] | None,
        row_count: int | None = None,
    ) -> "ShardedEstimator":
        """Assemble a fitted front end from externally restored parts.

        The loader of the sharded-manifest format
        (:func:`repro.persist.shards.load_sharded`) restores shard synopses
        and the partitioner from separate files and stitches them together
        here.  Every shard must be a fitted synopsis of the template's
        registry name over a common column tuple.
        """
        shards = list(shards)
        if len(shards) != self.shard_count:
            raise InvalidParameterError(
                f"{len(shards)} shard synopses for a {self.shard_count}-shard "
                "estimator"
            )
        columns: tuple[str, ...] | None = None
        for shard in shards:
            if shard.name != self._template.name:
                raise InvalidParameterError(
                    f"cannot adopt a {shard.name!r} synopsis into a sharded "
                    f"{self._template.name!r} estimator"
                )
            if not shard.is_fitted:
                raise NotFittedError("cannot adopt an unfitted shard synopsis")
            if columns is None:
                columns = shard.columns
            elif shard.columns != columns:
                raise DimensionMismatchError(
                    "adopted shards must cover the same columns"
                )
        assert columns is not None
        self._shards = shards
        self._lost = set()
        self._estimate_strikes = {}
        self._partitioner = partitioner
        self._frame = dict(frame) if frame is not None else None
        self._merged = None
        total = (
            int(row_count)
            if row_count is not None
            else int(sum(shard.row_count for shard in shards))
        )
        self._mark_fitted(columns, total)
        return self

    # -- configuration & persistence -------------------------------------------
    def _config_params(self) -> dict[str, Any]:
        if isinstance(self._partitioner_spec, Partitioner):
            partitioner_config: Any = self._partitioner_spec.config()
        else:
            partitioner_config = self._partitioner_spec
        return {
            "base": self._template.config(),
            "shards": self.shard_count,
            "partitioner": partitioner_config,
            "combine": self.combine,
            "parallel": self.parallel,
            "max_workers": self.max_workers,
        }

    def _state(self) -> tuple[dict[str, np.ndarray], dict[str, Any]]:
        arrays: dict[str, np.ndarray] = {}
        shard_headers: list[dict[str, Any]] = []
        for i, shard in enumerate(self._shards):
            state = shard.state_dict()
            for key, value in state.pop("arrays").items():
                arrays[f"s{i}::{key}"] = value
            shard_headers.append(state)
        meta: dict[str, Any] = {"shards": shard_headers, "partitioner": None}
        if self._lost:
            meta["lost"] = sorted(self._lost)
        if self._partitioner is not None:
            part_arrays, part_meta = self._partitioner.state()
            for key, value in part_arrays.items():
                arrays[f"part::{key}"] = value
            meta["partitioner"] = {
                "config": self._partitioner.config(),
                "meta": part_meta,
            }
        if self._frame is not None:
            meta["frame_keys"] = sorted(self._frame)
            for key, value in self._frame.items():
                arrays[f"frame::{key}"] = value
        return arrays, meta

    def _restore_state(
        self, arrays: Mapping[str, np.ndarray], meta: Mapping[str, Any]
    ) -> None:
        shards: list[SelectivityEstimator] = []
        for i, header in enumerate(meta.get("shards", [])):
            prefix = f"s{i}::"
            shard_arrays = {
                key[len(prefix):]: value
                for key, value in arrays.items()
                if key.startswith(prefix)
            }
            shard = estimator_from_config(
                {"name": header["estimator"], **header.get("config", {})}
            )
            shard.load_state({**header, "arrays": shard_arrays})
            shards.append(shard)
        self._shards = shards
        self._partitioner = None
        part = meta.get("partitioner")
        if part is not None:
            self._partitioner = make_partitioner(part["config"], self.shard_count)
            part_arrays = {
                key[len("part::"):]: value
                for key, value in arrays.items()
                if key.startswith("part::")
            }
            self._partitioner.load_state(part_arrays, part.get("meta", {}))
        self._frame = None
        if meta.get("frame_keys"):
            self._frame = {
                key: np.asarray(arrays[f"frame::{key}"])
                for key in meta["frame_keys"]
            }
        self._lost = {int(i) for i in meta.get("lost", [])}
        self._estimate_strikes = {}
        self._merged = None

    def describe(self) -> dict[str, Any]:
        """Structured description; surfaces degraded mode when shards are lost."""
        info = super().describe()
        if self._lost:
            info["degraded"] = True
            info["lost_shards"] = list(self.lost_shards)
        return info

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "fitted" if self._fitted else "unfitted"
        if self._lost:
            status += f", degraded (lost {sorted(self._lost)})"
        return (
            f"ShardedEstimator({self._template.name!r} x{self.shard_count}, "
            f"{status}, columns={list(self._columns)})"
        )
