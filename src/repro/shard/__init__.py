"""Sharded estimation engine: partition-wise synopses over one logical table.

This package horizontally partitions a table *and its synopsis*: a
:class:`~repro.shard.partition.Partitioner` routes rows to shards, one clone
of the base estimator is fitted per shard (in parallel through a
:class:`~repro.shard.parallel.ShardExecutor`), and the
:class:`~repro.shard.sharded.ShardedEstimator` front end — itself a
:class:`~repro.core.estimator.SelectivityEstimator`, registered as
``"sharded"`` — serves the full estimator contract by routing per shard.
Fit, bulk ingest and batch estimation all parallelise, and one shard can be
refreshed or swapped without rebuilding the world
(:meth:`~repro.shard.sharded.ShardedEstimator.refit_shard` /
:meth:`~repro.shard.sharded.ShardedEstimator.with_shard`).

Accuracy contract (vs. the monolithic estimator)
------------------------------------------------

How closely ``ShardedEstimator(base, shards=k)`` tracks the same base
estimator fitted monolithically depends on the base's merge class (see the
mergeable-synopsis protocol in :mod:`repro.core.estimator`):

* **Exact state-merge** (``supports_merge`` and ``merge_exact``: the
  histogram family — ``equiwidth``, ``equidepth``, ``grid``): estimates are
  **bitwise identical**.  The shard coordinator pins the synopsis layout on
  the full table (``shard_frame``), shards count rows over the shared
  layout, and the merged integer counts equal a monolithic fit's exactly.
* **Statistical state-merge** (``supports_merge`` only: ``sampling``,
  ``reservoir_sampling`` — pooled weighted resampling — and
  ``independence`` — moment recombination): the merged synopsis has the
  same distribution as (for ``independence``: is float-rounding-equal to) a
  monolithic fit, but is not bit-identical.
* **Weighted combine** (everything else, incl. the KDE/ADE family): per-shard
  estimates are reduced with the row-count-weighted ``combine_estimates``.
  Documented tolerance, measured as mean relative deviation from the
  monolithic estimator with selectivities floored at 0.05 on the standard
  workload (uniform 2-D range queries over the 20k-row mixture table at
  default synopsis budgets): ≤ 5 % for the KDE/ADE family and the wavelet
  synopsis; ≤ 8 % for the self-tuning histogram (its initial structure is
  data-derived per shard) and for the samplers, which additionally carry
  their usual ``O(sqrt(p(1-p)/m))`` sampling noise per query.  These bounds
  are pinned by ``tests/shard/test_sharded_estimator.py``.
"""

from repro.shard.parallel import ShardExecutor
from repro.shard.partition import (
    HashPartitioner,
    Partitioner,
    RangePartitioner,
    RoundRobinPartitioner,
    make_partitioner,
    partition_table,
)
from repro.shard.sharded import ShardedEstimator

__all__ = [
    "ShardedEstimator",
    "ShardExecutor",
    "Partitioner",
    "HashPartitioner",
    "RangePartitioner",
    "RoundRobinPartitioner",
    "make_partitioner",
    "partition_table",
]
