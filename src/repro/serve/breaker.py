"""Circuit breaker for the serving tier.

The classic three-state machine guarding a flaky dependency (here: the
served estimator, whose faults in production are torn model state, a lost
shard backend, or resource exhaustion):

- **closed** — normal serving; consecutive faults are counted and
  ``failure_threshold`` of them in a row *trips* the breaker.
- **open** — the model is not called at all; requests are answered from the
  degraded path (last-good cached results, a fallback estimator) or shed
  with :class:`~repro.core.errors.CircuitOpenError`.  After
  ``reset_timeout`` seconds the breaker *half-opens*.
- **half-open** — probe traffic is let through; ``probe_successes``
  consecutive successes close the breaker, any failure reopens it.

Time is explicit: every transition decision takes a ``now`` timestamp (the
server passes its request clock through), defaulting to ``time.monotonic``
— so virtual-time simulators drive the open→half-open transition
deterministically.  All methods are thread-safe.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.core.errors import InvalidParameterError

__all__ = ["CircuitBreaker"]

#: Stable numeric encoding of breaker states for gauge export.
_STATE_CODES = {"closed": 0, "open": 1, "half_open": 2}


class CircuitBreaker:
    """Consecutive-failure circuit breaker with timed half-open probes.

    Parameters
    ----------
    failure_threshold:
        Consecutive model faults (while closed) that trip the breaker.
    reset_timeout:
        Seconds the breaker stays open before half-opening for probes.
    probe_successes:
        Consecutive successful probes (while half-open) that close it.
    clock:
        Time source used when a caller passes no explicit ``now``.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 1.0,
        probe_successes: int = 2,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise InvalidParameterError("failure_threshold must be >= 1")
        if reset_timeout < 0:
            raise InvalidParameterError("reset_timeout must be >= 0")
        if probe_successes < 1:
            raise InvalidParameterError("probe_successes must be >= 1")
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout = float(reset_timeout)
        self.probe_successes = int(probe_successes)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._failures = 0  # consecutive, while closed
        self._probes_ok = 0  # consecutive, while half-open
        self._opened_at = 0.0
        self._trips = 0  # cumulative transitions into "open"

    # -- introspection ----------------------------------------------------

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half_open"`` (as last decided)."""
        return self._state

    @property
    def state_code(self) -> int:
        """Numeric state for gauge export (0 closed, 1 open, 2 half-open)."""
        return _STATE_CODES[self._state]

    @property
    def trips(self) -> int:
        """Cumulative number of transitions into the open state."""
        return self._trips

    def describe(self) -> dict[str, object]:
        with self._lock:
            return {
                "state": self._state,
                "trips": self._trips,
                "consecutive_failures": self._failures,
                "failure_threshold": self.failure_threshold,
                "reset_timeout": self.reset_timeout,
                "probe_successes": self.probe_successes,
            }

    # -- state machine ----------------------------------------------------

    def _now(self, now: float | None) -> float:
        return self._clock() if now is None else float(now)

    def before_call(self, now: float | None = None) -> str:
        """Gate one request: ``"attempt"`` (call the model) or ``"shed"``.

        While open, the elapsed ``reset_timeout`` transitions to half-open
        and admits the request as a probe.
        """
        with self._lock:
            if self._state == "open":
                if self._now(now) - self._opened_at >= self.reset_timeout:
                    self._state = "half_open"
                    self._probes_ok = 0
                else:
                    return "shed"
            return "attempt"

    def record_success(self, now: float | None = None) -> None:
        """A model call succeeded (closes after enough half-open probes)."""
        with self._lock:
            if self._state == "half_open":
                self._probes_ok += 1
                if self._probes_ok >= self.probe_successes:
                    self._state = "closed"
                    self._failures = 0
                    self._probes_ok = 0
            else:
                self._failures = 0

    def record_failure(self, now: float | None = None) -> None:
        """A model call faulted (trips when the consecutive budget is spent)."""
        with self._lock:
            if self._state == "half_open":
                self._open(now)
            elif self._state == "closed":
                self._failures += 1
                if self._failures >= self.failure_threshold:
                    self._open(now)
            else:  # already open: a straggler in-flight failure
                self._opened_at = self._now(now)

    def _open(self, now: float | None) -> None:
        self._state = "open"
        self._opened_at = self._now(now)
        self._failures = 0
        self._probes_ok = 0
        self._trips += 1

    def reset(self) -> None:
        """Return to closed (a fresh model was published); keeps ``trips``."""
        with self._lock:
            self._state = "closed"
            self._failures = 0
            self._probes_ok = 0
