"""Concurrent model serving: ingest-while-serve on top of the estimator API.

:class:`~repro.serve.server.EstimatorServer` fronts one fitted estimator
with a plan-keyed result cache and a copy-on-write update protocol: readers
answer ``estimate_batch`` against an immutable published model while a
background ingester mutates a private copy (``checkout`` → ``insert`` /
``flush`` → ``publish``), and each publish atomically swaps the served model
and bumps a generation counter that invalidates the cache.

:class:`~repro.serve.admission.AdmissionController` is the serving tier's
control plane: per-tenant token buckets plus tail-driven load shedding of
write ops, fed trailing p99s by a bound
:class:`~repro.obs.collector.TelemetryCollector`.  Attach it via the
server's ``admission=`` parameter; refusals raise the typed
:class:`~repro.core.errors.AdmissionRejected`.
"""

from repro.serve.admission import WRITE_OPS, AdmissionController, TenantQuota
from repro.serve.server import EstimatorServer, ServerCacheInfo

__all__ = [
    "EstimatorServer",
    "ServerCacheInfo",
    "AdmissionController",
    "TenantQuota",
    "WRITE_OPS",
]
