"""Concurrent model serving: ingest-while-serve on top of the estimator API.

:class:`~repro.serve.server.EstimatorServer` fronts one fitted estimator
with a plan-keyed result cache and a copy-on-write update protocol: readers
answer ``estimate_batch`` against an immutable published model while a
background ingester mutates a private copy (``checkout`` → ``insert`` /
``flush`` → ``publish``), and each publish atomically swaps the served model
and bumps a generation counter that invalidates the cache.
"""

from repro.serve.server import EstimatorServer, ServerCacheInfo

__all__ = ["EstimatorServer", "ServerCacheInfo"]
