"""Concurrent model serving: ingest-while-serve on top of the estimator API.

:class:`~repro.serve.server.EstimatorServer` fronts one fitted estimator
with a plan-keyed result cache and a copy-on-write update protocol: readers
answer ``estimate_batch`` against an immutable published model while a
background ingester mutates a private copy (``checkout`` → ``insert`` /
``flush`` → ``publish``), and each publish atomically swaps the served model
and bumps a generation counter that invalidates the cache.

:class:`~repro.serve.admission.AdmissionController` is the serving tier's
control plane: per-tenant token buckets plus tail-driven load shedding of
write ops, fed trailing p99s by a bound
:class:`~repro.obs.collector.TelemetryCollector`.  Attach it via the
server's ``admission=`` parameter; refusals raise the typed
:class:`~repro.core.errors.AdmissionRejected`.

:class:`~repro.serve.breaker.CircuitBreaker` guards the read path against a
faulting model: attach it via ``breaker=`` (optionally with a ``fallback=``
estimator) and consecutive model faults trip the server into a degraded mode
that serves last-good cached results or the fallback instead of erroring,
half-opening with probe traffic after a timeout.
"""

from repro.serve.admission import WRITE_OPS, AdmissionController, TenantQuota
from repro.serve.breaker import CircuitBreaker
from repro.serve.server import EstimatorServer, ServerCacheInfo

__all__ = [
    "EstimatorServer",
    "ServerCacheInfo",
    "AdmissionController",
    "TenantQuota",
    "WRITE_OPS",
    "CircuitBreaker",
]
