"""Thread-safe estimator serving with caching and copy-on-write updates.

The server holds ``(generation, model)`` as one immutable pair that is
replaced atomically on publish, so a reader either sees the old model or the
new one — never a half-swapped mixture.  Results are memoised in a bounded
LRU cache keyed by ``(generation, plan fingerprint)``: repeated workloads
(the common case for dashboard / optimizer traffic) are answered without
touching the model at all, and a publish invalidates every cached result of
previous generations simply by moving to a new generation tag (stale entries
are also evicted eagerly).

Update protocol (ingest-while-serve)::

    server = EstimatorServer(estimator)
    ...
    model = server.checkout()      # private deep copy (copy-on-write)
    model.insert(batch)            # ingestion mutates only the copy
    model.flush()
    server.publish(model)          # atomic swap + cache invalidation

Readers call ``estimate_batch`` concurrently throughout; the served model is
never mutated in place (``publish`` flushes streaming models up front so the
read path's lazy ``flush()`` is a no-op on the served copy).
"""

from __future__ import annotations

import copy
import hashlib
import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from time import perf_counter
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.errors import (
    CircuitOpenError,
    InvalidParameterError,
    NotFittedError,
)
from repro.core.estimator import SelectivityEstimator, StreamingEstimator
from repro.fault.plan import inject
from repro.obs.metrics import default_metrics, hit_rate
from repro.serve.breaker import CircuitBreaker
from repro.workload.queries import CompiledQueries, RangeQuery, compile_queries

if TYPE_CHECKING:  # imported for type annotations only (avoids a package cycle)
    from repro.persist.store import ModelStore
    from repro.shard.sharded import ShardedEstimator

__all__ = ["EstimatorServer", "ServerCacheInfo"]

#: Cache-outcome labels of the per-tenant request counters.  ``stale`` and
#: ``fallback`` are the degraded-path outcomes served while the circuit
#: breaker refuses (or the model fails) fresh computation.
_OUTCOMES = ("hit", "miss", "empty", "uncached", "stale", "fallback")


@dataclass(frozen=True)
class ServerCacheInfo:
    """Cache counters of an :class:`EstimatorServer` (one consistent read)."""

    hits: int
    misses: int
    size: int
    max_size: int
    generation: int

    @property
    def hit_rate(self) -> float:
        """Fraction of requests answered from the cache.

        Defers to :func:`repro.obs.metrics.hit_rate` — the one shared
        definition, also used by :meth:`EstimatorServer.stats`.
        """
        return hit_rate(self.hits, self.misses)


class EstimatorServer:
    """Serve ``estimate_batch`` traffic over swappable model versions.

    Parameters
    ----------
    estimator:
        The initially served (fitted) estimator.  The server takes ownership:
        after construction the model must only be evolved through
        :meth:`checkout` / :meth:`publish`.
    cache_size:
        Maximum number of cached batch results (``0`` disables caching).
    store:
        Optional :class:`~repro.persist.store.ModelStore`; when given,
        every :meth:`publish` also persists the new version under
        ``model_name``.
    model_name:
        Store name used with ``store`` (required when ``store`` is given).
    metrics:
        Optional :class:`repro.obs.metrics.MetricsRegistry`.  When enabled,
        the server records per-request latency (``serve.request_seconds``,
        plus a per-tenant series when callers pass ``tenant=``), per-tenant
        hit/miss request counters, publish latency
        (``serve.publish_seconds``), and exports its cache/generation
        counters as snapshot-time callback gauges — so the uninstrumented
        request path pays a single branch.  Defaults to the process-default
        registry (no-op unless installed).
    admission:
        Optional :class:`~repro.serve.admission.AdmissionController`.  When
        given, every ``estimate_batch`` / ``estimate_batch_many`` request is
        submitted to it first and may raise
        :class:`~repro.core.errors.AdmissionRejected`; the default ``None``
        keeps the request path at the same one-branch cost as disabled
        instrumentation.
    breaker:
        Optional :class:`~repro.serve.breaker.CircuitBreaker`.  When given,
        model faults during estimation are caught and counted instead of
        propagating: enough consecutive faults trip the breaker, and while
        it refuses calls the server answers from the degraded path —
        last-good results for previously seen plans (any generation), then
        the ``fallback`` estimator, then a
        :class:`~repro.core.errors.CircuitOpenError`.  Publishing a new
        model resets the breaker.
    fallback:
        Optional fitted estimator over the same columns, served while the
        breaker is open for plans with no last-good result (typically a
        cheap histogram next to an expensive KDE).  Requires ``breaker``.
    """

    def __init__(
        self,
        estimator: SelectivityEstimator,
        cache_size: int = 256,
        store: "ModelStore | None" = None,
        model_name: str | None = None,
        metrics=None,
        admission=None,
        breaker: "CircuitBreaker | None" = None,
        fallback: SelectivityEstimator | None = None,
    ) -> None:
        if not estimator.is_fitted:
            raise NotFittedError("EstimatorServer requires a fitted estimator")
        if cache_size < 0:
            raise InvalidParameterError("cache_size must be non-negative")
        if store is not None and not model_name:
            raise InvalidParameterError("model_name is required when a store is given")
        if fallback is not None:
            if breaker is None:
                raise InvalidParameterError(
                    "a fallback estimator requires a circuit breaker"
                )
            if not fallback.is_fitted:
                raise NotFittedError("the fallback estimator must be fitted")
            if fallback.columns != estimator.columns:
                raise InvalidParameterError(
                    f"fallback covers {list(fallback.columns)}, expected "
                    f"{list(estimator.columns)}"
                )
        if isinstance(estimator, StreamingEstimator):
            estimator.flush()
        self.cache_size = int(cache_size)
        self.store = store
        self.model_name = model_name
        self.breaker = breaker
        self.fallback = fallback
        # Last-good results keyed by plan digest only (generation-agnostic):
        # the stale-serving store the degraded path answers from while the
        # breaker is open.  Bounded LRU, maintained on every fresh result.
        self._last_good: OrderedDict[bytes, np.ndarray] = OrderedDict()
        self._last_good_size = max(self.cache_size, 64) if breaker is not None else 0
        # (generation, model) is swapped as one tuple: readers grab both with
        # a single attribute load, so a concurrent publish can never pair the
        # old model with the new generation (or vice versa).
        self._current: tuple[int, SelectivityEstimator] = (1, estimator)
        self._lock = threading.Lock()
        # Serialises per-shard read-modify-write publishers (publish_shard):
        # two writers refreshing *different* shards must not lose each
        # other's swap.  Whole-model checkout()/publish() keeps the original
        # single-logical-writer protocol.
        self._swap_lock = threading.Lock()
        self._cache: OrderedDict[tuple, np.ndarray] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._generation_swaps = 0
        self._cache_invalidations = 0
        self.admission = admission
        self.metrics = metrics if metrics is not None else default_metrics()
        self._instrumented = self.metrics.enabled
        if self._instrumented:
            self._request_seconds = self.metrics.histogram("serve.request_seconds")
            self._record_request = self._request_seconds.record  # prebound: hot path
            # Per-tenant series are get-or-created once and memoised here:
            # label rendering costs ~µs, far too much for the warm-hit path.
            self._tenant_series: dict[str, tuple] = {}
            # The cache/generation counters already exist on the server;
            # exporting them as snapshot-time callbacks keeps the request
            # path free of duplicate bookkeeping.
            self.metrics.gauge_fn("serve.cache_hits", lambda: self._hits)
            self.metrics.gauge_fn("serve.cache_misses", lambda: self._misses)
            self.metrics.gauge_fn("serve.hit_rate", lambda: hit_rate(self._hits, self._misses))
            self.metrics.gauge_fn("serve.generation", lambda: self._current[0])
            self.metrics.gauge_fn("serve.generation_swaps", lambda: self._generation_swaps)
            self.metrics.gauge_fn(
                "serve.cache_invalidations", lambda: self._cache_invalidations
            )
            self.metrics.gauge_fn("serve.cached_plans", lambda: len(self._cache))
            if breaker is not None:
                self.metrics.gauge_fn("serve.breaker_state", lambda: breaker.state_code)
                self.metrics.gauge_fn("serve.breaker_trips", lambda: breaker.trips)

    # -- introspection ---------------------------------------------------------
    @property
    def generation(self) -> int:
        """Generation of the currently served model (bumped on publish)."""
        return self._current[0]

    @property
    def model(self) -> SelectivityEstimator:
        """The currently served model (treat as immutable)."""
        return self._current[1]

    @property
    def columns(self) -> tuple[str, ...]:
        """Attributes covered by the served model."""
        return self._current[1].columns

    def cache_info(self) -> ServerCacheInfo:
        """Consistent snapshot of the cache counters."""
        with self._lock:
            return ServerCacheInfo(
                hits=self._hits,
                misses=self._misses,
                size=len(self._cache),
                max_size=self.cache_size,
                generation=self._current[0],
            )

    def stats(self) -> dict:
        """Serving introspection as one consistent, JSON-serialisable dict.

        Returns the cache counters (``hits`` / ``misses`` / ``hit_rate``),
        the number of cached plans and the cache capacity, the current
        generation, the served model's registry name, and — when the served
        model is sharded — the shard count and per-shard row counts.  This is
        the monitoring/benchmark endpoint; :meth:`cache_info` remains the
        typed cache-only view.
        """
        from repro.shard.sharded import ShardedEstimator  # lazy: avoids a cycle

        with self._lock:
            generation, model = self._current
            info = {
                "generation": generation,
                "model": model.name,
                "columns": list(model.columns),
                "rows_modelled": model.row_count,
                "cache_hits": self._hits,
                "cache_misses": self._misses,
                "hit_rate": hit_rate(self._hits, self._misses),
                "cached_plans": len(self._cache),
                "cache_capacity": self.cache_size,
                "generation_swaps": self._generation_swaps,
                "cache_invalidations": self._cache_invalidations,
            }
        if self.breaker is not None:
            info["breaker"] = self.breaker.describe()
        if isinstance(model, ShardedEstimator):
            info["shards"] = model.shard_count
            info["shard_rows"] = [int(n) for n in model.shard_row_counts()]
        return info

    def reset_stats(self) -> None:
        """Zero the cache hit/miss/invalidation counters.

        ``generation_swaps`` is deliberately *not* reset: the invariant
        ``generation == 1 + generation_swaps`` (relied on by the concurrency
        tests and version-aware clients) must survive a counter reset.  The
        cached results themselves are also kept — this resets measurement,
        not serving state.
        """
        with self._lock:
            self._hits = 0
            self._misses = 0
            self._cache_invalidations = 0

    # -- serving ---------------------------------------------------------------
    @staticmethod
    def _plan_key(generation: int, plan: CompiledQueries) -> tuple:
        digest = hashlib.sha256()
        digest.update(repr(plan.columns).encode())
        digest.update(plan.lows.tobytes())
        digest.update(plan.highs.tobytes())
        return (generation, len(plan), digest.digest())

    def estimate_batch(
        self,
        queries: Sequence[RangeQuery] | CompiledQueries,
        *,
        tenant: str | None = None,
        now: float | None = None,
    ) -> np.ndarray:
        """Vector of selectivity estimates for a workload (cached, thread-safe).

        The returned array is read-only and may be shared between callers
        that submit the same plan — treat it as immutable.  ``tenant``
        labels the request in the telemetry registry (when one is attached)
        and identifies the requester to the admission controller; it never
        influences the answer or the cache key.  ``now`` is the decision
        timestamp for admission *and* for the circuit breaker's open →
        half-open transition (virtual-time simulators pass their clock; the
        default is wall clock); it is ignored when neither is attached.
        Raises :class:`~repro.core.errors.AdmissionRejected` when a
        controller refuses the request, and
        :class:`~repro.core.errors.CircuitOpenError` when the breaker is
        open and no last-good result or fallback covers the plan.
        """
        return self.estimate_batch_tagged(queries, tenant=tenant, now=now)[1]

    def estimate_batch_tagged(
        self,
        queries: Sequence[RangeQuery] | CompiledQueries,
        *,
        tenant: str | None = None,
        now: float | None = None,
    ) -> tuple[int, np.ndarray]:
        """Like :meth:`estimate_batch`, also returning the serving generation.

        The generation identifies the model version that produced (or cached)
        the result — the hook concurrency tests and version-aware clients use
        to attribute an answer to a publish.
        """
        if self.admission is not None:
            self.admission.admit(tenant if tenant is not None else "default",
                                 "query", now=now)
        if not self._instrumented:
            generation, result, _ = self._serve(queries, now)
            return generation, result
        perf = perf_counter  # local binding: this wrapper is the hot path
        start = perf()
        generation, result, outcome = self._serve(queries, now)
        elapsed = perf() - start
        self._record_request(elapsed)
        if tenant is not None:
            series = self._tenant_series.get(tenant)
            if series is None:
                # Benign race: get-or-create is idempotent, losers just
                # re-derive the same registry objects.
                series = (
                    self.metrics.histogram("serve.request_seconds", tenant=tenant),
                    {
                        o: self.metrics.counter("serve.requests", tenant=tenant, outcome=o)
                        for o in _OUTCOMES
                    },
                )
                self._tenant_series[tenant] = series
            series[0].record(elapsed)
            series[1][outcome].inc()
        return generation, result

    def _serve(
        self,
        queries: Sequence[RangeQuery] | CompiledQueries,
        now: float | None = None,
    ) -> tuple[int, np.ndarray, str]:
        """The serving core: ``(generation, result, cache outcome)``."""
        generation, model = self._current
        plan = compile_queries(queries, model.columns)
        if len(plan) == 0:
            # Zero-row plans never touch the model and never enter the cache:
            # caching them would spend LRU slots (and hash work) on answers
            # that are a constant empty vector.
            return generation, np.zeros(0), "empty"
        outcome = "miss"
        key = None
        if self.cache_size == 0:
            outcome = "uncached"
        else:
            key = self._plan_key(generation, plan)
            with self._lock:
                cached = self._cache.get(key)
                if cached is not None:
                    self._cache.move_to_end(key)
                    self._hits += 1
                    return generation, cached, "hit"
                self._misses += 1
        breaker = self.breaker
        if breaker is None:
            result = model.estimate_batch(plan)
        else:
            if breaker.before_call(now) == "shed":
                return self._serve_degraded(generation, plan, key, None)
            try:
                inject("serve.estimate")
                result = model.estimate_batch(plan)
            except Exception as error:  # noqa: BLE001 - fault boundary
                breaker.record_failure(now)
                if self._instrumented:
                    self.metrics.counter("serve.model_faults").inc()
                return self._serve_degraded(generation, plan, key, error)
            breaker.record_success(now)
        result.setflags(write=False)
        with self._lock:
            if self._last_good_size:
                digest = key[2] if key is not None else self._plan_key(0, plan)[2]
                self._last_good[digest] = result
                self._last_good.move_to_end(digest)
                while len(self._last_good) > self._last_good_size:
                    self._last_good.popitem(last=False)
            # Only results of the *current* generation are admitted: a read
            # that raced a publish may hold a now-superseded model, and its
            # result must not outlive that version in the cache.
            if key is not None and key[0] == self._current[0]:
                self._cache[key] = result
                self._cache.move_to_end(key)
                while len(self._cache) > self.cache_size:
                    self._cache.popitem(last=False)
        return generation, result, outcome

    def _serve_degraded(
        self,
        generation: int,
        plan: CompiledQueries,
        key: tuple | None,
        error: Exception | None,
    ) -> tuple[int, np.ndarray, str]:
        """Answer while the model is unavailable (breaker open or faulting).

        Preference order: the last-good result for this exact plan (any
        generation — a stale answer beats no answer), then the fallback
        estimator, then :class:`~repro.core.errors.CircuitOpenError`.
        Degraded answers never enter the plan cache: they must not outlive
        the outage as fresh results.
        """
        digest = key[2] if key is not None else self._plan_key(0, plan)[2]
        with self._lock:
            stale = self._last_good.get(digest)
        if stale is not None:
            if self._instrumented:
                self.metrics.counter("serve.stale_served").inc()
            return generation, stale, "stale"
        if self.fallback is not None:
            try:
                result = self.fallback.estimate_batch(plan)
            except Exception as fallback_error:  # noqa: BLE001 - last resort
                raise CircuitOpenError(
                    self.breaker.state if self.breaker is not None else "open",
                    f"fallback estimator failed too ({fallback_error})",
                ) from (error or fallback_error)
            result.setflags(write=False)
            if self._instrumented:
                self.metrics.counter("serve.fallback_served").inc()
            return generation, result, "fallback"
        if self._instrumented:
            self.metrics.counter("serve.requests_shed").inc()
        raise CircuitOpenError(
            self.breaker.state if self.breaker is not None else "open",
            "no last-good result or fallback for this plan",
        ) from error

    def estimate(self, query: RangeQuery) -> float:
        """Scalar sugar over a one-row batch (mirrors the estimator API)."""
        return float(self.estimate_batch((query,))[0])

    def estimate_batch_many(
        self,
        workloads: Sequence[Sequence[RangeQuery] | CompiledQueries],
        max_workers: int = 4,
        *,
        tenant: str | None = None,
    ) -> list[np.ndarray]:
        """Answer many workloads concurrently on a thread pool.

        This is the multi-threaded batch entry point: numpy releases the GIL
        in the kernels that dominate batch estimation, so independent
        workloads overlap on multi-core hardware; cached workloads are
        answered without touching the model at all.  ``tenant`` labels (and,
        with an admission controller, gates) every workload in the batch;
        a refusal surfaces as :class:`~repro.core.errors.AdmissionRejected`
        from the returned future's workload, failing the whole call.
        """
        if max_workers < 1:
            raise InvalidParameterError("max_workers must be positive")
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            return list(
                pool.map(lambda plan: self.estimate_batch(plan, tenant=tenant), workloads)
            )

    # -- copy-on-write updates -------------------------------------------------
    def checkout(self) -> SelectivityEstimator:
        """Private deep copy of the served model for a writer to mutate.

        The copy shares nothing with the served model, so ``insert`` /
        ``flush`` / ``feedback`` on it never disturb concurrent readers.
        """
        return copy.deepcopy(self._current[1])

    def publish(self, model: SelectivityEstimator) -> int:
        """Atomically swap ``model`` in as the new served version.

        Streaming models are flushed first (the served copy must be
        effectively immutable on the read path), the ``(generation, model)``
        pair is replaced in one assignment, stale cache entries are evicted,
        and — when the server was built over a model store — the new version
        is also persisted.  Returns the new generation.
        """
        if not model.is_fitted:
            raise NotFittedError("cannot publish an unfitted model")
        publish_start = perf_counter() if self._instrumented else 0.0
        if isinstance(model, StreamingEstimator):
            model.flush()
        with self._lock:
            generation = self._current[0] + 1
            self._current = (generation, model)
            self._generation_swaps += 1
            stale = [k for k in self._cache if k[0] != generation]
            self._cache_invalidations += len(stale)
            for key in stale:
                del self._cache[key]
        if self.breaker is not None:
            # A fresh model supersedes whatever was faulting: close the
            # breaker (cumulative trips are kept for monitoring).
            self.breaker.reset()
        if self.store is not None and self.model_name:
            self.store.publish(self.model_name, model)
        if self._instrumented:
            self.metrics.histogram("serve.publish_seconds").record(
                perf_counter() - publish_start
            )
        return generation

    def observe(
        self,
        queries: Sequence[RangeQuery] | CompiledQueries,
        true_fractions: Sequence[float],
    ) -> int:
        """Apply query feedback to the served model and publish the result.

        The copy-on-write analogue of :meth:`publish` for feedback traffic:
        the served model is checked out, told the true selectivities
        (``observe`` on an ensemble, per-query ``feedback`` on any other
        :class:`~repro.core.estimator.FeedbackEstimator`), and published back
        — so a weight/bucket update bumps the generation and invalidates
        every cached plan of the superseded version.  Returns the new
        generation.
        """
        from repro.core.estimator import FeedbackEstimator  # local: narrow import

        with self._swap_lock:
            model = self.checkout()
            if hasattr(model, "observe"):
                model.observe(queries, true_fractions)
            elif isinstance(model, FeedbackEstimator):
                plan = compile_queries(queries, model.columns)
                truths = np.asarray(true_fractions, dtype=float)
                if len(plan) != truths.shape[0]:
                    raise InvalidParameterError(
                        "queries and true_fractions must have equal length"
                    )
                for query, truth in zip(plan.to_queries(), truths):
                    model.feedback(query, float(truth))
            else:
                raise InvalidParameterError(
                    f"served model {model.name!r} does not accept query feedback"
                )
            return self.publish(model)

    # -- per-shard updates (sharded models) ------------------------------------
    def _require_sharded(self) -> "ShardedEstimator":
        from repro.shard.sharded import ShardedEstimator  # lazy: avoids a cycle

        model = self._current[1]
        if not isinstance(model, ShardedEstimator):
            raise InvalidParameterError(
                "the served model is not sharded; use checkout()/publish()"
            )
        return model

    def checkout_shard(self, shard_id: int) -> SelectivityEstimator:
        """Private deep copy of one shard's synopsis of the served model.

        The per-shard analogue of :meth:`checkout`: only the one shard is
        copied, so refreshing a single partition behind a large sharded model
        costs O(shard), not O(model).
        """
        return self._require_sharded().checkout_shard(shard_id)

    def publish_shard(self, shard_id: int, shard_model: SelectivityEstimator) -> int:
        """Swap one shard of the served sharded model (atomic, new generation).

        Builds a copy-on-write front end sharing every other shard with the
        currently served model
        (:meth:`~repro.shard.sharded.ShardedEstimator.with_shard`) and
        publishes it: the generation bumps and stale cache entries are
        evicted exactly as for a whole-model publish, while the untouched
        shard synopses are shared, not copied.  Returns the new generation.
        """
        if isinstance(shard_model, StreamingEstimator):
            shard_model.flush()
        with self._swap_lock:
            sharded = self._require_sharded()
            return self.publish(sharded.with_shard(shard_id, shard_model))

    # alias: "swap" is the wire-level name used in the design discussion
    swap = publish
