"""Per-tenant admission control: token buckets + tail-driven load shedding.

The serving tier's control plane.  An :class:`AdmissionController` makes a
synchronous allow/deny decision per request from two independent policies:

* **Token buckets** — each :class:`TenantQuota` with a ``rate`` gets a
  classic token bucket (capacity ``burst``, refill ``rate`` tokens/second):
  a tenant exceeding its provisioned request rate is refused with reason
  ``"tokens"`` regardless of system load.
* **Tail-driven write shedding** — quotas with an ``slo_p99`` mark
  latency-protected tenants.  The controller watches their trailing request
  p99 (``serve.request_seconds{tenant=...}``) in a
  :class:`~repro.obs.collector.TimeSeriesStore`, normally by subscribing to
  a live :class:`~repro.obs.collector.TelemetryCollector` via :meth:`bind`.
  While any protected tenant is over target, the *write allowance* — the
  admitted fraction of write ops (``ingest``/``publish``) from
  **unprotected** tenants — decays multiplicatively (``backoff``) down to
  ``floor``; once every protected tenant is back under target it recovers
  multiplicatively (``recovery``) up to 1.  Sheds are refused with reason
  ``"shed"``.

Shedding is **deterministic**: each tenant accumulates ``allowance`` credits
per write attempt and an op is admitted exactly when a whole credit is
available — no RNG, and two identical runs shed the identical ops.  With
``quantum=1`` admitted writes are spread evenly (allowance 0.25 admits every
4th write).  A larger ``quantum`` *clusters* them instead: credits must pile
up to ``quantum`` before a burst of consecutive writes drains them, so the
same long-run admitted fraction arrives as rare bursts separated by long
write-free gaps.  For publish-style writes that invalidate a shared cache,
clustering is strictly kinder to latency-protected readers — back-to-back
publishes cost one cold-cache episode, not many — which is why the admission
benchmark runs with a quantum above 1.  Every decision takes an explicit
``now=`` timestamp (default ``time.monotonic()``), which is how the
virtual-time traffic simulator drives bucket refill and the control loop on
its own clock while latencies stay wall-clock.

Refusals raise the typed :class:`~repro.core.errors.AdmissionRejected` and
are counted in the registry (``admission.rejected{tenant=,op=,reason=}``)
alongside ``admission.allowed`` and an ``admission.write_allowance`` gauge —
behind the same one-branch no-op default as the rest of the serving
instrumentation.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.core.errors import AdmissionRejected, InvalidParameterError
from repro.fault.plan import skew_clock
from repro.obs.metrics import default_metrics

if TYPE_CHECKING:  # annotation-only: obs must not import serve
    from repro.obs.collector import TelemetryCollector, TimeSeriesStore

__all__ = ["TenantQuota", "AdmissionController", "WRITE_OPS"]

#: Op classes subject to tail-driven shedding (mutating the served model).
WRITE_OPS = frozenset({"ingest", "publish"})

#: Histogram whose per-tenant trailing p99 drives the shedding policy.
_SLO_METRIC = "serve.request_seconds"


@dataclass(frozen=True)
class TenantQuota:
    """Admission policy of one tenant.

    ``rate`` (requests/second, ``None`` = unthrottled) and ``burst``
    (bucket capacity, default ``2 * rate``) provision the token bucket;
    ``slo_p99`` (seconds, ``None`` = unprotected) marks the tenant as
    latency-protected: its trailing request p99 drives write shedding of
    the *other*, unprotected tenants, and its own writes are never shed.
    """

    name: str
    rate: float | None = None
    burst: float | None = None
    slo_p99: float | None = None

    def __post_init__(self) -> None:
        if self.rate is not None and self.rate <= 0:
            raise InvalidParameterError("rate must be positive (or None)")
        if self.burst is not None and self.burst < 1:
            raise InvalidParameterError("burst must be at least 1 (or None)")
        if self.slo_p99 is not None and self.slo_p99 <= 0:
            raise InvalidParameterError("slo_p99 must be positive (or None)")

    @property
    def capacity(self) -> float:
        """Effective bucket capacity (``burst`` or ``2 * rate``)."""
        if self.burst is not None:
            return float(self.burst)
        return max(2.0 * float(self.rate or 0.0), 1.0)

    def describe(self) -> dict:
        return {
            "name": self.name,
            "rate": self.rate,
            "burst": self.burst,
            "slo_p99": self.slo_p99,
        }


class _Bucket:
    __slots__ = ("tokens", "last")

    def __init__(self, tokens: float, last: float) -> None:
        self.tokens = tokens
        self.last = last


class AdmissionController:
    """Allow/deny serving-tier requests per tenant (see module docstring).

    Parameters
    ----------
    quotas:
        :class:`TenantQuota` entries (or a ``name -> quota`` mapping).
        Tenants without a quota are unthrottled but their writes are
        subject to shedding.
    window:
        Trailing window (seconds) of the p99 readout; ``None`` uses every
        retained collector point.
    floor:
        Minimum write allowance — shedding never starves writes entirely,
        so ingest tenants keep making (slow) progress during storms.
    backoff / recovery:
        Multiplicative allowance decrease per breached control tick and
        increase per healthy one.
    quantum:
        Burst size of the deterministic shed scheduler.  1 (default) spreads
        admitted writes evenly; larger values cluster them into bursts of
        roughly ``quantum`` consecutive admits separated by proportionally
        longer shed gaps (same long-run admitted fraction), which concentrates
        cache-invalidating publishes into rare episodes.
    initial_allowance:
        Starting write allowance (default 1.0).  Set near ``floor`` for a
        slow-start controller that admits writes conservatively until healthy
        tails earn the allowance back — avoids the reactive-control window
        where a fresh storm runs unthrottled until the first breach is
        observed.
    metrics:
        Optional registry for decision counters; defaults to the
        process-default registry (no-op unless installed).
    """

    def __init__(
        self,
        quotas: "Iterable[TenantQuota] | Mapping[str, TenantQuota]" = (),
        *,
        window: float | None = 2.0,
        floor: float = 0.05,
        backoff: float = 0.5,
        recovery: float = 1.5,
        quantum: int = 1,
        initial_allowance: float = 1.0,
        metrics=None,
    ) -> None:
        if isinstance(quotas, Mapping):
            quotas = quotas.values()
        self.quotas: dict[str, TenantQuota] = {}
        for quota in quotas:
            if quota.name in self.quotas:
                raise InvalidParameterError(f"duplicate quota for tenant {quota.name!r}")
            self.quotas[quota.name] = quota
        if window is not None and window <= 0:
            raise InvalidParameterError("window must be positive (or None)")
        if not 0.0 < floor <= 1.0:
            raise InvalidParameterError("floor must lie in (0, 1]")
        if not 0.0 < backoff < 1.0:
            raise InvalidParameterError("backoff must lie in (0, 1)")
        if recovery <= 1.0:
            raise InvalidParameterError("recovery must exceed 1")
        if int(quantum) != quantum or quantum < 1:
            raise InvalidParameterError("quantum must be a positive integer")
        if not 0.0 < initial_allowance <= 1.0:
            raise InvalidParameterError("initial_allowance must lie in (0, 1]")
        self.window = window
        self.floor = float(floor)
        self.backoff = float(backoff)
        self.recovery = float(recovery)
        self.quantum = int(quantum)
        self._lock = threading.Lock()
        self._buckets: dict[str, _Bucket] = {}
        self._credits: dict[str, float] = {}
        self._draining: set[str] = set()
        self._allowance = max(self.floor, float(initial_allowance))
        self._store: "TimeSeriesStore | None" = None
        self.metrics = metrics if metrics is not None else default_metrics()
        self._instrumented = self.metrics.enabled
        self._decision_counters: dict[tuple, object] = {}
        if self._instrumented:
            self.metrics.gauge_fn(
                "admission.write_allowance", lambda: self._allowance
            )

    # -- collector wiring ------------------------------------------------------
    def bind(self, collector: "TelemetryCollector") -> "AdmissionController":
        """Close the control loop over a live collector.

        Reads trailing p99s from the collector's store and subscribes
        :meth:`update`, so every collector tick immediately re-evaluates the
        shedding policy.  Returns ``self`` for chaining.
        """
        self._store = collector.store
        collector.subscribe(lambda _collector, now: self.update(now=now))
        return self

    def attach_store(self, store: "TimeSeriesStore") -> "AdmissionController":
        """Read trailing p99s from ``store`` without subscribing to ticks."""
        self._store = store
        return self

    # -- introspection ---------------------------------------------------------
    @property
    def write_allowance(self) -> float:
        """Current admitted fraction of unprotected-tenant write ops."""
        return self._allowance

    def slo_status(self) -> dict[str, dict]:
        """Trailing p99 vs. target per protected tenant (monitoring view)."""
        status: dict[str, dict] = {}
        for name, quota in self.quotas.items():
            if quota.slo_p99 is None:
                continue
            p99 = self._trailing_p99(name)
            status[name] = {
                "target_p99": quota.slo_p99,
                "trailing_p99": p99,
                "breach": p99 is not None and p99 > quota.slo_p99,
            }
        return status

    def describe(self) -> dict:
        return {
            "quotas": {name: q.describe() for name, q in self.quotas.items()},
            "window": self.window,
            "floor": self.floor,
            "backoff": self.backoff,
            "recovery": self.recovery,
            "quantum": self.quantum,
            "write_allowance": self._allowance,
        }

    # -- the control loop ------------------------------------------------------
    def _trailing_p99(self, tenant: str) -> float | None:
        if self._store is None:
            return None
        key = f"{_SLO_METRIC}{{tenant={tenant}}}"
        return self._store.window_quantile(key, 0.99, self.window)

    def update(self, now: float | None = None) -> float:
        """One control tick: grade protected tenants, adjust the allowance.

        Any protected tenant over its p99 target backs the write allowance
        off multiplicatively (down to ``floor``); an all-clear tick recovers
        it (up to 1).  Returns the new allowance.  Invoked per collector
        tick when bound via :meth:`bind`.
        """
        breach = False
        for name, quota in self.quotas.items():
            if quota.slo_p99 is None:
                continue
            p99 = self._trailing_p99(name)
            if p99 is not None and p99 > quota.slo_p99:
                breach = True
                break
        with self._lock:
            if breach:
                self._allowance = max(self.floor, self._allowance * self.backoff)
            else:
                self._allowance = min(1.0, self._allowance * self.recovery)
            return self._allowance

    # -- the decision ----------------------------------------------------------
    def admit(self, tenant: str, op: str = "query", now: float | None = None) -> None:
        """Admit or refuse one request (raises :class:`AdmissionRejected`).

        ``now`` is the decision timestamp for bucket refill — pass virtual
        time from simulators, omit for wall clock.
        """
        if now is None:
            now = time.monotonic()
        # Fault hook: a skewed (possibly backwards) clock must degrade refill,
        # never corrupt the buckets — the `now > bucket.last` guard below
        # already makes backwards time a no-op refill.
        now = skew_clock("admission.clock", now)
        quota = self.quotas.get(tenant)
        with self._lock:
            if quota is not None and quota.rate is not None:
                bucket = self._buckets.get(tenant)
                if bucket is None:
                    bucket = _Bucket(quota.capacity, float(now))
                    self._buckets[tenant] = bucket
                elif now > bucket.last:
                    bucket.tokens = min(
                        quota.capacity,
                        bucket.tokens + (float(now) - bucket.last) * float(quota.rate),
                    )
                    bucket.last = float(now)
                if bucket.tokens < 1.0:
                    self._refuse(tenant, op, "tokens")
                bucket.tokens -= 1.0
            if (
                op in WRITE_OPS
                and self._allowance < 1.0
                and (quota is None or quota.slo_p99 is None)
            ):
                # Credits accumulate at `allowance` per attempt and cap at
                # quantum; a burst starts once they pile up to quantum and
                # drains one credit per admit until exhausted, so the same
                # long-run admitted fraction arrives clustered (quantum > 1)
                # or evenly (quantum == 1).
                credit = min(
                    float(self.quantum), self._credits.get(tenant, 0.0) + self._allowance
                )
                threshold = 1.0 if tenant in self._draining else float(self.quantum)
                if credit < threshold:
                    self._credits[tenant] = credit
                    self._draining.discard(tenant)
                    self._refuse(tenant, op, "shed")
                self._draining.add(tenant)
                self._credits[tenant] = credit - 1.0
        if self._instrumented:
            self._count("allowed", tenant, op)

    def _refuse(self, tenant: str, op: str, reason: str) -> None:
        if self._instrumented:
            self._count("rejected", tenant, op, reason)
        raise AdmissionRejected(tenant, op, reason)

    def _count(self, decision: str, tenant: str, op: str, reason: str | None = None) -> None:
        key = (decision, tenant, op, reason)
        counter = self._decision_counters.get(key)
        if counter is None:
            labels = {"tenant": tenant, "op": op}
            if reason is not None:
                labels["reason"] = reason
            counter = self.metrics.counter(f"admission.{decision}", **labels)
            self._decision_counters[key] = counter
        counter.inc()
