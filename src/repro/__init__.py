"""repro — adaptive density estimation for selectivity estimation.

A reproduction of the VLDB 2006 paper *Adaptive Density Estimation* as an
open-source Python library: kernel-density selectivity estimators (batch,
sample-point adaptive, streaming with bounded memory, and query-feedback
self-tuning) together with the classical synopsis baselines (equi-width /
equi-depth histograms, multi-dimensional grids, samples, Haar wavelets,
self-tuning histograms), the data/workload/engine substrates needed to
evaluate them, and a benchmark harness that regenerates every table and
figure of the (reconstructed) evaluation.

The estimator API is *batch first*: a workload is compiled once into a
:class:`~repro.workload.queries.CompiledQueries` plan and every synopsis
answers the whole batch with vectorized numpy operations via
``estimate_batch``; the scalar ``estimate(query)`` is sugar over a one-row
batch.

Quickstart
----------
>>> from repro import (
...     gaussian_mixture_table, AdaptiveKDEEstimator, UniformWorkload,
...     compile_queries,
... )
>>> table = gaussian_mixture_table(rows=20_000, dimensions=2, seed=7)
>>> estimator = AdaptiveKDEEstimator(sample_size=512).fit(table)
>>> queries = UniformWorkload(table, seed=1).generate(100)
>>> plan = compile_queries(queries, estimator.columns)   # compile once ...
>>> estimates = estimator.estimate_batch(plan)           # ... estimate in bulk
>>> truths = table.true_selectivities(plan)              # vectorized ground truth
>>> estimates.shape == truths.shape == (100,)
True
>>> bool((estimates >= 0.0).all() and (estimates <= 1.0).all())
True

Durability is on by default: snapshots written through ``save_estimator`` /
:class:`ModelStore` carry a content checksum that loads verify (corrupt
versions are quarantined and the store rolls back to the newest intact one),
and streaming ingest can be made crash-safe by wrapping the estimator in
:class:`~repro.persist.JournaledIngest` over an
:class:`~repro.persist.IngestJournal` (fsync'd write-ahead journal; replay
after a crash reproduces the pre-crash model bitwise).  All failure paths are
testable deterministically through :mod:`repro.fault`.
"""

from repro.core.adaptive import AdaptiveKDEEstimator
from repro.core.bandwidth import (
    lscv_bandwidth,
    mlcv_bandwidth,
    scott_bandwidth,
    select_bandwidth,
    silverman_bandwidth,
)
from repro.core.errors import (
    BudgetError,
    CatalogError,
    CircuitOpenError,
    DimensionMismatchError,
    InjectedFault,
    InvalidParameterError,
    InvalidQueryError,
    NotFittedError,
    PersistenceError,
    ReproError,
    SchemaError,
    SnapshotCorruptError,
    StreamError,
)
from repro.core.estimator import (
    FeedbackEstimator,
    SelectivityEstimator,
    StreamingEstimator,
    available_estimators,
    create_estimator,
    estimator_from_config,
    register_estimator,
)
from repro.core.fastpath import (
    KernelSupportIndex,
    fastpath_disabled,
    fastpath_enabled,
)
from repro.core.feedback import FeedbackAdaptiveEstimator
from repro.core.kde import KDESelectivityEstimator
from repro.core.resolve import resolve_estimator
from repro.core.kernels import (
    BiweightKernel,
    EpanechnikovKernel,
    GaussianKernel,
    Kernel,
    TriangularKernel,
    UniformKernel,
    get_kernel,
)
from repro.core.streaming import StreamingADE
from repro.baselines.histogram import EquiDepthHistogram, EquiWidthHistogram, Histogram1D
from repro.baselines.independence import IndependenceEstimator
from repro.baselines.multidim import GridHistogram
from repro.baselines.sampling import ReservoirSamplingEstimator, SamplingEstimator
from repro.baselines.stholes import SelfTuningHistogram
from repro.baselines.wavelet import WaveletHistogram
from repro.data.generators import (
    clustered_table,
    correlated_table,
    gaussian_mixture_table,
    make_dataset,
    mixed_table,
    mixed_type_table,
    uniform_table,
    zipf_table,
)
from repro.data.streams import (
    DataStream,
    gradual_drift_stream,
    rotating_drift_stream,
    stationary_stream,
    sudden_drift_stream,
)
from repro.engine.catalog import Catalog
from repro.ensemble import (
    EnsembleEstimator,
    ExpertPool,
    WeightedExpert,
    WeightPolicy,
    available_policies,
    create_policy,
    register_policy,
)
from repro.engine.executor import EvaluationResult, Executor, evaluate_estimator
from repro.engine.optimizer import (
    JoinSpec,
    Optimizer,
    Plan,
    estimate_join_selectivity,
    exact_join_selectivity,
    plan_regret,
)
from repro.engine.table import ColumnKind, ColumnStats, Table, TableSchema
from repro.metrics.errors import (
    ErrorSummary,
    absolute_errors,
    evaluate_estimates,
    q_errors,
    relative_errors,
    summarize_errors,
)
from repro.metrics.report import render_series, render_table
from repro.fault import (
    FaultPlan,
    FaultRule,
    default_fault_plan,
    random_plan,
    set_default_fault_plan,
    use_fault_plan,
)
from repro.persist import (
    IngestJournal,
    JournaledIngest,
    ModelStore,
    ModelVersion,
    load_estimator,
    load_sharded,
    save_estimator,
    save_sharded,
    verify_snapshot,
)
from repro.obs import (
    CSVExporter,
    JSONExporter,
    JSONLExporter,
    LatencyHistogram,
    MetricsExporter,
    MetricsRegistry,
    ParquetExporter,
    TelemetryCollector,
    TimeSeriesStore,
    exporter_for_path,
    render_dashboard,
    resolve_exporter,
    set_default_metrics,
    use_default_metrics,
    write_dashboard,
)
from repro.serve import (
    AdmissionController,
    CircuitBreaker,
    EstimatorServer,
    ServerCacheInfo,
    TenantQuota,
)
from repro.shard import (
    HashPartitioner,
    Partitioner,
    RangePartitioner,
    RoundRobinPartitioner,
    ShardedEstimator,
    ShardExecutor,
    make_partitioner,
    partition_table,
)
from repro.stream.reservoir import DecayedReservoirSampler, ReservoirSampler
from repro.stream.windows import SlidingWindow
from repro.traffic import (
    DEFAULT_TENANTS,
    TenantProfile,
    TrafficEvent,
    TrafficReport,
    TrafficSimulator,
)
from repro.workload.generators import (
    DataCenteredWorkload,
    SkewedWorkload,
    TypedWorkload,
    UniformWorkload,
    WorkloadGenerator,
    generate_workload,
)
from repro.workload.queries import (
    CompiledQueries,
    Interval,
    LoweredQueries,
    QueryRegion,
    RangeQuery,
    SetMembership,
    StringPrefix,
    TypedQuery,
    compile_queries,
)

__version__ = "1.0.0"

__all__ = [
    # core estimators
    "SelectivityEstimator",
    "StreamingEstimator",
    "FeedbackEstimator",
    "KDESelectivityEstimator",
    "AdaptiveKDEEstimator",
    "StreamingADE",
    "FeedbackAdaptiveEstimator",
    "register_estimator",
    "create_estimator",
    "available_estimators",
    "estimator_from_config",
    "resolve_estimator",
    # expert ensemble
    "EnsembleEstimator",
    "ExpertPool",
    "WeightedExpert",
    "WeightPolicy",
    "register_policy",
    "create_policy",
    "available_policies",
    # query fast path
    "KernelSupportIndex",
    "fastpath_enabled",
    "fastpath_disabled",
    # kernels & bandwidths
    "Kernel",
    "GaussianKernel",
    "EpanechnikovKernel",
    "BiweightKernel",
    "TriangularKernel",
    "UniformKernel",
    "get_kernel",
    "scott_bandwidth",
    "silverman_bandwidth",
    "lscv_bandwidth",
    "mlcv_bandwidth",
    "select_bandwidth",
    # baselines
    "Histogram1D",
    "EquiWidthHistogram",
    "EquiDepthHistogram",
    "GridHistogram",
    "IndependenceEstimator",
    "SamplingEstimator",
    "ReservoirSamplingEstimator",
    "WaveletHistogram",
    "SelfTuningHistogram",
    # engine
    "Table",
    "TableSchema",
    "ColumnKind",
    "ColumnStats",
    "Catalog",
    "Executor",
    "EvaluationResult",
    "evaluate_estimator",
    "Optimizer",
    "JoinSpec",
    "Plan",
    "plan_regret",
    "estimate_join_selectivity",
    "exact_join_selectivity",
    # sharded estimation
    "ShardedEstimator",
    "ShardExecutor",
    "Partitioner",
    "HashPartitioner",
    "RangePartitioner",
    "RoundRobinPartitioner",
    "make_partitioner",
    "partition_table",
    # persistence & serving
    "ModelStore",
    "ModelVersion",
    "save_estimator",
    "load_estimator",
    "verify_snapshot",
    "save_sharded",
    "load_sharded",
    "IngestJournal",
    "JournaledIngest",
    "EstimatorServer",
    "ServerCacheInfo",
    "AdmissionController",
    "TenantQuota",
    "CircuitBreaker",
    # fault injection
    "FaultPlan",
    "FaultRule",
    "default_fault_plan",
    "set_default_fault_plan",
    "use_fault_plan",
    "random_plan",
    # observability & traffic
    "MetricsRegistry",
    "LatencyHistogram",
    "set_default_metrics",
    "use_default_metrics",
    "MetricsExporter",
    "JSONExporter",
    "JSONLExporter",
    "CSVExporter",
    "ParquetExporter",
    "TelemetryCollector",
    "TimeSeriesStore",
    "exporter_for_path",
    "resolve_exporter",
    "render_dashboard",
    "write_dashboard",
    "TrafficSimulator",
    "TenantProfile",
    "TrafficEvent",
    "TrafficReport",
    "DEFAULT_TENANTS",
    # data & workloads
    "uniform_table",
    "gaussian_mixture_table",
    "zipf_table",
    "correlated_table",
    "clustered_table",
    "mixed_table",
    "mixed_type_table",
    "make_dataset",
    "DataStream",
    "stationary_stream",
    "sudden_drift_stream",
    "gradual_drift_stream",
    "rotating_drift_stream",
    "RangeQuery",
    "TypedQuery",
    "Interval",
    "SetMembership",
    "StringPrefix",
    "QueryRegion",
    "CompiledQueries",
    "LoweredQueries",
    "compile_queries",
    "WorkloadGenerator",
    "UniformWorkload",
    "DataCenteredWorkload",
    "SkewedWorkload",
    "TypedWorkload",
    "generate_workload",
    # streams
    "ReservoirSampler",
    "DecayedReservoirSampler",
    "SlidingWindow",
    # metrics
    "ErrorSummary",
    "absolute_errors",
    "relative_errors",
    "q_errors",
    "summarize_errors",
    "evaluate_estimates",
    "render_table",
    "render_series",
    # errors
    "ReproError",
    "NotFittedError",
    "DimensionMismatchError",
    "InvalidQueryError",
    "InvalidParameterError",
    "BudgetError",
    "CatalogError",
    "StreamError",
    "SchemaError",
    "PersistenceError",
    "SnapshotCorruptError",
    "InjectedFault",
    "CircuitOpenError",
]
