"""Error metrics and plain-text table/figure rendering."""

from repro.metrics.errors import (
    ErrorSummary,
    absolute_errors,
    evaluate_estimates,
    integrated_squared_error,
    q_errors,
    relative_errors,
    summarize_errors,
)
from repro.metrics.report import format_number, render_series, render_table

__all__ = [
    "ErrorSummary",
    "absolute_errors",
    "relative_errors",
    "q_errors",
    "integrated_squared_error",
    "summarize_errors",
    "evaluate_estimates",
    "render_table",
    "render_series",
    "format_number",
]
