"""Error metrics for selectivity estimates and density models.

The evaluation reports the metrics standard in the selectivity-estimation
literature:

* **absolute error** ``|est - true|`` (in selectivity units),
* **relative error** ``|est - true| / max(true, floor)`` with a cardinality
  floor so empty-result queries do not produce infinite errors,
* **q-error** ``max(est, true, floor) / min(est, true, floor)`` — the
  multiplicative error the optimizer actually cares about,
* **MISE / ISE** between density functions on a grid, used by the bandwidth
  ablation where the true generating density is known.

:class:`ErrorSummary` aggregates a vector of per-query errors into the
statistics printed in the tables (mean/median/percentiles).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.errors import InvalidParameterError

__all__ = [
    "absolute_errors",
    "relative_errors",
    "q_errors",
    "integrated_squared_error",
    "ErrorSummary",
    "summarize_errors",
    "evaluate_estimates",
]

#: Selectivity floor used when normalising errors of empty-result queries.
DEFAULT_FLOOR = 1e-4


def _validate(estimates: np.ndarray, truths: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    estimates = np.asarray(estimates, dtype=float).ravel()
    truths = np.asarray(truths, dtype=float).ravel()
    if estimates.size != truths.size:
        raise InvalidParameterError(
            f"estimates ({estimates.size}) and truths ({truths.size}) differ in length"
        )
    return estimates, truths


def absolute_errors(estimates: np.ndarray, truths: np.ndarray) -> np.ndarray:
    """Element-wise absolute error ``|est - true|``."""
    estimates, truths = _validate(estimates, truths)
    return np.abs(estimates - truths)


def relative_errors(
    estimates: np.ndarray, truths: np.ndarray, floor: float = DEFAULT_FLOOR
) -> np.ndarray:
    """Element-wise relative error with a floor on the denominator."""
    if floor <= 0:
        raise InvalidParameterError("floor must be positive")
    estimates, truths = _validate(estimates, truths)
    return np.abs(estimates - truths) / np.maximum(truths, floor)


def q_errors(estimates: np.ndarray, truths: np.ndarray, floor: float = DEFAULT_FLOOR) -> np.ndarray:
    """Element-wise q-error ``max(e, t) / min(e, t)`` with flooring (≥ 1)."""
    if floor <= 0:
        raise InvalidParameterError("floor must be positive")
    estimates, truths = _validate(estimates, truths)
    est = np.maximum(estimates, floor)
    tru = np.maximum(truths, floor)
    return np.maximum(est, tru) / np.minimum(est, tru)


def integrated_squared_error(
    estimated_density: np.ndarray, true_density: np.ndarray, grid_step: float
) -> float:
    """Integrated squared error between two densities sampled on a uniform grid."""
    if grid_step <= 0:
        raise InvalidParameterError("grid_step must be positive")
    estimated_density = np.asarray(estimated_density, dtype=float)
    true_density = np.asarray(true_density, dtype=float)
    if estimated_density.shape != true_density.shape:
        raise InvalidParameterError("density arrays must have the same shape")
    return float(np.sum((estimated_density - true_density) ** 2) * grid_step)


@dataclass(frozen=True)
class ErrorSummary:
    """Aggregate statistics of a vector of per-query errors."""

    count: int
    mean: float
    median: float
    p90: float
    p95: float
    p99: float
    maximum: float

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view used by the report renderers."""
        return {
            "count": self.count,
            "mean": self.mean,
            "median": self.median,
            "p90": self.p90,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.maximum,
        }

    def __str__(self) -> str:
        return (
            f"mean={self.mean:.4f} median={self.median:.4f} "
            f"p95={self.p95:.4f} max={self.maximum:.4f} (n={self.count})"
        )


def summarize_errors(errors: Iterable[float]) -> ErrorSummary:
    """Summarise a vector of per-query errors."""
    values = np.asarray(list(errors), dtype=float)
    if values.size == 0:
        return ErrorSummary(0, float("nan"), float("nan"), float("nan"), float("nan"), float("nan"), float("nan"))
    return ErrorSummary(
        count=int(values.size),
        mean=float(np.mean(values)),
        median=float(np.median(values)),
        p90=float(np.percentile(values, 90)),
        p95=float(np.percentile(values, 95)),
        p99=float(np.percentile(values, 99)),
        maximum=float(np.max(values)),
    )


def evaluate_estimates(
    estimates: Sequence[float] | np.ndarray,
    truths: Sequence[float] | np.ndarray,
    floor: float = DEFAULT_FLOOR,
) -> Mapping[str, ErrorSummary]:
    """Compute all three error summaries for a batch of queries.

    Returns a mapping with keys ``"absolute"``, ``"relative"`` and ``"q"``.
    """
    estimates = np.asarray(estimates, dtype=float)
    truths = np.asarray(truths, dtype=float)
    return {
        "absolute": summarize_errors(absolute_errors(estimates, truths)),
        "relative": summarize_errors(relative_errors(estimates, truths, floor)),
        "q": summarize_errors(q_errors(estimates, truths, floor)),
    }
