"""Plain-text rendering of experiment tables and figure series.

The benchmark harness regenerates every table and figure of the evaluation as
text: tables are fixed-width column layouts, figures are printed as the
underlying data series (x values and one column per estimator), which is what
a plotting script would consume.  Keeping rendering here means the experiment
code returns plain data structures and stays testable.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["render_table", "render_series", "format_number"]


def format_number(value: object, precision: int = 4) -> str:
    """Format a cell value: floats get fixed precision, the rest ``str()``."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1e6 or (abs(value) < 1e-4 and value != 0.0):
            return f"{value:.{precision}e}"
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Render a fixed-width text table.

    >>> print(render_table(["a", "b"], [[1, 2.5]]))
    a  b
    -  ------
    1  2.5000
    """
    formatted_rows = [[format_number(cell, precision) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in formatted_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in formatted_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_series(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Render a figure as its data series: one row per x value, one column per series."""
    headers = [x_label, *series.keys()]
    rows = []
    for index, x in enumerate(x_values):
        row: list[object] = [x]
        for values in series.values():
            row.append(values[index] if index < len(values) else float("nan"))
        rows.append(row)
    return render_table(headers, rows, title=title, precision=precision)
