"""Stream substrate: reservoir samplers and sliding windows."""

from repro.stream.reservoir import DecayedReservoirSampler, ReservoirSampler
from repro.stream.windows import SlidingWindow

__all__ = ["ReservoirSampler", "DecayedReservoirSampler", "SlidingWindow"]
