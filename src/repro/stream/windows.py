"""Sliding windows over row streams.

:class:`SlidingWindow` keeps the last ``capacity`` rows of a stream in a ring
buffer.  It is used by the drift experiments to build "rebuild from recent
window" baselines against which the decayed streaming estimator is compared.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.stream.batches import normalize_batch

__all__ = ["SlidingWindow"]


class SlidingWindow:
    """Fixed-capacity ring buffer of the most recent rows of a stream."""

    def __init__(self, capacity: int, dimensions: int) -> None:
        if capacity < 1:
            raise InvalidParameterError("window capacity must be positive")
        if dimensions < 1:
            raise InvalidParameterError("dimensions must be positive")
        self.capacity = int(capacity)
        self.dimensions = int(dimensions)
        self._rows = np.empty((capacity, dimensions))
        self._next = 0
        self._size = 0
        self._seen = 0

    @property
    def size(self) -> int:
        """Number of rows currently held (≤ capacity)."""
        return self._size

    @property
    def seen(self) -> int:
        """Total number of rows pushed through the window."""
        return self._seen

    @property
    def is_full(self) -> bool:
        """True when the window holds ``capacity`` rows."""
        return self._size == self.capacity

    def insert(self, rows: np.ndarray) -> None:
        """Push a batch of rows, evicting the oldest rows beyond capacity.

        Vectorized: an oversized batch writes only its last ``capacity`` rows
        (everything earlier would be evicted immediately anyway); smaller
        batches are written in at most two ring-buffer slices.  Empty batches
        are a no-op.
        """
        rows = normalize_batch(rows, self.dimensions)
        if rows is None:
            return
        n = rows.shape[0]
        self._seen += n
        if n >= self.capacity:
            self._rows[:] = rows[-self.capacity :]
            self._next = 0
            self._size = self.capacity
            return
        end = self._next + n
        if end <= self.capacity:
            self._rows[self._next : end] = rows
        else:
            split = self.capacity - self._next
            self._rows[self._next :] = rows[:split]
            self._rows[: end - self.capacity] = rows[split:]
        self._next = end % self.capacity
        self._size = min(self._size + n, self.capacity)

    def contents(self) -> np.ndarray:
        """Rows currently in the window, oldest first."""
        if self._size < self.capacity:
            return self._rows[: self._size].copy()
        return np.vstack([self._rows[self._next :], self._rows[: self._next]])

    def clear(self) -> None:
        """Drop all buffered rows (stream position is preserved)."""
        self._next = 0
        self._size = 0
