"""Batch normalisation shared by every streaming ingestion surface.

Every ``insert(rows)`` in the library — the streaming estimators, the
reservoir samplers and the sliding window — accepts the same inputs: a
``(n, d)`` matrix, a single 1-D row, or an empty batch (a no-op, never an
error).  This helper is the single implementation of that contract.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import InvalidParameterError

__all__ = ["normalize_batch"]


def normalize_batch(
    rows: np.ndarray,
    dimensions: int,
    error: type[Exception] = InvalidParameterError,
) -> np.ndarray | None:
    """Normalise ``rows`` to a ``(n, dimensions)`` float matrix.

    Empty input returns ``None`` (callers treat it as a no-op); a 1-D row is
    promoted to a one-row batch; anything whose trailing axis does not match
    ``dimensions`` raises ``error`` — including a zero-row 2-D batch, whose
    explicit wrong width is a schema bug worth surfacing immediately.  Only
    width-less empty input (``[]``, ``np.empty(0)``) is the ambiguous empty
    no-op.
    """
    rows = np.asarray(rows, dtype=float)
    if rows.ndim >= 2 and rows.shape[-1] != dimensions:
        raise error(
            f"expected rows with {dimensions} attributes, got {rows.shape[-1]}"
        )
    if rows.size == 0:
        return None
    rows = np.atleast_2d(rows)
    if rows.ndim != 2 or rows.shape[1] != dimensions:
        raise error(
            f"expected rows with {dimensions} attributes, got {rows.shape[-1]}"
        )
    return rows
