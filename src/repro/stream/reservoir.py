"""Reservoir sampling over insert streams.

Two samplers are provided:

* :class:`ReservoirSampler` — classical Vitter Algorithm R: a uniform sample
  of everything seen so far, with O(1) expected work per insert.
* :class:`DecayedReservoirSampler` — a biased reservoir in the spirit of
  Aggarwal's biased reservoir sampling: newer tuples are exponentially more
  likely to survive, so the sample tracks the *recent* distribution and the
  downstream estimator adapts to concept drift.

Both operate on fixed-width numeric rows (numpy arrays) because that is what
the table engine and the estimators exchange.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import InvalidParameterError

__all__ = ["ReservoirSampler", "DecayedReservoirSampler"]


class ReservoirSampler:
    """Uniform reservoir sample (Vitter's Algorithm R) of a row stream.

    Parameters
    ----------
    capacity:
        Maximum number of rows retained.
    dimensions:
        Number of attributes per row.
    seed:
        Seed of the replacement generator (reproducibility).
    """

    def __init__(self, capacity: int, dimensions: int, seed: int | None = 0) -> None:
        if capacity < 1:
            raise InvalidParameterError("reservoir capacity must be positive")
        if dimensions < 1:
            raise InvalidParameterError("dimensions must be positive")
        self.capacity = int(capacity)
        self.dimensions = int(dimensions)
        self._rng = np.random.default_rng(seed)
        self._rows = np.empty((capacity, dimensions))
        self._size = 0
        self._seen = 0

    @property
    def size(self) -> int:
        """Number of rows currently in the reservoir."""
        return self._size

    @property
    def seen(self) -> int:
        """Total number of rows offered to the reservoir."""
        return self._seen

    def insert(self, rows: np.ndarray) -> None:
        """Offer a batch of rows (``(batch, dimensions)``) to the reservoir."""
        rows = np.atleast_2d(np.asarray(rows, dtype=float))
        if rows.shape[1] != self.dimensions:
            raise InvalidParameterError(
                f"expected rows with {self.dimensions} attributes, got {rows.shape[1]}"
            )
        for row in rows:
            self._seen += 1
            if self._size < self.capacity:
                self._rows[self._size] = row
                self._size += 1
            else:
                slot = int(self._rng.integers(0, self._seen))
                if slot < self.capacity:
                    self._rows[slot] = row

    def sample(self) -> np.ndarray:
        """Return a copy of the current reservoir contents."""
        return self._rows[: self._size].copy()

    def reset(self) -> None:
        """Empty the reservoir and forget the stream position."""
        self._size = 0
        self._seen = 0


class DecayedReservoirSampler(ReservoirSampler):
    """Biased reservoir sample favouring recent rows.

    Each incoming row replaces a random slot with probability
    ``size / capacity`` (and always fills an empty slot), which yields an
    exponentially-biased sample whose expected age is ``O(capacity)`` rows —
    the standard biased-reservoir construction for evolving streams.
    """

    def insert(self, rows: np.ndarray) -> None:
        rows = np.atleast_2d(np.asarray(rows, dtype=float))
        if rows.shape[1] != self.dimensions:
            raise InvalidParameterError(
                f"expected rows with {self.dimensions} attributes, got {rows.shape[1]}"
            )
        for row in rows:
            self._seen += 1
            if self._size < self.capacity:
                self._rows[self._size] = row
                self._size += 1
                continue
            # Full reservoir: the new row always replaces a random victim,
            # which yields an exponentially age-biased sample with expected
            # retention of O(capacity) rows (Aggarwal's biased reservoir in
            # the saturated regime).
            victim = int(self._rng.integers(0, self.capacity))
            self._rows[victim] = row
