"""Reservoir sampling over insert streams.

Two samplers are provided:

* :class:`ReservoirSampler` — classical Vitter Algorithm R: a uniform sample
  of everything seen so far, with O(1) expected work per insert.
* :class:`DecayedReservoirSampler` — a biased reservoir in the spirit of
  Aggarwal's biased reservoir sampling: newer tuples are exponentially more
  likely to survive, so the sample tracks the *recent* distribution and the
  downstream estimator adapts to concept drift.

Both operate on fixed-width numeric rows (numpy arrays) because that is what
the table engine and the estimators exchange.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.stream.batches import normalize_batch

__all__ = ["ReservoirSampler", "DecayedReservoirSampler"]


class ReservoirSampler:
    """Uniform reservoir sample (Vitter's Algorithm R) of a row stream.

    Parameters
    ----------
    capacity:
        Maximum number of rows retained.
    dimensions:
        Number of attributes per row.
    seed:
        Seed of the replacement generator (reproducibility).
    """

    def __init__(self, capacity: int, dimensions: int, seed: int | None = 0) -> None:
        if capacity < 1:
            raise InvalidParameterError("reservoir capacity must be positive")
        if dimensions < 1:
            raise InvalidParameterError("dimensions must be positive")
        self.capacity = int(capacity)
        self.dimensions = int(dimensions)
        self._rng = np.random.default_rng(seed)
        self._rows = np.empty((capacity, dimensions))
        self._size = 0
        self._seen = 0

    @property
    def size(self) -> int:
        """Number of rows currently in the reservoir."""
        return self._size

    @property
    def seen(self) -> int:
        """Total number of rows offered to the reservoir."""
        return self._seen

    def insert(self, rows: np.ndarray) -> None:
        """Offer a batch of rows (``(batch, dimensions)``) to the reservoir.

        Vectorized Algorithm R: the fill phase is one slice write; the
        replacement phase draws one uniform variate per row (the stream
        position decides the bound), keeps the draws that land inside the
        reservoir and resolves collisions last-write-wins — exactly the state
        a per-row loop would leave.  One variate is consumed per replacement
        row in stream order, so bulk and row-at-a-time ingestion with the
        same seed produce identical reservoirs.  Empty batches are a no-op.
        """
        rows = normalize_batch(rows, self.dimensions)
        if rows is None:
            return
        fill = self._fill(rows)
        rest = rows[fill:]
        if rest.shape[0]:
            # Row at (0-based) stream position t replaces a uniform slot in
            # [0, t + 1) when the slot lands inside the reservoir.
            positions = self._seen + fill + np.arange(rest.shape[0])
            slots = np.floor(self._rng.random(rest.shape[0]) * (positions + 1)).astype(
                np.int64
            )
            self._apply_replacements(slots, rest, self.capacity)
        self._seen += rows.shape[0]

    def _fill(self, rows: np.ndarray) -> int:
        """Copy rows into empty slots; returns how many rows were consumed."""
        fill = min(self.capacity - self._size, rows.shape[0])
        if fill > 0:
            self._rows[self._size : self._size + fill] = rows[:fill]
            self._size += fill
        return max(fill, 0)

    def _apply_replacements(
        self, slots: np.ndarray, rows: np.ndarray, bound: int
    ) -> None:
        """Write ``rows`` into ``slots`` (< ``bound``), last write winning."""
        valid = slots < bound
        slots = slots[valid]
        rows = rows[valid]
        if slots.size == 0:
            return
        # np.unique returns first occurrences; reversing makes that the last
        # write per slot, matching sequential overwrite order.
        reversed_slots = slots[::-1]
        unique_slots, first = np.unique(reversed_slots, return_index=True)
        self._rows[unique_slots] = rows[::-1][first]

    def sample(self) -> np.ndarray:
        """Return a copy of the current reservoir contents."""
        return self._rows[: self._size].copy()

    def reset(self) -> None:
        """Empty the reservoir and forget the stream position."""
        self._size = 0
        self._seen = 0

    # -- persistence -----------------------------------------------------------
    def state_dict(self) -> dict:
        """Snapshot: retained rows, stream position and generator state.

        The generator state (a JSON-serialisable nested dict of plain ints)
        is included so a restored reservoir continues the stream with exactly
        the replacement decisions the original would have made.
        """
        return {
            "rows": self._rows[: self._size].copy(),
            "seen": int(self._seen),
            "rng_state": self._rng.bit_generator.state,
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (capacity must match)."""
        rows = np.asarray(state["rows"], dtype=float).reshape(-1, self.dimensions)
        if rows.shape[0] > self.capacity:
            raise InvalidParameterError(
                f"snapshot holds {rows.shape[0]} rows but capacity is {self.capacity}"
            )
        self._rows[: rows.shape[0]] = rows
        self._size = int(rows.shape[0])
        self._seen = int(state["seen"])
        rng_state = state.get("rng_state")
        if rng_state is not None:
            self._rng.bit_generator.state = rng_state


class DecayedReservoirSampler(ReservoirSampler):
    """Biased reservoir sample favouring recent rows.

    Each incoming row replaces a random slot with probability
    ``size / capacity`` (and always fills an empty slot), which yields an
    exponentially-biased sample whose expected age is ``O(capacity)`` rows —
    the standard biased-reservoir construction for evolving streams.
    """

    def insert(self, rows: np.ndarray) -> None:
        rows = normalize_batch(rows, self.dimensions)
        if rows is None:
            return
        fill = self._fill(rows)
        rest = rows[fill:]
        if rest.shape[0]:
            # Full reservoir: every new row replaces a uniform random victim,
            # which yields an exponentially age-biased sample with expected
            # retention of O(capacity) rows (Aggarwal's biased reservoir in
            # the saturated regime).  One variate per row, last write wins.
            victims = np.floor(
                self._rng.random(rest.shape[0]) * self.capacity
            ).astype(np.int64)
            self._apply_replacements(victims, rest, self.capacity)
        self._seen += rows.shape[0]
