"""The drift-adaptive expert-ensemble estimator.

:class:`EnsembleEstimator` serves a weighted pool of heterogeneous synopses
drawn from the registry behind the full
:class:`~repro.core.estimator.SelectivityEstimator` contract:

* ``estimate_batch`` is the weight-normalised convex combination of each
  expert's vectorized batch — one ``estimate_batch`` pass per expert, so
  every expert keeps its own query fast path;
* ``insert``/``flush`` route to the streaming-capable experts (static
  experts go stale on drift — which is exactly what the weights then
  punish);
* ``observe(queries, truths)`` is the feedback entry point driving the
  AddExp lifecycle (see :mod:`repro.ensemble.experts`): multiplicative
  weight decay on observed relative error, new-expert spawn at ``gamma`` of
  total weight on sustained ensemble error, weakest/oldest pruning to the
  ``max_experts`` budget.  ``feedback(query, truth)`` is one-observation
  sugar, so :class:`~repro.core.feedback.FeedbackAdaptiveEstimator`-style
  execution logs can drive it unchanged;
* snapshots carry the complete lifecycle — weights, per-expert states
  (namespaced ``e{i}::`` in one flat archive), spawn history and the pool's
  RNG state — so a restored ensemble is bitwise the live one.

Sharding: the ensemble does not state-merge (its experts may not), so
``ShardedEstimator(ensemble_config, ...)`` serves it through the weighted
combine fallback; all merge flags stay ``False``.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro.core.errors import (
    DimensionMismatchError,
    InvalidParameterError,
    StreamError,
)
from repro.core.estimator import (
    FLOAT_BYTES,
    FeedbackEstimator,
    StreamingEstimator,
    estimator_from_config,
    register_estimator,
)
from repro.core.resolve import resolve_estimator
from repro.ensemble.experts import ExpertPool, WeightedExpert
from repro.ensemble.policy import WeightPolicy, create_policy
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imported for type annotations only (avoids a package cycle)
    from repro.engine.table import Table
from repro.workload.queries import CompiledQueries, RangeQuery, compile_queries

__all__ = ["EnsembleEstimator", "DEFAULT_EXPERTS"]

#: Relative-error denominator floor — matches the deviation flooring used by
#: the shard-tolerance suite, so tiny selectivities don't dominate losses.
_LOSS_FLOOR = 0.05

#: Minimum buffered rows before a spawned (non-streaming) expert is fitted.
_SPAWN_MIN_ROWS = 32

#: The default expert pool: complementary synopsis families at a small
#: budget — a smooth density model, a skew-robust histogram, an adaptive
#: streaming kernel model and a decayed sample.
DEFAULT_EXPERTS: tuple[dict[str, Any], ...] = (
    {"name": "kde", "sample_size": 256},
    {"name": "equidepth", "buckets": 64},
    {"name": "streaming_ade", "max_kernels": 128},
    {"name": "reservoir_sampling", "sample_size": 256, "decay": True},
)


@register_estimator("ensemble")
class EnsembleEstimator(StreamingEstimator, FeedbackEstimator):
    """AddExp-weighted pool of registry experts with a spawn/prune lifecycle.

    Parameters
    ----------
    experts:
        Sequence of expert specifications — estimator instances, registry
        names or ``{"name": ..., **params}`` config mappings (resolved
        through :func:`~repro.core.resolve.resolve_estimator`, so nested
        wrappers round-trip).  Defaults to :data:`DEFAULT_EXPERTS`.
    policy:
        Weighting policy name (``"addexp"`` / ``"windowed"`` / ``"pinned"``)
        or a :class:`~repro.ensemble.policy.WeightPolicy` instance.
    beta:
        AddExp decay base in ``(0, 1)``: a weight is multiplied by
        ``beta ** loss`` per feedback round.
    gamma:
        Fraction of the total weight a newly spawned expert receives.
    max_experts:
        Pool budget; a spawn beyond it prunes first.
    spawn_threshold:
        Windowed ensemble loss above which a spawn is requested.
    spawn_cooldown:
        Minimum feedback rounds between spawns.
    prune:
        Eviction rule at the budget: ``"weakest"`` or ``"oldest"``.
    buffer_rows:
        Rows of recent data retained for fitting spawned experts.
    seed:
        Seed of the lifecycle RNG (spawned-expert seeds derive from it).
    """

    name = "ensemble"

    def __init__(
        self,
        experts: Sequence["Any"] | None = None,
        policy: "str | WeightPolicy" = "addexp",
        beta: float = 0.5,
        gamma: float = 0.1,
        max_experts: int = 8,
        spawn_threshold: float = 0.35,
        spawn_cooldown: int = 5,
        prune: str = "weakest",
        buffer_rows: int = 4096,
        seed: int | None = 0,
    ) -> None:
        super().__init__()
        if buffer_rows < 0:
            raise InvalidParameterError("buffer_rows must be non-negative")
        specs = list(experts) if experts is not None else [dict(s) for s in DEFAULT_EXPERTS]
        if not specs:
            raise InvalidParameterError("the ensemble needs at least one expert")
        resolved = [resolve_estimator(spec, what="expert") for spec in specs]
        for expert in resolved:
            if isinstance(expert, EnsembleEstimator):
                raise InvalidParameterError("ensembles cannot be nested")
        self._expert_specs: list[dict[str, Any]] = [e.config() for e in resolved]
        self._policy = create_policy(policy)
        self.buffer_rows = int(buffer_rows)
        self.seed = seed
        self._pool = ExpertPool(
            self._policy,
            beta=beta,
            gamma=gamma,
            max_experts=max_experts,
            spawn_threshold=spawn_threshold,
            spawn_cooldown=spawn_cooldown,
            prune=prune,
            seed=seed,
        )
        self._pool.reset(resolved)
        self._buffer = np.empty((0, 0))

    # -- introspection -----------------------------------------------------------
    @property
    def experts(self) -> tuple[WeightedExpert, ...]:
        """The weighted pool members (treat as immutable on the read path)."""
        return tuple(self._pool.experts)

    @property
    def weights(self) -> np.ndarray:
        """Current normalised expert weights."""
        return self._pool.weight_vector()

    @property
    def spawn_history(self) -> list[dict[str, Any]]:
        """One record per spawned expert (round and registry name)."""
        return list(self._pool.spawn_history)

    @property
    def feedback_rounds(self) -> int:
        """Number of ``observe`` rounds applied."""
        return self._pool.round

    def expert_summary(self) -> list[dict[str, Any]]:
        """Per-expert weight/age/error introspection (JSON-serialisable).

        Kept separate from :meth:`describe` — describe is pinned to
        ``config() + DESCRIBE_METADATA_KEYS`` by the registry-wide contract.
        """
        return [
            {
                "expert": expert.estimator.name,
                "weight": float(expert.weight),
                "born": int(expert.born),
                "rounds": int(expert.rounds),
                "loss_ewma": float(expert.loss_ewma),
            }
            for expert in self._pool.experts
        ]

    # -- lifecycle ---------------------------------------------------------------
    def fit(
        self, table: "Table", columns: Sequence[str] | None = None
    ) -> "EnsembleEstimator":
        columns = self._resolve_columns(table, columns)
        estimators = [estimator_from_config(spec) for spec in self._expert_specs]
        for estimator in estimators:
            estimator.fit(table, columns)
        self._pool.reset(estimators)
        matrix = np.asarray(table.columns(columns), dtype=float)
        keep = min(self.buffer_rows, matrix.shape[0])
        self._buffer = matrix[matrix.shape[0] - keep :].copy()
        self._mark_fitted(columns, table.row_count)
        return self

    def start(self, columns: Sequence[str]) -> "EnsembleEstimator":
        """Begin streaming from empty state (requires startable experts)."""
        columns = list(columns)
        estimators = [estimator_from_config(spec) for spec in self._expert_specs]
        for estimator in estimators:
            if not hasattr(estimator, "start"):
                raise StreamError(
                    f"expert {estimator.name!r} cannot start from an empty "
                    "stream; use fit() or drop it from the pool"
                )
        for estimator in estimators:
            estimator.start(list(columns))
        self._pool.reset(estimators)
        self._buffer = np.empty((0, len(columns)))
        self._mark_fitted(columns, 0)
        return self

    def memory_bytes(self) -> int:
        self._require_fitted()
        expert_bytes = sum(
            e.estimator.memory_bytes() for e in self._pool.experts
        )
        pool_floats = 4 * len(self._pool.experts)
        return int(expert_bytes + pool_floats * FLOAT_BYTES + self._buffer.nbytes)

    # -- streaming maintenance -----------------------------------------------------
    def insert(self, rows: np.ndarray) -> None:
        """Fold a batch into every streaming-capable expert.

        Static experts keep their fitted state and drift out of date — the
        weight updates then shift mass to the experts that kept up.
        """
        self._require_fitted()
        rows = np.atleast_2d(np.asarray(rows, dtype=float))
        if rows.size == 0:
            return
        if rows.shape[1] != len(self._columns):
            raise DimensionMismatchError(
                f"insert rows have {rows.shape[1]} attributes, expected "
                f"{len(self._columns)}"
            )
        streaming = [
            e.estimator
            for e in self._pool.experts
            if isinstance(e.estimator, StreamingEstimator)
        ]
        if not streaming:
            raise StreamError(
                "no expert in the pool is a streaming synopsis; rebuild with "
                "fit() instead"
            )
        for estimator in streaming:
            estimator.insert(rows)
        if self.buffer_rows:
            self._buffer = np.vstack([self._buffer, rows])[-self.buffer_rows :]
        self._row_count += rows.shape[0]

    def flush(self) -> None:
        """Flush every streaming expert's pending ingestion buffer."""
        for expert in self._pool.experts:
            if isinstance(expert.estimator, StreamingEstimator):
                expert.estimator.flush()

    # -- estimation ------------------------------------------------------------------
    def _estimate_batch(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        plan = CompiledQueries(self._columns, lows, highs)
        estimates = np.stack(
            [e.estimator.estimate_batch(plan) for e in self._pool.experts]
        )
        weights = self._pool.weight_vector()
        total = weights.sum()
        if total <= 0.0:
            return estimates.mean(axis=0)
        return (weights[:, None] * estimates).sum(axis=0) / total

    # -- feedback ------------------------------------------------------------------
    def observe(
        self,
        queries: Sequence[RangeQuery] | CompiledQueries,
        true_fractions: Sequence[float] | np.ndarray,
    ) -> None:
        """Apply one feedback round of ``(query, true_selectivity)`` pairs.

        Each expert's loss is its mean relative error over the round (floored
        denominators, clipped at 1); the policy decays weights, and sustained
        ensemble error triggers the spawn/prune lifecycle.
        """
        self._require_fitted()
        plan = compile_queries(queries, self._columns)
        truths = np.asarray(true_fractions, dtype=float).reshape(-1)
        if truths.shape[0] != len(plan):
            raise InvalidParameterError(
                f"{truths.shape[0]} true selectivities for {len(plan)} queries"
            )
        if len(plan) == 0:
            return
        if np.any((truths < 0.0) | (truths > 1.0)):
            raise InvalidParameterError("true fractions must lie in [0, 1]")
        estimates = np.stack(
            [e.estimator.estimate_batch(plan) for e in self._pool.experts]
        )
        weights = self._pool.weight_vector()
        combined = (weights[:, None] * estimates).sum(axis=0) / max(
            weights.sum(), 1e-300
        )
        denom = np.maximum(truths, _LOSS_FLOOR)
        losses = np.clip(np.abs(estimates - truths[None, :]) / denom, 0.0, 1.0)
        ensemble_loss = float(
            np.clip(np.abs(combined - truths) / denom, 0.0, 1.0).mean()
        )
        should_spawn = self._pool.observe(losses.mean(axis=1), ensemble_loss)
        if should_spawn:
            self._spawn_expert()

    def feedback(self, query: RangeQuery, true_fraction: float) -> None:
        """One-observation sugar over :meth:`observe`."""
        if not 0.0 <= true_fraction <= 1.0:
            raise InvalidParameterError("true_fraction must lie in [0, 1]")
        self.observe([query], [true_fraction])

    def _spawn_expert(self) -> None:
        """Fit a fresh expert on the recent-row buffer and admit it."""
        spec = self._pool.next_spawn_spec(self._expert_specs)
        estimator = estimator_from_config(spec)
        if isinstance(estimator, StreamingEstimator) and hasattr(estimator, "start"):
            estimator.start(list(self._columns))
            if self._buffer.shape[0]:
                estimator.insert(self._buffer)
                estimator.flush()
        elif self._buffer.shape[0] >= _SPAWN_MIN_ROWS:
            from repro.engine.table import Table  # lazy: avoids a package cycle

            recent = Table(
                "ensemble::spawn",
                {
                    column: self._buffer[:, i].copy()
                    for i, column in enumerate(self._columns)
                },
            )
            estimator.fit(recent, list(self._columns))
        else:
            return  # not enough recent data to fit a static expert — skip
        self._pool.admit(estimator, spec)

    # -- configuration & persistence ---------------------------------------------------
    def _config_params(self) -> dict[str, Any]:
        return {
            "experts": [dict(spec) for spec in self._expert_specs],
            "policy": self._policy.config(),
            "beta": self._pool.beta,
            "gamma": self._pool.gamma,
            "max_experts": self._pool.max_experts,
            "spawn_threshold": self._pool.spawn_threshold,
            "spawn_cooldown": self._pool.spawn_cooldown,
            "prune": self._pool.prune,
            "buffer_rows": self.buffer_rows,
            "seed": self.seed,
        }

    def _state(self) -> tuple[dict[str, np.ndarray], dict[str, Any]]:
        """Pool lifecycle plus every expert's snapshot, namespaced ``e{i}::``."""
        arrays: dict[str, np.ndarray] = {
            "weights": self._pool.weight_vector(),
            "born": np.array([e.born for e in self._pool.experts], dtype=np.int64),
            "rounds": np.array(
                [e.rounds for e in self._pool.experts], dtype=np.int64
            ),
            "loss_ewma": np.array(
                [e.loss_ewma for e in self._pool.experts], dtype=float
            ),
            "buffer": np.asarray(self._buffer, dtype=float),
        }
        expert_headers: list[dict[str, Any]] = []
        for i, expert in enumerate(self._pool.experts):
            state = expert.estimator.state_dict()
            for key, value in state.pop("arrays").items():
                arrays[f"e{i}::{key}"] = value
            expert_headers.append(state)
        meta = {"experts": expert_headers, "pool": self._pool.meta()}
        return arrays, meta

    def _restore_state(
        self, arrays: Mapping[str, np.ndarray], meta: Mapping[str, Any]
    ) -> None:
        weights = np.asarray(arrays["weights"], dtype=float).reshape(-1)
        born = np.asarray(arrays["born"]).reshape(-1)
        rounds = np.asarray(arrays["rounds"]).reshape(-1)
        loss_ewma = np.asarray(arrays["loss_ewma"], dtype=float).reshape(-1)
        experts: list[WeightedExpert] = []
        for i, header in enumerate(meta["experts"]):
            prefix = f"e{i}::"
            expert_arrays = {
                key[len(prefix):]: value
                for key, value in arrays.items()
                if key.startswith(prefix)
            }
            estimator = estimator_from_config(
                {"name": header["estimator"], **header.get("config", {})}
            )
            estimator.load_state({**header, "arrays": expert_arrays})
            expert = WeightedExpert(
                estimator, weight=float(weights[i]), born=int(born[i])
            )
            expert.rounds = int(rounds[i])
            expert.loss_ewma = float(loss_ewma[i])
            experts.append(expert)
        self._pool.experts = experts
        self._pool.load_meta(dict(meta["pool"]))
        dims = max(len(self._columns), 1)
        self._buffer = np.asarray(arrays["buffer"], dtype=float).reshape(-1, dims)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "fitted" if self._fitted else "unfitted"
        members = ", ".join(e.estimator.name for e in self._pool.experts)
        return f"EnsembleEstimator([{members}], {status})"
