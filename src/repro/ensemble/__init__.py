"""Drift-adaptive expert-ensemble subsystem (AddExp-weighted estimator pool)."""

from repro.ensemble.ensemble import DEFAULT_EXPERTS, EnsembleEstimator
from repro.ensemble.experts import ExpertPool, WeightedExpert
from repro.ensemble.policy import (
    AddExpPolicy,
    PinnedPolicy,
    WeightPolicy,
    WindowedErrorPolicy,
    available_policies,
    create_policy,
    register_policy,
)

__all__ = [
    "EnsembleEstimator",
    "DEFAULT_EXPERTS",
    "ExpertPool",
    "WeightedExpert",
    "WeightPolicy",
    "AddExpPolicy",
    "WindowedErrorPolicy",
    "PinnedPolicy",
    "register_policy",
    "create_policy",
    "available_policies",
]
