"""Weighted experts and the deterministic pool lifecycle.

:class:`WeightedExpert` pairs one synopsis with its ensemble weight and the
per-expert error bookkeeping the policies consult.  :class:`ExpertPool`
implements the AddExp lifecycle around a list of such experts:

* **weight decay** — each feedback round maps observed per-expert losses to
  new weights through a :class:`~repro.ensemble.policy.WeightPolicy` and
  renormalises;
* **spawn** — when the *ensemble's* exponentially windowed loss stays above
  ``spawn_threshold`` (and the cooldown since the last spawn has elapsed),
  the pool requests a new expert, admitted at ``gamma`` of the total weight;
* **prune** — before a spawn would exceed ``max_experts``, the ``weakest``
  (lowest-weight) or ``oldest`` (earliest-born) expert is evicted.

Everything is deterministic and seedable: the only randomness is the pool's
own generator, used to derive seeds for spawned experts, and its full
bit-generator state travels in snapshots so a restored ensemble spawns the
same experts a live one would have.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.core.estimator import SelectivityEstimator
from repro.ensemble.policy import WeightPolicy

__all__ = ["WeightedExpert", "ExpertPool"]

#: Smoothing factor of the per-expert and ensemble loss EWMAs.
LOSS_ALPHA = 0.3

#: Weights are floored here before renormalisation so a long-bad expert can
#: recover after a drift back instead of being frozen at exactly zero.
_WEIGHT_FLOOR = 1e-12


class WeightedExpert:
    """One pool member: a synopsis, its weight and its error bookkeeping."""

    __slots__ = ("estimator", "weight", "born", "loss_ewma", "rounds")

    def __init__(
        self, estimator: SelectivityEstimator, weight: float = 1.0, born: int = 0
    ) -> None:
        self.estimator = estimator
        self.weight = float(weight)
        self.born = int(born)
        self.loss_ewma = 0.0
        self.rounds = 0

    def record_loss(self, loss: float) -> None:
        """Fold one round's mean loss into the expert's windowed error."""
        self.rounds += 1
        if self.rounds == 1:
            self.loss_ewma = float(loss)
        else:
            self.loss_ewma = (1.0 - LOSS_ALPHA) * self.loss_ewma + LOSS_ALPHA * float(
                loss
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WeightedExpert({self.estimator.name!r}, weight={self.weight:.4f}, "
            f"born={self.born})"
        )


class ExpertPool:
    """Deterministic AddExp spawn/decay/prune lifecycle over weighted experts."""

    def __init__(
        self,
        policy: WeightPolicy,
        beta: float,
        gamma: float,
        max_experts: int,
        spawn_threshold: float,
        spawn_cooldown: int,
        prune: str,
        seed: int | None = 0,
    ) -> None:
        if not 0.0 < beta < 1.0:
            raise InvalidParameterError("beta must lie strictly inside (0, 1)")
        if not 0.0 < gamma < 1.0:
            raise InvalidParameterError("gamma must lie strictly inside (0, 1)")
        if max_experts < 1:
            raise InvalidParameterError("max_experts must be positive")
        if spawn_threshold <= 0.0:
            raise InvalidParameterError("spawn_threshold must be positive")
        if spawn_cooldown < 1:
            raise InvalidParameterError("spawn_cooldown must be positive")
        if prune not in ("weakest", "oldest"):
            raise InvalidParameterError("prune must be 'weakest' or 'oldest'")
        self.policy = policy
        self.beta = float(beta)
        self.gamma = float(gamma)
        self.max_experts = int(max_experts)
        self.spawn_threshold = float(spawn_threshold)
        self.spawn_cooldown = int(spawn_cooldown)
        self.prune = prune
        self.seed = seed
        self.experts: list[WeightedExpert] = []
        self.spawn_history: list[dict[str, Any]] = []
        self.round = 0
        self.last_spawn_round = 0
        self.spawn_cursor = 0
        self.ensemble_loss_ewma = 0.0
        self._rng = np.random.default_rng(seed)

    # -- lifecycle -------------------------------------------------------------
    def reset(self, estimators: Sequence[SelectivityEstimator]) -> None:
        """Start a fresh lifecycle over ``estimators`` with uniform weights."""
        self.experts = [WeightedExpert(est, weight=1.0) for est in estimators]
        self._normalize()
        self.spawn_history = []
        self.round = 0
        self.last_spawn_round = 0
        self.spawn_cursor = 0
        self.ensemble_loss_ewma = 0.0
        self._rng = np.random.default_rng(self.seed)

    def weight_vector(self) -> np.ndarray:
        """Current (normalised) expert weights."""
        return np.array([e.weight for e in self.experts], dtype=float)

    def _normalize(self) -> None:
        total = sum(e.weight for e in self.experts)
        if total <= 0.0:
            uniform = 1.0 / max(len(self.experts), 1)
            for expert in self.experts:
                expert.weight = uniform
            return
        for expert in self.experts:
            expert.weight /= total

    # -- one feedback round ----------------------------------------------------
    def observe(self, losses: np.ndarray, ensemble_loss: float) -> bool:
        """Apply one round of losses; return whether a spawn is warranted.

        ``losses`` holds each expert's mean loss for the round (aligned with
        ``self.experts``); ``ensemble_loss`` is the combined estimate's loss,
        which drives the spawn decision — a new expert is requested only when
        the *ensemble as a whole* keeps erring, not when one member does.
        """
        losses = np.asarray(losses, dtype=float)
        if losses.shape != (len(self.experts),):
            raise InvalidParameterError(
                f"{losses.shape[0] if losses.ndim else 0} losses for "
                f"{len(self.experts)} experts"
            )
        self.round += 1
        for expert, loss in zip(self.experts, losses):
            expert.record_loss(float(loss))
        updated = self.policy.update(self.experts, losses, self.beta)
        updated = np.maximum(np.asarray(updated, dtype=float), _WEIGHT_FLOOR)
        for expert, weight in zip(self.experts, updated):
            expert.weight = float(weight)
        self._normalize()
        if self.round == 1:
            self.ensemble_loss_ewma = float(ensemble_loss)
        else:
            self.ensemble_loss_ewma = (
                1.0 - LOSS_ALPHA
            ) * self.ensemble_loss_ewma + LOSS_ALPHA * float(ensemble_loss)
        return (
            self.ensemble_loss_ewma > self.spawn_threshold
            and self.round - self.last_spawn_round >= self.spawn_cooldown
        )

    # -- spawn / prune ----------------------------------------------------------
    def next_spawn_spec(self, specs: Sequence[dict[str, Any]]) -> dict[str, Any]:
        """The next spawn recipe: cycle the spec list, reseed seedable ones.

        The derived seed comes from the pool's own generator, so the sequence
        of spawned experts is a pure function of the pool seed and the
        feedback stream — and survives snapshot round-trips via the persisted
        generator state.
        """
        if not specs:
            raise InvalidParameterError("the pool has no spawn specs")
        spec = dict(specs[self.spawn_cursor % len(specs)])
        self.spawn_cursor += 1
        if "seed" in spec:
            spec["seed"] = int(self._rng.integers(1, 2**31 - 1))
        return spec

    def admit(self, estimator: SelectivityEstimator, spec: dict[str, Any]) -> None:
        """Prune to budget, then admit ``estimator`` at ``gamma`` total weight."""
        while len(self.experts) >= self.max_experts:
            self._prune_one()
        total = sum(e.weight for e in self.experts)
        newcomer = WeightedExpert(
            estimator, weight=self.gamma * max(total, _WEIGHT_FLOOR), born=self.round
        )
        self.experts.append(newcomer)
        self._normalize()
        self.last_spawn_round = self.round
        self.spawn_history.append(
            {"round": self.round, "expert": str(spec.get("name", "?"))}
        )

    def _prune_one(self) -> None:
        if len(self.experts) <= 1:
            return
        if self.prune == "weakest":
            victim = int(np.argmin([e.weight for e in self.experts]))
        else:  # oldest
            victim = int(np.argmin([e.born for e in self.experts]))
        del self.experts[victim]
        self._normalize()

    # -- persistence helpers -----------------------------------------------------
    def meta(self) -> dict[str, Any]:
        """JSON-serialisable lifecycle state (expert weights travel as arrays)."""
        return {
            "round": self.round,
            "last_spawn_round": self.last_spawn_round,
            "spawn_cursor": self.spawn_cursor,
            "ensemble_loss_ewma": self.ensemble_loss_ewma,
            "spawn_history": list(self.spawn_history),
            "rng_state": self._rng.bit_generator.state,
        }

    def load_meta(self, meta: dict[str, Any]) -> None:
        """Inverse of :meth:`meta`."""
        self.round = int(meta["round"])
        self.last_spawn_round = int(meta["last_spawn_round"])
        self.spawn_cursor = int(meta["spawn_cursor"])
        self.ensemble_loss_ewma = float(meta["ensemble_loss_ewma"])
        self.spawn_history = [dict(entry) for entry in meta["spawn_history"]]
        self._rng = np.random.default_rng(self.seed)
        self._rng.bit_generator.state = meta["rng_state"]
