"""Pluggable weighting/pruning policies for the expert ensemble.

A policy turns one round of observed per-expert losses into new expert
weights.  The policies are *stateless* — the error history they consult
(per-expert loss EWMAs) lives on the :class:`~repro.ensemble.experts.WeightedExpert`
records, so a policy survives snapshot round-trips for free.

Three policies ship with the library:

``"addexp"``
    Kolter & Maloof's AddExp update: each expert's weight is multiplied by
    ``beta ** loss`` per round, so persistent error decays a weight
    geometrically while an accurate expert keeps its mass.  This is the
    policy with the known mistake bound (it requires ``beta + 2*gamma < 1``
    relative to the spawn fraction ``gamma``).
``"windowed"``
    Weights proportional to the inverse of each expert's exponentially
    windowed mean loss — a smoother, loss-magnitude-aware alternative that
    forgets old mistakes at the window rate.
``"pinned"``
    A static baseline that never moves weights: the ensemble collapses to a
    fixed uniform (or hand-set) mixture, useful as the control arm in drift
    experiments.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Mapping, Sequence

import numpy as np

from repro.core.errors import InvalidParameterError

if TYPE_CHECKING:  # imported for type annotations only
    from repro.ensemble.experts import WeightedExpert

__all__ = [
    "WeightPolicy",
    "AddExpPolicy",
    "WindowedErrorPolicy",
    "PinnedPolicy",
    "register_policy",
    "create_policy",
    "available_policies",
]


class WeightPolicy:
    """Base class: maps one round of losses to updated expert weights."""

    name = "policy"

    def update(
        self, experts: Sequence["WeightedExpert"], losses: np.ndarray, beta: float
    ) -> np.ndarray:
        """New (unnormalised) weights given this round's per-expert losses."""
        raise NotImplementedError

    def config(self) -> dict:
        """Reconstruction recipe (mirrors the estimator convention)."""
        return {"name": self.name}


class AddExpPolicy(WeightPolicy):
    """Multiplicative AddExp update: ``w_i *= beta ** loss_i``.

    ``share`` adds the fixed-share mixing step of Herbster & Warmuth: after
    the multiplicative decay, every expert receives ``share / n`` of the
    total mass back.  With ``share = 0`` (the default, plain AddExp) a
    long-dominant expert drives the others' weights to the floor and the
    ensemble degenerates to its single best member; a small positive share
    keeps each expert warm enough to take over within a few rounds when the
    drift phase changes — the switching-regret fix the mixed-drift benchmark
    relies on.
    """

    name = "addexp"

    def __init__(self, share: float = 0.0) -> None:
        if not 0.0 <= share < 1.0:
            raise InvalidParameterError("share must lie in [0, 1)")
        self.share = float(share)

    def update(self, experts, losses, beta) -> np.ndarray:
        weights = np.array([e.weight for e in experts], dtype=float)
        updated = weights * np.power(beta, np.clip(losses, 0.0, 1.0))
        if self.share > 0.0 and len(updated):
            updated = (1.0 - self.share) * updated + self.share * (
                updated.sum() / len(updated)
            )
        return updated

    def config(self) -> dict:
        return {"name": self.name, "share": self.share}


class WindowedErrorPolicy(WeightPolicy):
    """Weights inversely proportional to the windowed mean loss."""

    name = "windowed"

    def update(self, experts, losses, beta) -> np.ndarray:
        # ``loss_ewma`` is maintained by the pool before the policy runs, so
        # the window already reflects this round.
        ewma = np.array([e.loss_ewma for e in experts], dtype=float)
        return 1.0 / (ewma + 1e-3)


class PinnedPolicy(WeightPolicy):
    """Static control arm: weights never move."""

    name = "pinned"

    def update(self, experts, losses, beta) -> np.ndarray:
        return np.array([e.weight for e in experts], dtype=float)


_POLICIES: dict[str, Callable[[], WeightPolicy]] = {}


def register_policy(name: str, factory: Callable[[], WeightPolicy] | None = None):
    """Register a weighting policy under ``name`` (usable as a decorator)."""

    def _register(target: Callable[[], WeightPolicy]):
        if name in _POLICIES:
            raise InvalidParameterError(f"policy name {name!r} is already registered")
        _POLICIES[name] = target
        return target

    if factory is not None:
        return _register(factory)
    return _register


def create_policy(spec: "str | Mapping | WeightPolicy") -> WeightPolicy:
    """Instantiate a policy from a name or ``{"name": ..., **kwargs}`` mapping.

    Instances pass through unchanged, so callers can hand-construct a policy
    with non-default parameters; mappings are what :meth:`WeightPolicy.config`
    emits, so ensemble configs round-trip policy parameters faithfully.
    """
    if isinstance(spec, WeightPolicy):
        return spec
    if isinstance(spec, Mapping):
        options = dict(spec)
        name = options.pop("name", None)
        if not isinstance(name, str):
            raise InvalidParameterError("policy mapping requires a 'name' string")
        return _policy_factory(name)(**options)
    return _policy_factory(spec)()


def _policy_factory(name: str) -> Callable[..., WeightPolicy]:
    try:
        return _POLICIES[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown policy {name!r}; available: {sorted(_POLICIES)}"
        ) from None


def available_policies() -> list[str]:
    """Names of all registered weighting policies."""
    return sorted(_POLICIES)


register_policy("addexp", AddExpPolicy)
register_policy("windowed", WindowedErrorPolicy)
register_policy("pinned", PinnedPolicy)
