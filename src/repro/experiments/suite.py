"""The reconstructed evaluation suite: one callable per table and figure.

Every function regenerates one table or figure of the evaluation described in
DESIGN.md and returns a :class:`~repro.experiments.runner.TableResult` or
:class:`~repro.experiments.runner.SeriesResult`.  The benchmark modules under
``benchmarks/`` call these functions (scaled down via their keyword
arguments) and print the rendered output; EXPERIMENTS.md records a full-scale
run.

Experiment index
----------------
========  ====================================================================
table1    1-D accuracy of all estimators at equal space budget
table2    multi-dimensional accuracy (d = 2, 3, 4)
table3    build / estimation cost and memory footprint
table4    streaming maintenance cost vs. model budget
fig1      error vs. space budget
fig2      error vs. dimensionality
fig3      error vs. query volume (selectivity class)
fig4      error vs. data skew (Zipf exponent)
fig5      streaming adaptivity under concept drift
fig6      query-feedback convergence
fig7      bandwidth-selection ablation
fig8      optimizer impact (plan regret)
========  ====================================================================
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

import numpy as np

from repro.baselines.histogram import EquiDepthHistogram, EquiWidthHistogram
from repro.baselines.independence import IndependenceEstimator
from repro.baselines.multidim import GridHistogram
from repro.baselines.sampling import ReservoirSamplingEstimator, SamplingEstimator
from repro.baselines.stholes import SelfTuningHistogram
from repro.baselines.wavelet import WaveletHistogram
from repro.core.adaptive import AdaptiveKDEEstimator
from repro.core.estimator import FLOAT_BYTES, SelectivityEstimator
from repro.core.feedback import FeedbackAdaptiveEstimator
from repro.core.kde import KDESelectivityEstimator
from repro.core.streaming import StreamingADE
from repro.data.generators import (
    correlated_table,
    gaussian_mixture_table,
    uniform_table,
    zipf_table,
)
from repro.data.streams import sudden_drift_stream
from repro.engine.catalog import Catalog
from repro.engine.executor import evaluate_estimator
from repro.ensemble import EnsembleEstimator
from repro.engine.optimizer import JoinSpec, Optimizer, plan_regret
from repro.engine.table import Table
from repro.experiments.runner import (
    EstimatorSpec,
    SeriesResult,
    TableResult,
    extra_estimator_specs,
    fit_or_restore,
)
from repro.metrics.errors import integrated_squared_error
from repro.workload.generators import SkewedWorkload, UniformWorkload
from repro.workload.queries import Interval, RangeQuery

__all__ = [
    "table1_accuracy_1d",
    "table2_accuracy_multid",
    "table3_cost",
    "table4_stream_cost",
    "fig1_budget_sweep",
    "fig2_dimensionality",
    "fig3_query_volume",
    "fig4_skew",
    "fig5_drift",
    "fig6_feedback",
    "fig7_bandwidth_ablation",
    "fig8_optimizer_impact",
    "EXPERIMENTS",
    "run_experiment",
]


# ---------------------------------------------------------------------------
# Budget-matched estimator configurations
# ---------------------------------------------------------------------------

def _budgeted_specs(budget_bytes: int, dimensions: int) -> list[EstimatorSpec]:
    """The standard estimator line-up, each configured to ≈ ``budget_bytes``.

    Space accounting (see each estimator's ``memory_bytes``):

    * KDE-family synopses store ``dimensions + 1`` floats per sample point
      (coordinates + weight) plus a handful of parameters.
    * histograms store 2 floats per bucket and per attribute,
    * the grid stores one float per cell,
    * the wavelet synopsis stores 2 floats per kept coefficient per attribute,
    * samples store ``dimensions`` floats per row.
    """
    budget_floats = max(budget_bytes // FLOAT_BYTES, 8)
    kde_points = max(budget_floats // (dimensions + 2), 4)
    sample_rows = max(budget_floats // dimensions, 4)
    buckets = max(budget_floats // (4 * dimensions), 4)
    coefficients = max(budget_floats // (2 * dimensions) // 2, 2)
    kernels = max(budget_floats // (2 * dimensions + 1), 4)
    # CLI --estimator overlay: opted-in registry estimators ride along with
    # default configurations (no budget matching — their rows are labelled by
    # registry name, so the comparison is explicit, not silent).
    extras = extra_estimator_specs()
    return [
        EstimatorSpec(
            "ade_adaptive",
            lambda n=kde_points: AdaptiveKDEEstimator(sample_size=n, bandwidth_rule="lscv"),
        ),
        EstimatorSpec(
            "ade_streaming",
            lambda k=kernels: StreamingADE(max_kernels=k),
        ),
        EstimatorSpec(
            "kde_fixed",
            lambda n=kde_points: KDESelectivityEstimator(sample_size=n),
        ),
        EstimatorSpec("equiwidth", lambda b=buckets: EquiWidthHistogram(buckets=b)),
        EstimatorSpec("equidepth", lambda b=buckets: EquiDepthHistogram(buckets=b)),
        EstimatorSpec(
            "wavelet", lambda c=coefficients: WaveletHistogram(resolution=512, coefficients=c)
        ),
        EstimatorSpec("sampling", lambda n=sample_rows: SamplingEstimator(sample_size=n)),
        EstimatorSpec(
            "grid", lambda b=budget_bytes: GridHistogram(budget_bytes=b)
        ),
        EstimatorSpec("independence", lambda: IndependenceEstimator()),
        *extras,
    ]


def _error_row(label: str, result) -> list[object]:
    summaries = result.summaries()
    return [
        label,
        summaries["relative"].mean,
        summaries["relative"].median,
        summaries["q"].mean,
        summaries["q"].p95,
        int(result.memory_bytes),
    ]


_ACCURACY_HEADERS = ["estimator", "rel_err_mean", "rel_err_median", "q_err_mean", "q_err_p95", "bytes"]


# ---------------------------------------------------------------------------
# Table 1 — 1-D accuracy
# ---------------------------------------------------------------------------

def table1_accuracy_1d(
    rows: int = 50_000,
    queries: int = 400,
    budget_bytes: int = 4096,
    seed: int = 0,
) -> TableResult:
    """Accuracy of every estimator on three 1-D data distributions."""
    datasets = {
        "uniform": uniform_table(rows, dimensions=1, seed=seed),
        "gaussian_mixture": gaussian_mixture_table(
            rows, dimensions=1, components=4, separation=4.0, seed=seed
        ),
        "zipf": zipf_table(rows, dimensions=1, theta=1.2, seed=seed),
    }
    result = TableResult(
        "Table 1: 1-D accuracy at equal space budget",
        ["dataset", *_ACCURACY_HEADERS],
        [],
        notes=f"{rows} rows, {queries} range queries per dataset, budget ≈ {budget_bytes} bytes",
    )
    for dataset_name, table in datasets.items():
        workload = UniformWorkload(table, volume_fraction=0.05, seed=seed + 1).generate(queries)
        for spec in _budgeted_specs(budget_bytes, dimensions=1):
            estimator = fit_or_restore(table, spec, scope=f"table1.{dataset_name}")
            evaluation = evaluate_estimator(table, estimator, workload, name=spec.label)
            result.rows.append([dataset_name, *_error_row(spec.label, evaluation)])
    return result


# ---------------------------------------------------------------------------
# Table 2 — multi-dimensional accuracy
# ---------------------------------------------------------------------------

def table2_accuracy_multid(
    rows: int = 40_000,
    queries: int = 300,
    budget_bytes: int = 8192,
    dimensions: Sequence[int] = (2, 3, 4),
    seed: int = 0,
) -> TableResult:
    """Accuracy on correlated multi-dimensional data for d = 2, 3, 4."""
    result = TableResult(
        "Table 2: multi-dimensional accuracy at equal space budget",
        ["dimensions", *_ACCURACY_HEADERS],
        [],
        notes=f"{rows} rows of correlated Gaussian data, {queries} queries per d, "
        f"budget ≈ {budget_bytes} bytes",
    )
    for d in dimensions:
        table = correlated_table(rows, dimensions=d, correlation=0.8, seed=seed)
        workload = UniformWorkload(table, volume_fraction=0.25, seed=seed + 1).generate(queries)
        for spec in _budgeted_specs(budget_bytes, dimensions=d):
            estimator = fit_or_restore(table, spec, scope=f"table2.d{d}")
            evaluation = evaluate_estimator(table, estimator, workload, name=spec.label)
            result.rows.append([d, *_error_row(spec.label, evaluation)])
    return result


# ---------------------------------------------------------------------------
# Table 3 — construction / estimation cost
# ---------------------------------------------------------------------------

def table3_cost(
    rows: int = 100_000,
    queries: int = 200,
    budget_bytes: int = 8192,
    dimensions: int = 3,
    seed: int = 0,
) -> TableResult:
    """Build time, estimation throughput and memory of every estimator."""
    table = gaussian_mixture_table(rows, dimensions=dimensions, components=5, seed=seed)
    workload = UniformWorkload(table, volume_fraction=0.2, seed=seed + 1).generate(queries)
    result = TableResult(
        "Table 3: construction and estimation cost",
        ["estimator", "build_seconds", "queries_per_second", "bytes", "rel_err_mean"],
        [],
        notes=f"{rows} rows, d={dimensions}, {queries} queries",
    )
    for spec in _budgeted_specs(budget_bytes, dimensions=dimensions):
        estimator = spec.build()
        start = time.perf_counter()
        estimator.fit(table)
        build_seconds = time.perf_counter() - start
        evaluation = evaluate_estimator(table, estimator, workload, name=spec.label)
        result.rows.append(
            [
                spec.label,
                build_seconds,
                evaluation.queries_per_second,
                int(evaluation.memory_bytes),
                evaluation.mean_relative_error(),
            ]
        )
    return result


# ---------------------------------------------------------------------------
# Table 4 — streaming maintenance cost
# ---------------------------------------------------------------------------

def table4_stream_cost(
    stream_rows: int = 50_000,
    batch_size: int = 1000,
    budgets: Sequence[int] = (64, 128, 256, 512),
    queries: int = 100,
    seed: int = 0,
) -> TableResult:
    """Per-tuple maintenance cost and memory of the streaming synopses."""
    batches = max(stream_rows // batch_size, 1)
    stream = sudden_drift_stream(
        dimensions=2, batch_size=batch_size, batches=batches, drift_at=(0.5,), seed=seed
    )
    data = stream.materialize()
    table = Table.from_array("stream", data, stream.column_names)
    workload = UniformWorkload(table, volume_fraction=0.2, seed=seed + 1).generate(queries)

    result = TableResult(
        "Table 4: streaming maintenance cost vs. model budget",
        ["estimator", "budget", "tuples_per_second", "bytes", "rel_err_mean"],
        [],
        notes=f"{data.shape[0]} streamed tuples, d=2",
    )

    def run(label: str, estimator, budget: int) -> None:
        estimator.start(stream.column_names)
        start = time.perf_counter()
        for batch in stream:
            estimator.insert(batch)
        # Buffered ingestion work is maintenance cost: bill it here, not to
        # the estimation phase below.
        estimator.flush()
        elapsed = time.perf_counter() - start
        evaluation = evaluate_estimator(table, estimator, workload, name=label)
        result.rows.append(
            [
                label,
                budget,
                data.shape[0] / max(elapsed, 1e-9),
                int(estimator.memory_bytes()),
                evaluation.mean_relative_error(),
            ]
        )

    for budget in budgets:
        run("ade_streaming", StreamingADE(max_kernels=budget), budget)
        run("reservoir_sampling", ReservoirSamplingEstimator(sample_size=budget), budget)
    return result


# ---------------------------------------------------------------------------
# Fig. 1 — error vs. space budget
# ---------------------------------------------------------------------------

def fig1_budget_sweep(
    rows: int = 40_000,
    queries: int = 300,
    budgets: Sequence[int] = (512, 1024, 2048, 4096, 8192, 16384),
    seed: int = 0,
) -> SeriesResult:
    """Mean relative error of every estimator as the space budget grows (2-D data)."""
    table = gaussian_mixture_table(rows, dimensions=2, components=4, separation=4.0, seed=seed)
    workload = UniformWorkload(table, volume_fraction=0.15, seed=seed + 1).generate(queries)
    result = SeriesResult(
        "Fig. 1: error vs. space budget (2-D gaussian mixture)",
        "budget_bytes",
        list(budgets),
        notes=f"{rows} rows, {queries} queries; mean relative error",
    )
    for budget in budgets:
        for spec in _budgeted_specs(budget, dimensions=2):
            estimator = fit_or_restore(table, spec, scope=f"fig1.b{budget}")
            evaluation = evaluate_estimator(table, estimator, workload, name=spec.label)
            result.add_point(spec.label, evaluation.mean_relative_error())
    return result


# ---------------------------------------------------------------------------
# Fig. 2 — error vs. dimensionality
# ---------------------------------------------------------------------------

def fig2_dimensionality(
    rows: int = 30_000,
    queries: int = 200,
    budget_bytes: int = 8192,
    max_dimensions: int = 5,
    seed: int = 0,
) -> SeriesResult:
    """Error growth with dimensionality at a fixed space budget."""
    labels = ["ade_adaptive", "ade_streaming", "grid", "equidepth", "sampling", "independence"]
    result = SeriesResult(
        "Fig. 2: error vs. dimensionality (correlated data)",
        "dimensions",
        list(range(1, max_dimensions + 1)),
        notes=f"{rows} rows, correlation 0.8, budget ≈ {budget_bytes} bytes; mean relative error",
    )
    for d in range(1, max_dimensions + 1):
        if d == 1:
            table = gaussian_mixture_table(rows, dimensions=1, components=3, seed=seed)
        else:
            table = correlated_table(rows, dimensions=d, correlation=0.8, seed=seed)
        workload = UniformWorkload(table, volume_fraction=0.3, seed=seed + 1).generate(queries)
        specs = {s.label: s for s in _budgeted_specs(budget_bytes, dimensions=d)}
        for label in labels:
            estimator = fit_or_restore(table, specs[label], scope=f"fig2.d{d}")
            evaluation = evaluate_estimator(table, estimator, workload, name=label)
            result.add_point(label, evaluation.mean_relative_error())
    return result


# ---------------------------------------------------------------------------
# Fig. 3 — error vs. query volume
# ---------------------------------------------------------------------------

def fig3_query_volume(
    rows: int = 40_000,
    queries: int = 200,
    budget_bytes: int = 4096,
    volumes: Sequence[float] = (0.001, 0.005, 0.02, 0.05, 0.1, 0.2),
    seed: int = 0,
) -> SeriesResult:
    """Error as a function of the queried volume (selectivity class), 2-D data."""
    table = gaussian_mixture_table(rows, dimensions=2, components=4, separation=4.0, seed=seed)
    labels = ["ade_adaptive", "ade_streaming", "equidepth", "sampling", "grid"]
    result = SeriesResult(
        "Fig. 3: error vs. query volume (2-D gaussian mixture)",
        "volume_fraction",
        list(volumes),
        notes=f"{rows} rows, {queries} data-centred queries per volume class; mean q-error",
    )
    specs = {s.label: s for s in _budgeted_specs(budget_bytes, dimensions=2)}
    fitted: dict[str, SelectivityEstimator] = {}
    for label in labels:
        fitted[label] = fit_or_restore(table, specs[label], scope="fig3")
    for volume in volumes:
        workload = UniformWorkload(
            table, volume_fraction=volume, seed=seed + 1
        ).generate(queries)
        for label in labels:
            evaluation = evaluate_estimator(table, fitted[label], workload, name=label)
            result.add_point(label, evaluation.mean_q_error())
    return result


# ---------------------------------------------------------------------------
# Fig. 4 — error vs. data skew
# ---------------------------------------------------------------------------

def fig4_skew(
    rows: int = 40_000,
    queries: int = 300,
    budget_bytes: int = 4096,
    thetas: Sequence[float] = (0.0, 0.5, 1.0, 1.5, 2.0),
    seed: int = 0,
) -> SeriesResult:
    """Error as the Zipf skew of a 1-D attribute grows."""
    labels = ["ade_adaptive", "ade_streaming", "kde_fixed", "equiwidth", "equidepth", "sampling"]
    result = SeriesResult(
        "Fig. 4: error vs. data skew (1-D Zipf)",
        "zipf_theta",
        list(thetas),
        notes=f"{rows} rows, {queries} queries per skew level; mean q-error",
    )
    for theta in thetas:
        table = zipf_table(rows, dimensions=1, theta=theta, seed=seed)
        workload = UniformWorkload(table, volume_fraction=0.02, seed=seed + 1).generate(queries)
        specs = {s.label: s for s in _budgeted_specs(budget_bytes, dimensions=1)}
        for label in labels:
            estimator = fit_or_restore(table, specs[label], scope=f"fig4.theta{theta}")
            evaluation = evaluate_estimator(table, estimator, workload, name=label)
            result.add_point(label, evaluation.mean_q_error())
    return result


# ---------------------------------------------------------------------------
# Fig. 5 — streaming adaptivity under drift
# ---------------------------------------------------------------------------

def fig5_drift(
    batches: int = 60,
    batch_size: int = 500,
    queries: int = 60,
    budget: int = 256,
    reference_window: int = 4000,
    evaluate_every: int = 5,
    seed: int = 0,
) -> SeriesResult:
    """Error over time under sudden drift: adaptive vs. static synopses.

    Ground truth at each evaluation point is computed from a sliding window of
    the most recent ``reference_window`` tuples — the distribution a query
    arriving *now* actually sees.
    """
    stream = sudden_drift_stream(
        dimensions=1, batch_size=batch_size, batches=batches, drift_at=(0.5,), shift=10.0, seed=seed
    )
    columns = stream.column_names

    # Decay chosen so the model's memory half-life matches the reference
    # window: what the model represents is what the evaluation compares against.
    adaptive = StreamingADE(max_kernels=budget, decay=0.5 ** (1.0 / reference_window))
    landmark = StreamingADE(max_kernels=budget, decay=1.0)
    decayed_sample = ReservoirSamplingEstimator(sample_size=budget, decay=True)
    uniform_sample = ReservoirSamplingEstimator(sample_size=budget, decay=False)
    # The drift-adaptive ensemble holds one expert per adaptation speed and
    # reweights them from the same evaluation feedback the figure reports —
    # it should track whichever expert the current drift phase favours.
    ensemble = EnsembleEstimator(
        experts=[
            {
                "name": "streaming_ade",
                "max_kernels": budget,
                "decay": 0.5 ** (1.0 / reference_window),
            },
            {"name": "streaming_ade", "max_kernels": budget, "decay": 1.0},
            {"name": "reservoir_sampling", "sample_size": budget, "decay": True},
        ],
        seed=seed,
    )
    ensemble.start(columns)
    for estimator in (adaptive, landmark, decayed_sample, uniform_sample):
        estimator.start(columns)
    static: KDESelectivityEstimator | None = None

    result = SeriesResult(
        "Fig. 5: streaming adaptivity under sudden drift (1-D)",
        "batch",
        [],
        notes=(
            f"{batches} batches of {batch_size} tuples, drift at batch {batches // 2}; "
            f"mean relative error against the last {reference_window} tuples"
        ),
    )
    window_rows: list[np.ndarray] = []
    rng = np.random.default_rng(seed + 7)

    for index, batch in enumerate(stream):
        for estimator in (adaptive, landmark, decayed_sample, uniform_sample, ensemble):
            estimator.insert(batch)
        window_rows.append(batch)
        recent = np.vstack(window_rows)[-reference_window:]
        if static is None and (index + 1) * batch_size >= reference_window:
            # The static synopsis is built once, from the pre-drift data only.
            static = KDESelectivityEstimator(sample_size=budget)
            static.fit(Table.from_array("static", recent, columns))
        if index % evaluate_every != 0 or static is None:
            continue
        reference = Table.from_array("reference", recent, columns)
        workload = UniformWorkload(
            reference, volume_fraction=0.1, seed=int(rng.integers(0, 2**31))
        ).generate(queries)
        result.x_values.append(index)
        for label, estimator in (
            ("ade_decayed", adaptive),
            ("ade_landmark", landmark),
            ("reservoir_decayed", decayed_sample),
            ("reservoir_uniform", uniform_sample),
            ("static_kde", static),
            ("ensemble", ensemble),
        ):
            evaluation = evaluate_estimator(reference, estimator, workload, name=label)
            result.add_point(label, evaluation.mean_relative_error())
        # Feedback strictly *after* this evaluation point: the ensemble is
        # scored on the same footing as the other synopses, then learns.
        ensemble.observe(workload, reference.true_selectivities(workload))
    return result


# ---------------------------------------------------------------------------
# Fig. 6 — query-feedback convergence
# ---------------------------------------------------------------------------

def fig6_feedback(
    rows: int = 30_000,
    feedback_steps: Sequence[int] = (0, 25, 50, 100, 200, 400),
    holdout_queries: int = 150,
    seed: int = 0,
) -> SeriesResult:
    """Error on a hot workload region as feedback observations accumulate."""
    table = gaussian_mixture_table(rows, dimensions=2, components=4, separation=4.0, seed=seed)
    hot = SkewedWorkload(
        table, volume_fraction=0.1, hot_fraction=0.25, hot_probability=0.95, seed=seed + 1
    )
    feedback_queries = hot.generate(max(feedback_steps))
    holdout = SkewedWorkload(
        table, volume_fraction=0.1, hot_fraction=0.25, hot_probability=0.95, seed=seed + 2
    ).generate(holdout_queries)

    feedback_ade = FeedbackAdaptiveEstimator(
        base=KDESelectivityEstimator(sample_size=256), max_regions=512
    )
    feedback_ade.fit(table)
    st_histogram = SelfTuningHistogram(cells_per_dim=12, learning_rate=0.5)
    st_histogram.fit(table)
    static_base = KDESelectivityEstimator(sample_size=256)
    static_base.fit(table)

    result = SeriesResult(
        "Fig. 6: query-feedback convergence (hot-region workload)",
        "feedback_queries",
        list(feedback_steps),
        notes=f"{rows} rows, 2-D; mean q-error on a {holdout_queries}-query hold-out workload",
    )
    # Ground truth for the whole feedback stream in one vectorized scan; the
    # feedback loop itself stays sequential (each observation must be applied
    # before the next estimate).
    feedback_truths = table.true_selectivities(feedback_queries)
    applied = 0
    for step in feedback_steps:
        while applied < step:
            query = feedback_queries[applied]
            truth = float(feedback_truths[applied])
            feedback_ade.feedback(query, truth)
            st_histogram.feedback(query, truth)
            applied += 1
        for label, estimator in (
            ("feedback_ade", feedback_ade),
            ("st_histogram", st_histogram),
            ("static_kde", static_base),
        ):
            evaluation = evaluate_estimator(table, estimator, holdout, name=label)
            result.add_point(label, evaluation.mean_q_error())
    return result


# ---------------------------------------------------------------------------
# Fig. 7 — bandwidth-selection ablation
# ---------------------------------------------------------------------------

def fig7_bandwidth_ablation(
    rows: int = 20_000,
    queries: int = 300,
    sample_size: int = 512,
    seed: int = 0,
) -> TableResult:
    """Rule-of-thumb vs. cross-validated vs. adaptive bandwidths (1-D mixture).

    Reports both range-selectivity error and the integrated squared error of
    the density itself (the generating mixture is known analytically).
    """
    components = 4
    separation = 4.0
    table = gaussian_mixture_table(
        rows, dimensions=1, components=components, separation=separation, seed=seed
    )
    workload = UniformWorkload(table, volume_fraction=0.05, seed=seed + 1).generate(queries)

    values = table.column("x0")
    grid = np.linspace(float(values.min()), float(values.max()), 512)
    grid_step = float(grid[1] - grid[0])
    histogram_density, _ = np.histogram(values, bins=512, range=(grid[0], grid[-1]), density=True)

    configurations: list[tuple[str, Callable[[], KDESelectivityEstimator]]] = [
        ("scott", lambda: KDESelectivityEstimator(sample_size=sample_size, bandwidth_rule="scott")),
        (
            "silverman",
            lambda: KDESelectivityEstimator(sample_size=sample_size, bandwidth_rule="silverman"),
        ),
        ("lscv", lambda: KDESelectivityEstimator(sample_size=sample_size, bandwidth_rule="lscv")),
        ("mlcv", lambda: KDESelectivityEstimator(sample_size=sample_size, bandwidth_rule="mlcv")),
        (
            "adaptive_scott",
            lambda: AdaptiveKDEEstimator(sample_size=sample_size, bandwidth_rule="scott"),
        ),
        (
            "adaptive_lscv",
            lambda: AdaptiveKDEEstimator(sample_size=sample_size, bandwidth_rule="lscv"),
        ),
    ]
    result = TableResult(
        "Fig. 7: bandwidth-selection ablation (1-D gaussian mixture)",
        ["rule", "bandwidth", "rel_err_mean", "q_err_mean", "density_ise"],
        [],
        notes=f"{rows} rows, sample={sample_size}, {queries} queries; ISE against an "
        "empirical fine-grained histogram of the data",
    )
    for label, build in configurations:
        estimator = build()
        estimator.fit(table)
        evaluation = evaluate_estimator(table, estimator, workload, name=label)
        density = estimator.density(grid.reshape(-1, 1))
        ise = integrated_squared_error(density, histogram_density, grid_step)
        result.rows.append(
            [
                label,
                float(estimator.bandwidths[0]),
                evaluation.mean_relative_error(),
                evaluation.mean_q_error(),
                ise,
            ]
        )
    return result


# ---------------------------------------------------------------------------
# Fig. 8 — optimizer impact
# ---------------------------------------------------------------------------

def fig8_optimizer_impact(
    fact_rows: int = 60_000,
    dimension_rows: int = 8_000,
    trials: int = 20,
    seed: int = 0,
) -> TableResult:
    """Join-order quality (plan regret) under different selectivity estimators.

    A three-table star schema is optimized with exhaustive left-deep
    enumeration; the only thing that differs between rows of the table is the
    synopsis used for the local range predicates.
    """
    rng = np.random.default_rng(seed)
    fact = gaussian_mixture_table(
        fact_rows, dimensions=2, components=5, separation=4.0, seed=seed, name="fact",
        column_names=["amount", "quantity"],
    )
    customers = zipf_table(
        dimension_rows, dimensions=1, theta=1.1, seed=seed + 1, name="customers",
        column_names=["age"],
    )
    products = correlated_table(
        dimension_rows, dimensions=2, correlation=0.7, seed=seed + 2, name="products",
        column_names=["price", "weight"],
    )

    estimator_factories: dict[str, Callable[[], SelectivityEstimator]] = {
        "true_selectivity": lambda: None,  # type: ignore[return-value]
        "ade_adaptive": lambda: AdaptiveKDEEstimator(sample_size=512, bandwidth_rule="lscv"),
        "equidepth": lambda: EquiDepthHistogram(buckets=32),
        "independence": lambda: IndependenceEstimator(),
    }

    result = TableResult(
        "Fig. 8: optimizer impact (three-table star join)",
        ["estimator", "mean_plan_regret", "max_plan_regret", "optimal_plan_rate"],
        [],
        notes=f"{trials} random filter combinations; regret = true cost of chosen plan / "
        "true cost of optimal plan",
    )

    # Pre-generate the per-trial filters so every estimator sees the same queries.
    specs = []
    for _ in range(trials):
        filters = {
            "fact": _random_filter(fact, ["amount"], rng, volume=0.2),
            "customers": _random_filter(customers, ["age"], rng, volume=0.15),
            "products": _random_filter(products, ["price"], rng, volume=0.25),
        }
        join_selectivities = {
            frozenset(("fact", "customers")): 1.0 / dimension_rows,
            frozenset(("fact", "products")): 1.0 / dimension_rows,
            frozenset(("customers", "products")): 1.0,
        }
        specs.append(
            JoinSpec(("fact", "customers", "products"), filters, join_selectivities)
        )

    for label, factory in estimator_factories.items():
        catalog = Catalog()
        for table in (fact, customers, products):
            catalog.add_table(table)
            if label != "true_selectivity":
                catalog.attach_estimator(table.name, factory())
        optimizer = Optimizer(catalog)
        regrets = [plan_regret(optimizer, spec) for spec in specs]
        optimal_rate = float(np.mean([r <= 1.0 + 1e-9 for r in regrets]))
        result.rows.append([label, float(np.mean(regrets)), float(np.max(regrets)), optimal_rate])
    return result


def _random_filter(
    table: Table, columns: Sequence[str], rng: np.random.Generator, volume: float
) -> RangeQuery:
    """A random range predicate covering roughly ``volume`` of each column's domain."""
    constraints = {}
    domain = table.domain(columns)
    for column in columns:
        low, high = domain[column]
        width = (high - low) * volume
        center = rng.uniform(low, high)
        constraints[column] = Interval(center - width / 2.0, center + width / 2.0)
    return RangeQuery(constraints)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

EXPERIMENTS: dict[str, Callable[..., TableResult | SeriesResult]] = {
    "table1": table1_accuracy_1d,
    "table2": table2_accuracy_multid,
    "table3": table3_cost,
    "table4": table4_stream_cost,
    "fig1": fig1_budget_sweep,
    "fig2": fig2_dimensionality,
    "fig3": fig3_query_volume,
    "fig4": fig4_skew,
    "fig5": fig5_drift,
    "fig6": fig6_feedback,
    "fig7": fig7_bandwidth_ablation,
    "fig8": fig8_optimizer_impact,
}


def run_experiment(name: str, **kwargs: object) -> TableResult | SeriesResult:
    """Run one experiment by id (``table1`` … ``fig8``) with optional overrides."""
    if name not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[name](**kwargs)  # type: ignore[arg-type]
