"""Command-line entry point for the experiment suite.

Run one experiment (or all of them) from the shell::

    python -m repro.experiments table1
    python -m repro.experiments fig5 --batches 60 --batch_size 500
    python -m repro.experiments all

Unknown ``--name value`` pairs are forwarded to the experiment function as
keyword arguments; values are parsed as int, then float, then left as strings,
and comma-separated values become tuples (e.g. ``--budgets 1024,4096``).

Model persistence: ``--save-models DIR`` publishes every estimator fitted by
the accuracy experiments into a versioned model store under ``DIR``, and
``--from-store DIR`` restores published models instead of refitting (models
missing from the store are fitted fresh).  Both flags must precede the
experiment name::

    python -m repro.experiments --save-models models/ table1
    python -m repro.experiments --from-store models/ table1

Sharded estimation: ``--shards N`` (optionally with ``--partitioner``)
runs every accuracy-experiment estimator as an ``N``-shard partition-wise
front end (experiments that exercise streaming/feedback-specific paths keep
their monolithic estimators)::

    python -m repro.experiments --shards 4 --partitioner range table1

Telemetry: ``--telemetry PATH`` installs a process-default metrics registry
for the run (every model store, shard executor and estimator server built by
the experiments records into it, and the query fast path counts its
culled-vs-dense routing), times each experiment into
``experiments.run_seconds{experiment=...}``, and exports the final snapshot
to ``PATH`` through the exporter matching its suffix (``.json`` /
``.jsonl``)::

    python -m repro.experiments --telemetry runs/table1.jsonl table1

``--collect-interval SECONDS`` (with ``--telemetry``) additionally runs a
background :class:`~repro.obs.collector.TelemetryCollector` over the run's
registry, turning the snapshot into delta/rate time series; the series is
exported next to the snapshot as ``<PATH stem>.series<PATH suffix>``.
``--dashboard HTML_PATH`` renders the collected series (or, without a
collector, a single end-of-run sample) as a self-contained HTML dashboard::

    python -m repro.experiments --telemetry runs/t1.csv \
        --collect-interval 0.5 --dashboard runs/t1.html table1
"""

from __future__ import annotations

import argparse
import sys
from contextlib import nullcontext
from typing import Sequence

from repro.experiments.runner import use_estimators, use_model_store, use_sharding
from repro.experiments.suite import EXPERIMENTS, run_experiment
from repro.persist.store import ModelStore


def _parse_scalar(text: str) -> object:
    for converter in (int, float):
        try:
            return converter(text)
        except ValueError:
            continue
    return text


def _parse_value(text: str) -> object:
    if "," in text:
        return tuple(_parse_scalar(part) for part in text.split(",") if part)
    return _parse_scalar(text)


def _parse_overrides(pairs: Sequence[str]) -> dict[str, object]:
    overrides: dict[str, object] = {}
    key: str | None = None
    for token in pairs:
        if token.startswith("--"):
            if key is not None:
                raise SystemExit(f"missing value for --{key}")
            key = token[2:]
        else:
            if key is None:
                raise SystemExit(f"unexpected argument {token!r}")
            overrides[key] = _parse_value(token)
            key = None
    if key is not None:
        raise SystemExit(f"missing value for --{key}")
    return overrides


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate one table/figure of the evaluation (or 'all').",
    )
    parser.add_argument(
        "--save-models",
        metavar="DIR",
        help="publish every fitted estimator into a model store under DIR",
    )
    parser.add_argument(
        "--from-store",
        metavar="DIR",
        help="restore published models from the store under DIR instead of refitting",
    )
    parser.add_argument(
        "--shards",
        type=int,
        metavar="N",
        help="run every accuracy-experiment estimator as an N-shard sharded "
        "front end (partition-wise fit and estimation)",
    )
    parser.add_argument(
        "--partitioner",
        choices=["hash", "range", "round_robin"],
        default="hash",
        help="row-routing policy used with --shards (default: hash)",
    )
    parser.add_argument(
        "--estimator",
        action="append",
        metavar="NAME",
        default=[],
        help="append a registry estimator (default configuration) to every "
        "accuracy-experiment line-up, e.g. --estimator ensemble; repeatable",
    )
    parser.add_argument(
        "--telemetry",
        metavar="PATH",
        help="record run telemetry into a metrics registry and export the "
        "snapshot to PATH (exporter chosen by suffix: .json / .jsonl / .csv)",
    )
    parser.add_argument(
        "--collect-interval",
        type=float,
        metavar="SECONDS",
        help="with --telemetry: sample the registry every SECONDS on a "
        "background collector and export the delta/rate series next to the "
        "snapshot (as '<stem>.series<suffix>')",
    )
    parser.add_argument(
        "--dashboard",
        metavar="HTML_PATH",
        help="with --telemetry: render the collected series as a "
        "self-contained HTML dashboard at HTML_PATH",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment id (table1..table4, fig1..fig8) or 'all'",
    )
    parser.add_argument(
        "overrides",
        nargs=argparse.REMAINDER,
        help="optional --parameter value overrides forwarded to the experiment",
    )
    args = parser.parse_args(argv)
    overrides = _parse_overrides(args.overrides)

    store_dir = args.save_models or args.from_store
    if args.save_models and args.from_store and args.save_models != args.from_store:
        raise SystemExit("--save-models and --from-store must name the same directory")
    context = (
        use_model_store(
            ModelStore(store_dir),
            save=bool(args.save_models),
            load=bool(args.from_store),
        )
        if store_dir
        else nullcontext()
    )

    sharding = (
        use_sharding(args.shards, args.partitioner) if args.shards else nullcontext()
    )

    if args.estimator:
        from repro.core.estimator import available_estimators

        unknown = [n for n in args.estimator if n not in available_estimators()]
        if unknown:
            raise SystemExit(
                f"unknown estimator(s) {unknown}; available: {available_estimators()}"
            )
    extra = use_estimators(args.estimator) if args.estimator else nullcontext()

    if (args.collect_interval or args.dashboard) and not args.telemetry:
        raise SystemExit("--collect-interval and --dashboard require --telemetry")
    if args.collect_interval is not None and args.collect_interval <= 0:
        raise SystemExit("--collect-interval must be positive")

    if args.telemetry:
        from repro.core.fastpath import set_route_metrics
        from repro.obs.collector import TelemetryCollector
        from repro.obs.export import exporter_for_path
        from repro.obs.metrics import MetricsRegistry, use_default_metrics

        registry = MetricsRegistry()
        telemetry = use_default_metrics(registry)
        collector = TelemetryCollector(
            registry, interval=args.collect_interval or 1.0
        )
    else:
        registry = None
        collector = None
        telemetry = nullcontext()

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    with context, sharding, extra, telemetry:
        if registry is not None:
            set_route_metrics(registry)
        if collector is not None and args.collect_interval:
            collector.start()
        elif collector is not None and args.dashboard:
            collector.tick()  # baseline: the end-of-run tick diffs against this
        try:
            for name in names:
                timer = (
                    registry.timer("experiments.run_seconds", experiment=name)
                    if registry is not None
                    else nullcontext()
                )
                with timer:
                    result = run_experiment(
                        name, **(overrides if args.experiment != "all" else {})
                    )
                print(result.render())
                print()
        finally:
            if collector is not None and args.collect_interval:
                collector.stop()
            elif collector is not None and args.dashboard:
                collector.tick()  # one end-of-run sample for the dashboard
            if registry is not None:
                set_route_metrics(None)
    if registry is not None:
        import pathlib

        path = exporter_for_path(args.telemetry).export(registry.snapshot(), args.telemetry)
        print(f"telemetry snapshot written to {path}")
        if args.collect_interval:
            target = pathlib.Path(args.telemetry)
            series_path = target.with_name(f"{target.stem}.series{target.suffix}")
            exporter_for_path(series_path).export(
                collector.series_payload(), series_path
            )
            print(f"telemetry series written to {series_path}")
        if args.dashboard:
            from repro.obs.dashboard import write_dashboard

            html = write_dashboard(collector, args.dashboard)
            print(f"telemetry dashboard written to {html}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the shell
    sys.exit(main())
