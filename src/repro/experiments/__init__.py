"""Experiment harness: one callable per table and figure of the evaluation."""

from repro.experiments.runner import (
    EstimatorSpec,
    SeriesResult,
    TableResult,
    fit_timed,
    run_accuracy_comparison,
)
from repro.experiments.suite import (
    EXPERIMENTS,
    fig1_budget_sweep,
    fig2_dimensionality,
    fig3_query_volume,
    fig4_skew,
    fig5_drift,
    fig6_feedback,
    fig7_bandwidth_ablation,
    fig8_optimizer_impact,
    run_experiment,
    table1_accuracy_1d,
    table2_accuracy_multid,
    table3_cost,
    table4_stream_cost,
)

__all__ = [
    "EstimatorSpec",
    "TableResult",
    "SeriesResult",
    "fit_timed",
    "run_accuracy_comparison",
    "EXPERIMENTS",
    "run_experiment",
    "table1_accuracy_1d",
    "table2_accuracy_multid",
    "table3_cost",
    "table4_stream_cost",
    "fig1_budget_sweep",
    "fig2_dimensionality",
    "fig3_query_volume",
    "fig4_skew",
    "fig5_drift",
    "fig6_feedback",
    "fig7_bandwidth_ablation",
    "fig8_optimizer_impact",
]
