"""Shared experiment machinery.

Every experiment in :mod:`repro.experiments.suite` is a composition of the
same few steps: build a dataset, build a workload, fit a set of estimators,
evaluate them against exact answers, and aggregate errors.  This module holds
those steps so each experiment reads as configuration plus a loop.

Results are returned as :class:`TableResult` / :class:`SeriesResult`, plain
data structures that the benchmark harness renders with
:func:`repro.metrics.report.render_table` / ``render_series`` and that tests
can assert against directly.
"""

from __future__ import annotations

import re
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping, Sequence

import numpy as np

from repro.core.errors import PersistenceError
from repro.core.estimator import SelectivityEstimator
from repro.engine.executor import EvaluationResult, evaluate_estimator
from repro.engine.table import Table
from repro.metrics.report import render_series, render_table
from repro.persist.store import ModelStore
from repro.workload.queries import RangeQuery

__all__ = [
    "EstimatorSpec",
    "TableResult",
    "SeriesResult",
    "extra_estimator_specs",
    "fit_timed",
    "fit_or_restore",
    "run_accuracy_comparison",
    "use_estimators",
    "use_model_store",
    "use_sharding",
]


@dataclass(frozen=True)
class EstimatorSpec:
    """A named estimator configuration used by an experiment.

    ``factory`` builds a fresh, unfitted estimator; experiments never reuse a
    fitted estimator across datasets.
    """

    label: str
    factory: Callable[[], SelectivityEstimator]

    def build(self) -> SelectivityEstimator:
        """Instantiate a fresh estimator."""
        return self.factory()


@dataclass
class TableResult:
    """A table of the evaluation: headers plus one row per configuration."""

    experiment: str
    headers: list[str]
    rows: list[list[object]]
    notes: str = ""

    def render(self, precision: int = 4) -> str:
        """Plain-text rendering of the table."""
        text = render_table(self.headers, self.rows, title=self.experiment, precision=precision)
        if self.notes:
            text += f"\n\n{self.notes}"
        return text

    def column(self, name: str) -> list[object]:
        """Values of one column by header name."""
        index = self.headers.index(name)
        return [row[index] for row in self.rows]

    def row_by(self, key_column: str, key_value: object) -> list[object] | None:
        """First row whose ``key_column`` equals ``key_value``."""
        index = self.headers.index(key_column)
        for row in self.rows:
            if row[index] == key_value:
                return list(row)
        return None


@dataclass
class SeriesResult:
    """A figure of the evaluation: x values plus one named series per line."""

    experiment: str
    x_label: str
    x_values: list[object]
    series: dict[str, list[float]] = field(default_factory=dict)
    notes: str = ""

    def render(self, precision: int = 4) -> str:
        """Plain-text rendering of the figure data."""
        text = render_series(
            self.x_label, self.x_values, self.series, title=self.experiment, precision=precision
        )
        if self.notes:
            text += f"\n\n{self.notes}"
        return text

    def add_point(self, series_name: str, value: float) -> None:
        """Append one y value to a named series (created on first use)."""
        self.series.setdefault(series_name, []).append(float(value))


# ---------------------------------------------------------------------------
# Model-store integration (the CLI's --save-models / --from-store flags)
# ---------------------------------------------------------------------------

#: Active (store, save, load) triple set by :func:`use_model_store`.
_ACTIVE_STORE: tuple[ModelStore | None, bool, bool] = (None, False, False)


@contextmanager
def use_model_store(
    store: ModelStore, *, save: bool = False, load: bool = False
) -> Iterator[ModelStore]:
    """Route experiment estimators through a model store for this context.

    With ``save=True`` every estimator fitted by
    :func:`run_accuracy_comparison` is published to ``store`` under
    ``<table>.<label>`` after fitting; with ``load=True`` a published model of
    that name is restored *instead of* fitting (falling back to a fresh fit
    when the store has no such model).  This is what the experiment CLI's
    ``--save-models`` / ``--from-store`` flags activate.
    """
    global _ACTIVE_STORE
    previous = _ACTIVE_STORE
    _ACTIVE_STORE = (store, bool(save), bool(load))
    try:
        yield store
    finally:
        _ACTIVE_STORE = previous


#: Active sharding overlay set by :func:`use_sharding` (None = monolithic).
_ACTIVE_SHARDING: tuple[int, str] | None = None


@contextmanager
def use_sharding(shards: int, partitioner: str = "hash") -> Iterator[None]:
    """Run every experiment estimator as a sharded front end in this context.

    Inside the context, :func:`fit_or_restore` wraps each spec's estimator in
    a :class:`~repro.shard.sharded.ShardedEstimator` with the given shard
    count and routing policy before fitting — this is what the experiment
    CLI's ``--shards N --partitioner {hash,range}`` flags activate, so every
    table/figure of the evaluation can be reproduced against the sharded
    engine without touching the experiment code.
    """
    global _ACTIVE_SHARDING
    previous = _ACTIVE_SHARDING
    _ACTIVE_SHARDING = (int(shards), partitioner)
    try:
        yield
    finally:
        _ACTIVE_SHARDING = previous


#: Extra registry estimators appended to the standard line-up (CLI --estimator).
_ACTIVE_EXTRA_ESTIMATORS: tuple[str, ...] = ()


@contextmanager
def use_estimators(names: Sequence[str]) -> Iterator[None]:
    """Append registry estimators to every accuracy-experiment line-up.

    Inside the context, :func:`extra_estimator_specs` yields one
    default-configuration spec per name, and the experiment suite appends
    them to its budget-matched line-up — this is what the experiment CLI's
    ``--estimator NAME`` flag activates (e.g. ``--estimator ensemble`` to
    score the expert ensemble against every table/figure).  The default
    line-up is untouched outside the context, so pinned row counts in the
    experiment tests stay stable.
    """
    from repro.core.estimator import available_estimators

    global _ACTIVE_EXTRA_ESTIMATORS
    unknown = [n for n in names if n not in available_estimators()]
    if unknown:
        raise KeyError(
            f"unknown estimator(s) {unknown}; available: {available_estimators()}"
        )
    previous = _ACTIVE_EXTRA_ESTIMATORS
    _ACTIVE_EXTRA_ESTIMATORS = tuple(names)
    try:
        yield
    finally:
        _ACTIVE_EXTRA_ESTIMATORS = previous


def extra_estimator_specs() -> list[EstimatorSpec]:
    """Specs of the estimators added by :func:`use_estimators` (default none)."""
    from repro.core.estimator import create_estimator

    return [
        EstimatorSpec(name, lambda n=name: create_estimator(n))
        for name in _ACTIVE_EXTRA_ESTIMATORS
    ]


def _apply_sharding(estimator: SelectivityEstimator) -> SelectivityEstimator:
    """Wrap an estimator per the active sharding overlay (identity outside)."""
    if _ACTIVE_SHARDING is None:
        return estimator
    from repro.shard.sharded import ShardedEstimator  # lazy: avoids a cycle

    if isinstance(estimator, ShardedEstimator):
        return estimator
    shards, partitioner = _ACTIVE_SHARDING
    return ShardedEstimator(estimator, shards=shards, partitioner=partitioner)


def _store_model_name(table_name: str, label: str, scope: str) -> str:
    raw = ".".join(part for part in (table_name, scope, label) if part)
    return re.sub(r"[^A-Za-z0-9._-]", "_", raw).lstrip("._-") or "model"


def fit_or_restore(
    table: Table, spec: EstimatorSpec, scope: str = ""
) -> SelectivityEstimator:
    """Fit a spec's estimator, or restore it from the active model store.

    Outside a :func:`use_model_store` context this is exactly
    ``spec.build().fit(table)``.  Inside one, the estimator is published
    under ``<table>.<scope>.<label>`` after fitting (``save=True``) or
    restored from the latest published version instead of fitting
    (``load=True``; estimators whose columns do not match the table, or that
    were never published, are fitted fresh).  ``scope`` disambiguates
    experiment loops that reuse one table name with different parameters
    (budgets, dimensionalities, skew levels).
    """
    store, save, load = _ACTIVE_STORE
    name = _store_model_name(table.name, spec.label, scope) if store is not None else ""
    if store is not None and load:
        try:
            restored = store.load(name)
        except PersistenceError:
            pass  # not published yet: fall through to a fresh fit
        else:
            if all(column in table for column in restored.columns):
                return restored
    estimator = _apply_sharding(spec.build())
    estimator.fit(table)
    if store is not None and save:
        store.publish(name, estimator)
    return estimator


def fit_timed(estimator: SelectivityEstimator, table: Table) -> float:
    """Fit an estimator and return the wall-clock build time in seconds."""
    start = time.perf_counter()
    estimator.fit(table)
    return time.perf_counter() - start


def run_accuracy_comparison(
    table: Table,
    specs: Sequence[EstimatorSpec],
    queries: Sequence[RangeQuery],
    floor: float = 1e-4,
) -> Mapping[str, EvaluationResult]:
    """Fit every spec on ``table`` and evaluate it on ``queries``.

    Returns a mapping from spec label to its :class:`EvaluationResult`; the
    caller extracts whichever error statistics the experiment reports.

    Inside a :func:`use_model_store` context the fitted estimators are
    published to (or restored from) the active model store.
    """
    results: dict[str, EvaluationResult] = {}
    for spec in specs:
        estimator = fit_or_restore(table, spec)
        results[spec.label] = evaluate_estimator(table, estimator, queries, name=spec.label)
    return results


def true_selectivities(table: Table, queries: Sequence[RangeQuery]) -> np.ndarray:
    """Exact selectivity of every query (vectorized convenience wrapper)."""
    return table.true_selectivities(queries)
