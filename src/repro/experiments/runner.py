"""Shared experiment machinery.

Every experiment in :mod:`repro.experiments.suite` is a composition of the
same few steps: build a dataset, build a workload, fit a set of estimators,
evaluate them against exact answers, and aggregate errors.  This module holds
those steps so each experiment reads as configuration plus a loop.

Results are returned as :class:`TableResult` / :class:`SeriesResult`, plain
data structures that the benchmark harness renders with
:func:`repro.metrics.report.render_table` / ``render_series`` and that tests
can assert against directly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.core.estimator import SelectivityEstimator
from repro.engine.executor import EvaluationResult, evaluate_estimator
from repro.engine.table import Table
from repro.metrics.report import render_series, render_table
from repro.workload.queries import RangeQuery

__all__ = [
    "EstimatorSpec",
    "TableResult",
    "SeriesResult",
    "fit_timed",
    "run_accuracy_comparison",
]


@dataclass(frozen=True)
class EstimatorSpec:
    """A named estimator configuration used by an experiment.

    ``factory`` builds a fresh, unfitted estimator; experiments never reuse a
    fitted estimator across datasets.
    """

    label: str
    factory: Callable[[], SelectivityEstimator]

    def build(self) -> SelectivityEstimator:
        """Instantiate a fresh estimator."""
        return self.factory()


@dataclass
class TableResult:
    """A table of the evaluation: headers plus one row per configuration."""

    experiment: str
    headers: list[str]
    rows: list[list[object]]
    notes: str = ""

    def render(self, precision: int = 4) -> str:
        """Plain-text rendering of the table."""
        text = render_table(self.headers, self.rows, title=self.experiment, precision=precision)
        if self.notes:
            text += f"\n\n{self.notes}"
        return text

    def column(self, name: str) -> list[object]:
        """Values of one column by header name."""
        index = self.headers.index(name)
        return [row[index] for row in self.rows]

    def row_by(self, key_column: str, key_value: object) -> list[object] | None:
        """First row whose ``key_column`` equals ``key_value``."""
        index = self.headers.index(key_column)
        for row in self.rows:
            if row[index] == key_value:
                return list(row)
        return None


@dataclass
class SeriesResult:
    """A figure of the evaluation: x values plus one named series per line."""

    experiment: str
    x_label: str
    x_values: list[object]
    series: dict[str, list[float]] = field(default_factory=dict)
    notes: str = ""

    def render(self, precision: int = 4) -> str:
        """Plain-text rendering of the figure data."""
        text = render_series(
            self.x_label, self.x_values, self.series, title=self.experiment, precision=precision
        )
        if self.notes:
            text += f"\n\n{self.notes}"
        return text

    def add_point(self, series_name: str, value: float) -> None:
        """Append one y value to a named series (created on first use)."""
        self.series.setdefault(series_name, []).append(float(value))


def fit_timed(estimator: SelectivityEstimator, table: Table) -> float:
    """Fit an estimator and return the wall-clock build time in seconds."""
    start = time.perf_counter()
    estimator.fit(table)
    return time.perf_counter() - start


def run_accuracy_comparison(
    table: Table,
    specs: Sequence[EstimatorSpec],
    queries: Sequence[RangeQuery],
    floor: float = 1e-4,
) -> Mapping[str, EvaluationResult]:
    """Fit every spec on ``table`` and evaluate it on ``queries``.

    Returns a mapping from spec label to its :class:`EvaluationResult`; the
    caller extracts whichever error statistics the experiment reports.
    """
    results: dict[str, EvaluationResult] = {}
    for spec in specs:
        estimator = spec.build()
        estimator.fit(table)
        results[spec.label] = evaluate_estimator(table, estimator, queries, name=spec.label)
    return results


def true_selectivities(table: Table, queries: Sequence[RangeQuery]) -> np.ndarray:
    """Exact selectivity of every query (vectorized convenience wrapper)."""
    return table.true_selectivities(queries)
