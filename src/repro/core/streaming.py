"""Streaming adaptive density estimator (the core contribution).

:class:`StreamingADE` maintains a bounded-size mixture of weighted Gaussian
*cluster kernels* over an insert stream.  Each kernel stores a weight, a mean
vector and a per-attribute variance.  New tuples either open a new kernel or
are merged into the nearest existing kernel with a moment-preserving update,
so memory never exceeds the configured budget regardless of stream length.
An optional exponential decay down-weights stale kernels so the model tracks
concept drift; kernels whose weight decays below a pruning threshold are
dropped, freeing budget for the current distribution.

Range selectivities are computed exactly as for a product-Gaussian mixture:
each kernel contributes its weight times the product over attributes of the
normal mass inside the queried interval, where the per-attribute standard
deviation combines the kernel's own spread with a global smoothing bandwidth
(so even freshly created, zero-variance kernels are smoothed).

This is the streaming counterpart of :class:`repro.core.adaptive.AdaptiveKDEEstimator`:
kernels in dense regions accumulate weight and stay narrow, kernels in sparse
regions stay wide — the bandwidth adapts locally through the merge process
itself rather than through explicit Abramson factors.

Bulk-ingestion contract
-----------------------

``insert(rows)`` is the batch-first maintenance entry point.  It is built
around a chunked, vectorized pipeline rather than a per-tuple loop:

* **Chunking.**  Incoming rows are gathered into fixed-size sub-chunks of at
  most ``chunk_size`` tuples (a partial tail stays buffered between calls).
  Each full chunk is folded into the model with a bounded number of numpy
  operations: one distance matrix against the current kernels, one grouped
  moment-preserving merge (``np.add.at`` accumulation of weight / Σwx / Σwx²
  per target kernel), one batched new-kernel creation for rows that open
  kernels (near-duplicate rows are coalesced on a ``merge_threshold``-sized
  grid first), then a single compress-to-budget and prune step.
* **Batching invariance.**  Chunk boundaries depend only on the number of
  rows ingested since ``start()`` (and on explicit :meth:`StreamingADE.flush`
  points), never on how the caller sliced the stream into ``insert`` calls.
  Feeding the same rows in the same order therefore yields a bit-identical
  synopsis whether they arrive row-at-a-time or as one huge batch; the
  ingestion-equivalence suite asserts estimates agree to below ``1e-6``.
* **Decay semantics.**  The per-tuple exponential decay of the sequential
  reference path is preserved exactly: a chunk of ``m`` rows scales every
  pre-chunk kernel weight by ``decay**m`` — applied lazily through a global
  scale factor that is renormalised before it can underflow — and row ``i``
  of the chunk enters with weight ``decay**(m-1-i)``, precisely the weight
  it would have retained under per-tuple decay.
* **Buffering.**  Up to ``chunk_size - 1`` rows may sit in the pending
  buffer; every estimation / introspection entry point flushes first, so
  buffering is invisible to callers (an early flush simply closes the
  current sub-chunk at that stream position).
* **Reference path.**  :meth:`StreamingADE.insert_sequential` keeps the
  original per-tuple maintenance loop.  It is the semantic reference the
  bulk path is validated against (same distribution modelled; drift-suite
  accuracy within a few percent) and the baseline of
  ``benchmarks/bench_ingest_throughput.py``.
"""

from __future__ import annotations

import math
from time import perf_counter
from typing import Sequence

import numpy as np

from repro.core import fastpath
from repro.core.errors import InvalidParameterError, StreamError
from repro.core.estimator import FLOAT_BYTES, StreamingEstimator, register_estimator
from repro.stream.batches import normalize_batch
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imported for type annotations only (avoids a package cycle)
    from repro.engine.table import Table

__all__ = ["StreamingADE"]

#: Work-buffer bound (in floats) for the per-chunk distance matrices.
_ASSIGN_BUFFER_ELEMENTS = 1 << 21

#: The lazy decay scale is renormalised once it shrinks past this bound, and
#: the sub-chunk length is capped so one chunk can never shrink it by more
#: than the same factor — together this keeps every stored weight far from
#: the float range limits.
_SCALE_FLOOR = 1e-100


#: The normal-CDF interval mass now lives in :mod:`repro.core.fastpath` (the
#: shared micro-kernel); this alias keeps the module-local name working.
_normal_interval_mass = fastpath.normal_box_mass


@register_estimator("streaming_ade")
class StreamingADE(StreamingEstimator):
    """Bounded-memory streaming adaptive density estimator.

    Parameters
    ----------
    max_kernels:
        Maximum number of cluster kernels retained (the space budget).
    decay:
        Per-tuple exponential decay applied to existing kernel weights before
        each insert.  ``1.0`` disables decay (landmark model); values such as
        ``1 - 1e-4`` give a half-life of ≈6.9k tuples, letting the model
        forget pre-drift data.
    merge_threshold:
        Distance (in units of per-attribute smoothing bandwidths) under which
        a new tuple is merged into its nearest kernel even when budget is
        still available.  Keeps duplicate-heavy streams from exhausting the
        budget on identical points.
    prune_weight:
        Kernels whose weight falls below this fraction of the mean kernel
        weight are discarded during compression.
    smoothing_factor:
        Multiplier on the Scott-rule global smoothing bandwidth.
    chunk_size:
        Number of rows folded into the model per vectorized maintenance step
        (see the module docstring for the bulk-ingestion contract).  Larger
        chunks amortise more interpreter overhead at the cost of coarser
        merge decisions; the default is a good trade-off.
    seed:
        Seed for tie-breaking randomness (unused in the default policy but
        kept for reproducible subclasses).
    fastpath:
        When true (default), batch estimation runs through the support-culling
        query fast path (:mod:`repro.core.fastpath`), rebuilt lazily after
        maintenance via a staleness counter.  Set ``False`` to pin the
        estimator to the dense reference path.
    """

    name = "streaming_ade"

    def __init__(
        self,
        max_kernels: int = 256,
        decay: float = 1.0,
        merge_threshold: float = 0.25,
        prune_weight: float = 1e-3,
        smoothing_factor: float = 1.0,
        chunk_size: int = 256,
        seed: int | None = 0,
        fastpath: bool = True,
    ) -> None:
        super().__init__()
        if max_kernels < 2:
            raise InvalidParameterError("max_kernels must be at least 2")
        if not 0.0 < decay <= 1.0:
            raise InvalidParameterError("decay must lie in (0, 1]")
        if merge_threshold < 0:
            raise InvalidParameterError("merge_threshold must be non-negative")
        if smoothing_factor <= 0:
            raise InvalidParameterError("smoothing_factor must be positive")
        if chunk_size < 1:
            raise InvalidParameterError("chunk_size must be positive")
        self.max_kernels = int(max_kernels)
        self.decay = float(decay)
        self.merge_threshold = float(merge_threshold)
        self.prune_weight = float(prune_weight)
        self.smoothing_factor = float(smoothing_factor)
        self.chunk_size = int(chunk_size)
        self.seed = seed
        self.fastpath = bool(fastpath)
        if self.decay < 1.0:
            # Cap the sub-chunk length so decay**chunk stays above the scale
            # floor: stored weights are expressed relative to the lazy decay
            # scale and must remain representable.
            safe = max(int(-math.log10(_SCALE_FLOOR) / -math.log10(self.decay)), 1)
            self._chunk = min(self.chunk_size, safe)
        else:
            self._chunk = self.chunk_size

        self._dims = 0
        self._means = np.empty((0, 0))
        self._variances = np.empty((0, 0))
        self._weights = np.empty(0)
        self._decay_scale = 1.0
        self._total_seen = 0.0
        self._domain_low = np.empty(0)
        self._domain_high = np.empty(0)
        self._pending = np.empty((0, 0))
        self._pending_count = 0
        # Running (decayed) sums used for the global smoothing bandwidth.
        self._sum_w = 0.0
        self._sum_wx = np.empty(0)
        self._sum_wx2 = np.empty(0)
        # Staleness counter for the query fast path: every maintenance step
        # (chunk fold, per-tuple insert, compress, prune, restore) bumps the
        # epoch; the support index + std cache is rebuilt lazily on the next
        # estimate rather than updated per tuple.
        self._maintenance_epoch = 0
        self._support_cache: (
            tuple[int, fastpath.KernelSupportIndex, np.ndarray] | None
        ) = None

    # -- lifecycle ---------------------------------------------------------
    def fit(self, table: Table, columns: Sequence[str] | None = None) -> "StreamingADE":
        """Initialise the model and stream every row of ``table`` through it."""
        columns = self._resolve_columns(table, columns)
        self.start(columns)
        data = table.columns(columns)
        if data.shape[0] > 0:
            self.insert(data)
        self._mark_fitted(columns, table.row_count)
        return self

    def start(self, columns: Sequence[str]) -> "StreamingADE":
        """Initialise an empty model over ``columns`` without any data.

        Use this when the relation is consumed purely as a stream; the model
        becomes usable (``is_fitted``) immediately with zero rows modelled.
        """
        columns = list(columns)
        if not columns:
            raise InvalidParameterError("at least one column is required")
        self._dims = len(columns)
        self._means = np.empty((0, self._dims))
        self._variances = np.empty((0, self._dims))
        self._weights = np.empty(0)
        self._decay_scale = 1.0
        self._total_seen = 0.0
        self._domain_low = np.full(self._dims, np.inf)
        self._domain_high = np.full(self._dims, -np.inf)
        self._pending = np.empty((self._chunk, self._dims))
        self._pending_count = 0
        self._sum_w = 0.0
        self._sum_wx = np.zeros(self._dims)
        self._sum_wx2 = np.zeros(self._dims)
        self._mark_stale()
        self._mark_fitted(columns, 0)
        return self

    def _mark_stale(self) -> None:
        """Bump the maintenance epoch: the synopsis changed under the index."""
        self._maintenance_epoch += 1
        self._support_cache = None

    # -- streaming maintenance -----------------------------------------------
    def insert(self, rows: np.ndarray) -> None:
        """Fold a batch of rows into the model via the chunked bulk path.

        Empty batches are a no-op.  Rows are processed in ``chunk_size``
        sub-chunks; a partial tail stays buffered until the next insert, an
        explicit :meth:`flush`, or any estimation / introspection call.
        """
        if not self.is_fitted:
            raise StreamError("call fit() or start() before insert()")
        rows = self._validate_rows(rows)
        if rows is None:
            return
        metrics = self._metrics
        if metrics is not None:
            ingest_start = perf_counter()
        n = rows.shape[0]
        chunk = self._chunk
        start = 0
        while start < n:
            if self._pending_count == 0 and n - start >= chunk:
                self._process_chunk(rows[start : start + chunk])
                start += chunk
                continue
            take = min(chunk - self._pending_count, n - start)
            self._pending[self._pending_count : self._pending_count + take] = rows[
                start : start + take
            ]
            self._pending_count += take
            start += take
            if self._pending_count == chunk:
                self._process_chunk(self._pending)
                self._pending_count = 0
        self._row_count += n
        if metrics is not None:
            metrics.histogram("ingest.insert_seconds").record(
                perf_counter() - ingest_start
            )
            metrics.counter("ingest.rows").inc(n)

    def insert_sequential(self, rows: np.ndarray) -> None:
        """Reference per-tuple maintenance loop (the pre-bulk semantics).

        Kept as the semantic baseline the chunked bulk path is validated and
        benchmarked against; orders of magnitude slower on large batches.
        """
        if not self.is_fitted:
            raise StreamError("call fit() or start() before insert()")
        rows = self._validate_rows(rows)
        if rows is None:
            return
        self.flush()
        if self._decay_scale != 1.0:
            # The per-tuple path decays weights eagerly; fold the lazy scale
            # in so both paths can interoperate on the same model.
            self._weights *= self._decay_scale
            self._decay_scale = 1.0
        for row in rows:
            self._insert_one(row)
        self._row_count += rows.shape[0]

    def flush(self) -> None:
        """Fold any buffered rows into the kernels (closes the current sub-chunk)."""
        if self._pending_count:
            metrics = self._metrics
            if metrics is not None:
                flush_start = perf_counter()
            count = self._pending_count
            self._pending_count = 0
            self._process_chunk(self._pending[:count])
            if metrics is not None:
                metrics.histogram("ingest.flush_seconds").record(
                    perf_counter() - flush_start
                )

    def _validate_rows(self, rows: np.ndarray) -> np.ndarray | None:
        """Normalise ``rows`` to a ``(n, d)`` float matrix; ``None`` when empty."""
        return normalize_batch(rows, self._dims, StreamError)

    def _process_chunk(self, rows: np.ndarray) -> None:
        """Fold one sub-chunk into the model with a bounded number of numpy ops."""
        self._mark_stale()
        m, d = rows.shape
        self._total_seen += float(m)
        self._domain_low = np.minimum(self._domain_low, rows.min(axis=0))
        self._domain_high = np.maximum(self._domain_high, rows.max(axis=0))

        if self.decay < 1.0:
            # Row i of the chunk carries weight decay**(m-1-i): exactly the
            # weight it would retain at the end of the chunk under per-tuple
            # decay.  Pre-chunk kernels shrink by decay**m via the lazy scale.
            row_weights = self.decay ** np.arange(m - 1, -1, -1, dtype=float)
            chunk_decay = self.decay**m
            self._sum_w = self._sum_w * chunk_decay + float(row_weights.sum())
            self._sum_wx = self._sum_wx * chunk_decay + row_weights @ rows
            self._sum_wx2 = self._sum_wx2 * chunk_decay + row_weights @ (rows * rows)
            if self._decay_scale < _SCALE_FLOOR:
                self._weights *= self._decay_scale
                self._decay_scale = 1.0
            self._decay_scale *= chunk_decay
            stored_weights = row_weights / self._decay_scale
        else:
            self._sum_w += float(m)
            self._sum_wx += rows.sum(axis=0)
            self._sum_wx2 += (rows * rows).sum(axis=0)
            stored_weights = np.ones(m)

        smoothing = self._smoothing_bandwidths()
        kernels = self._weights.size

        if kernels:
            nearest, scores = self._nearest_kernels(rows, smoothing)
            merge_mask = scores <= self.merge_threshold
        else:
            nearest = np.zeros(m, dtype=np.int64)
            merge_mask = np.zeros(m, dtype=bool)

        # Grouped moment-preserving merges: accumulate (weight, Σwx, Σwx²)
        # per target kernel, from both threshold merges and — under budget
        # pressure — catchment absorption of whole candidate groups.
        acc_w = np.zeros(kernels)
        acc_wx = np.zeros((kernels, d))
        acc_wx2 = np.zeros((kernels, d))
        if merge_mask.any():
            targets = nearest[merge_mask]
            w = stored_weights[merge_mask]
            r = rows[merge_mask]
            np.add.at(acc_w, targets, w)
            np.add.at(acc_wx, targets, w[:, None] * r)
            np.add.at(acc_wx2, targets, w[:, None] * r * r)

        new_w: np.ndarray | None = None
        new_means: np.ndarray | None = None
        new_vars: np.ndarray | None = None
        leftover = ~merge_mask
        if leftover.any():
            new_w, new_wx, new_wx2 = self._group_rows(
                rows[leftover], stored_weights[leftover], smoothing
            )
            new_means = new_wx / new_w[:, None]
            new_vars = np.maximum(new_wx2 / new_w[:, None] - new_means**2, 0.0)
            if kernels and kernels + new_w.size > self.max_kernels:
                # Budget pressure: absorb candidates that fall inside the
                # natural catchment area of an existing kernel (the expected
                # kernel spacing over the observed domain); only genuinely
                # new structure opens kernels (the M-Kernel maintenance step).
                cnearest, _ = self._nearest_kernels(new_means, smoothing)
                spacing = self._kernel_spacing()
                absorb = (np.abs(new_means - self._means[cnearest]) <= spacing).all(axis=1)
                if absorb.any():
                    t = cnearest[absorb]
                    np.add.at(acc_w, t, new_w[absorb])
                    np.add.at(acc_wx, t, new_wx[absorb])
                    np.add.at(acc_wx2, t, new_wx2[absorb])
                    keep = ~absorb
                    new_w = new_w[keep]
                    new_means = new_means[keep]
                    new_vars = new_vars[keep]

        touched = acc_w > 0
        if touched.any():
            w0 = self._weights[touched]
            m0 = self._means[touched]
            v0 = self._variances[touched]
            total = w0 + acc_w[touched]
            mean = (w0[:, None] * m0 + acc_wx[touched]) / total[:, None]
            var = (w0[:, None] * (v0 + m0**2) + acc_wx2[touched]) / total[:, None] - mean**2
            self._weights[touched] = total
            self._means[touched] = mean
            self._variances[touched] = np.maximum(var, 0.0)

        if new_w is not None and new_w.size:
            self._means = np.concatenate([self._means, new_means])
            self._variances = np.concatenate([self._variances, new_vars])
            self._weights = np.concatenate([self._weights, new_w])

        if self._weights.size > self.max_kernels:
            self._compress_to(self.max_kernels)
        # Prune after every decayed chunk regardless of capacity (the
        # original per-tuple path only pruned on the at-capacity branch, so
        # stale kernels could squat on budget while below max_kernels).
        if self.decay < 1.0:
            self._prune()

    def _nearest_kernels(
        self, points: np.ndarray, smoothing: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Index of and max-norm score to the nearest kernel for every point.

        Chunked over points so the ``(block, K)`` distance buffer stays cache
        resident regardless of batch size.
        """
        n = points.shape[0]
        kernels = self._weights.size
        nearest = np.empty(n, dtype=np.int64)
        scores = np.empty(n)
        scaled_means = self._means / smoothing
        scaled_points = points / smoothing
        block = max(_ASSIGN_BUFFER_ELEMENTS // max(kernels, 1), 1)
        # Two (block, K) work buffers, filled per attribute with in-place
        # ufuncs: one 3-D (block, K, d) tensor plus an axis reduce is several
        # times slower than d passes over contiguous 2-D arrays.
        best = np.empty((min(block, n), kernels))
        work = np.empty_like(best)
        for start in range(0, n, block):
            stop = min(start + block, n)
            rows = stop - start
            dist = best[:rows]
            np.subtract(
                scaled_points[start:stop, 0, None], scaled_means[None, :, 0], out=dist
            )
            np.abs(dist, out=dist)
            for d in range(1, self._dims):
                other = work[:rows]
                np.subtract(
                    scaled_points[start:stop, d, None], scaled_means[None, :, d], out=other
                )
                np.abs(other, out=other)
                np.maximum(dist, other, out=dist)
            idx = dist.argmin(axis=1)
            nearest[start:stop] = idx
            scores[start:stop] = dist[np.arange(rows), idx]
        return nearest, scores

    def _group_rows(
        self, rows: np.ndarray, weights: np.ndarray, smoothing: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Coalesce near-duplicate rows on a ``merge_threshold``-sized grid.

        Returns per-group ``(weight, Σwx, Σwx²)`` so each group can be
        appended as one kernel — or absorbed into an existing one — without
        losing moments.  Mirrors the sequential path's near-duplicate
        coalescing, which would otherwise exhaust the budget on identical
        points arriving inside one chunk.
        """
        width = max(self.merge_threshold, 1e-9) * smoothing
        cells = np.floor(np.clip(rows / width, -(2.0**62), 2.0**62)).astype(np.int64)
        _, inverse = np.unique(cells, axis=0, return_inverse=True)
        inverse = np.asarray(inverse).reshape(-1)
        groups = int(inverse.max()) + 1
        w = np.zeros(groups)
        wx = np.zeros((groups, rows.shape[1]))
        wx2 = np.zeros((groups, rows.shape[1]))
        np.add.at(w, inverse, weights)
        np.add.at(wx, inverse, weights[:, None] * rows)
        np.add.at(wx2, inverse, weights[:, None] * rows * rows)
        return w, wx, wx2

    def _insert_one(self, row: np.ndarray) -> None:
        self._mark_stale()
        if self.decay < 1.0 and self._weights.size:
            self._weights *= self.decay
            self._sum_w *= self.decay
            self._sum_wx *= self.decay
            self._sum_wx2 *= self.decay
        self._total_seen += 1.0
        self._sum_w += 1.0
        self._sum_wx += row
        self._sum_wx2 += row * row
        self._domain_low = np.minimum(self._domain_low, row)
        self._domain_high = np.maximum(self._domain_high, row)

        if self._weights.size == 0:
            self._append_kernel(row)
            return

        smoothing = self._smoothing_bandwidths()
        distances = np.abs(self._means - row)
        scores = (distances / smoothing).max(axis=1)
        nearest = int(np.argmin(scores))

        at_capacity = self._weights.size >= self.max_kernels
        if not at_capacity:
            # Budget available: only coalesce near-duplicates, otherwise give
            # the tuple its own kernel so local structure is preserved.
            if scores[nearest] <= self.merge_threshold:
                self._merge_point(nearest, row)
            else:
                self._append_kernel(row)
            # Prune below capacity too: under decay, stale kernels must not
            # squat on budget until the model happens to fill up.
            if self.decay < 1.0:
                self._prune()
            return

        # At capacity.  Absorb the tuple into its nearest kernel when it falls
        # within that kernel's natural catchment area (the expected spacing of
        # kernels over the observed domain).  A tuple far from every kernel —
        # an outlier or the first evidence of a drifted mode — must not
        # inflate an existing kernel's variance; instead the two closest
        # existing kernels are merged to free budget and the tuple becomes a
        # new, tight kernel (the classical M-Kernel maintenance step).
        spacing = self._kernel_spacing()
        within_catchment = bool(np.all(distances[nearest] <= spacing))
        if within_catchment:
            self._merge_point(nearest, row)
        else:
            self._merge_closest_pair()
            self._append_kernel(row)
        self._prune()

    def _kernel_spacing(self) -> np.ndarray:
        """Expected per-attribute spacing of ``max_kernels`` kernels over the domain."""
        width = self._domain_high - self._domain_low
        width = np.where(np.isfinite(width) & (width > 0), width, 1.0)
        spacing = width * self.max_kernels ** (-1.0 / self._dims)
        return np.maximum(spacing, self._smoothing_bandwidths())

    def _append_kernel(self, row: np.ndarray) -> None:
        self._means = np.vstack([self._means, row[None, :]])
        self._variances = np.vstack([self._variances, np.zeros((1, self._dims))])
        self._weights = np.append(self._weights, 1.0)

    def _merge_point(self, index: int, row: np.ndarray) -> None:
        """Moment-preserving merge of a unit-weight point into kernel ``index``."""
        w = self._weights[index]
        mean = self._means[index]
        var = self._variances[index]
        total = w + 1.0
        new_mean = (w * mean + row) / total
        # Combine within-kernel variance with the between-component spread.
        new_var = (w * (var + mean**2) + row**2) / total - new_mean**2
        self._weights[index] = total
        self._means[index] = new_mean
        self._variances[index] = np.maximum(new_var, 0.0)

    def _prune(self) -> None:
        """Drop kernels whose weight decayed to insignificance.

        Operates on the stored (scale-relative) weights: the threshold is a
        fraction of the mean weight, so the lazy decay scale cancels.
        """
        if self._weights.size == 0:
            return
        threshold = self.prune_weight * float(self._weights.mean())
        keep = self._weights >= threshold
        if keep.all():
            return
        # Never prune everything: keep at least the heaviest kernel.
        if not keep.any():
            keep[int(np.argmax(self._weights))] = True
        self._mark_stale()
        self._means = self._means[keep]
        self._variances = self._variances[keep]
        self._weights = self._weights[keep]

    def compress(self, target_kernels: int | None = None) -> None:
        """Merge closest kernel pairs until at most ``target_kernels`` remain.

        This is the offline compaction step; the online path never exceeds
        ``max_kernels``, but callers may shrink an existing model to a smaller
        budget (e.g. before shipping statistics to another node).
        """
        target = target_kernels if target_kernels is not None else self.max_kernels
        if target < 1:
            raise InvalidParameterError("target_kernels must be positive")
        self.flush()
        self._compress_to(target)

    def _compress_to(self, target: int) -> None:
        """Batched compaction: merge disjoint closest pairs until ≤ ``target``.

        Each round computes the pairwise max-norm distance matrix once, then
        greedily merges up to ``excess`` disjoint closest pairs; conflicts
        (a kernel appearing in two close pairs) roll over to the next round.
        """
        while self._weights.size > target:
            self._mark_stale()
            kernels = self._weights.size
            excess = kernels - target
            smoothing = self._smoothing_bandwidths()
            normalised = self._means / smoothing
            diff = np.abs(normalised[:, None, :] - normalised[None, :, :]).max(axis=2)
            iu, ju = np.triu_indices(kernels, k=1)
            flat = diff[iu, ju]
            # Only the smallest distances can yield `excess` disjoint pairs;
            # pre-select a few times that many so the greedy scan stays short.
            limit = min(flat.size, 4 * excess + 16)
            candidates = np.argpartition(flat, limit - 1)[:limit]
            candidates = candidates[np.argsort(flat[candidates], kind="stable")]
            used = np.zeros(kernels, dtype=bool)
            left: list[int] = []
            right: list[int] = []
            for a, b in zip(iu[candidates], ju[candidates]):
                if used[a] or used[b]:
                    continue
                used[a] = used[b] = True
                left.append(int(a))
                right.append(int(b))
                if len(left) == excess:
                    break
            i = np.asarray(left, dtype=np.int64)
            j = np.asarray(right, dtype=np.int64)
            wi = self._weights[i]
            wj = self._weights[j]
            total = wi + wj
            mean = (
                wi[:, None] * self._means[i] + wj[:, None] * self._means[j]
            ) / total[:, None]
            var = (
                wi[:, None] * (self._variances[i] + self._means[i] ** 2)
                + wj[:, None] * (self._variances[j] + self._means[j] ** 2)
            ) / total[:, None] - mean**2
            self._weights[i] = total
            self._means[i] = mean
            self._variances[i] = np.maximum(var, 0.0)
            keep = np.ones(kernels, dtype=bool)
            keep[j] = False
            self._means = self._means[keep]
            self._variances = self._variances[keep]
            self._weights = self._weights[keep]

    def _merge_closest_pair(self) -> None:
        """Merge the single closest kernel pair (sequential reference path)."""
        if self._weights.size > 1:
            self._compress_to(self._weights.size - 1)

    # -- persistence -----------------------------------------------------------
    def _config_params(self) -> dict:
        return {
            "max_kernels": self.max_kernels,
            "decay": self.decay,
            "merge_threshold": self.merge_threshold,
            "prune_weight": self.prune_weight,
            "smoothing_factor": self.smoothing_factor,
            "chunk_size": self.chunk_size,
            "seed": self.seed,
            "fastpath": self.fastpath,
        }

    def _state(self) -> tuple[dict, dict]:
        # state_dict() has already flushed: the pending ingestion buffer is
        # empty, so the kernel arrays plus running sums are the whole model.
        arrays = {
            "means": self._means,
            "variances": self._variances,
            "weights": self._weights,
            "domain_low": self._domain_low,
            "domain_high": self._domain_high,
            "sum_wx": self._sum_wx,
            "sum_wx2": self._sum_wx2,
        }
        meta = {
            "dims": self._dims,
            "decay_scale": self._decay_scale,
            "total_seen": self._total_seen,
            "sum_w": self._sum_w,
        }
        return arrays, meta

    def _restore_state(self, arrays, meta) -> None:
        self._dims = int(meta["dims"])
        if self._dims:
            self._means = np.asarray(arrays["means"], dtype=float).reshape(-1, self._dims)
            self._variances = np.asarray(arrays["variances"], dtype=float).reshape(
                -1, self._dims
            )
        else:  # never started: no column geometry to restore
            self._means = np.empty((0, 0))
            self._variances = np.empty((0, 0))
        self._weights = np.asarray(arrays["weights"], dtype=float)
        self._domain_low = np.asarray(arrays["domain_low"], dtype=float)
        self._domain_high = np.asarray(arrays["domain_high"], dtype=float)
        self._sum_wx = np.asarray(arrays["sum_wx"], dtype=float)
        self._sum_wx2 = np.asarray(arrays["sum_wx2"], dtype=float)
        self._decay_scale = float(meta["decay_scale"])
        self._total_seen = float(meta["total_seen"])
        self._sum_w = float(meta["sum_w"])
        self._pending = np.empty((self._chunk, self._dims))
        self._pending_count = 0
        self._mark_stale()

    # -- model introspection -----------------------------------------------------
    @property
    def kernel_count(self) -> int:
        """Number of cluster kernels currently stored."""
        self.flush()
        return int(self._weights.size)

    @property
    def kernel_weights(self) -> np.ndarray:
        """Copy of the kernel weights (with the lazy decay scale applied)."""
        self.flush()
        return self._weights * self._decay_scale

    @property
    def kernel_means(self) -> np.ndarray:
        """Copy of the kernel mean vectors (``(K, d)``)."""
        self.flush()
        return self._means.copy()

    @property
    def kernel_variances(self) -> np.ndarray:
        """Copy of the per-attribute kernel variances (``(K, d)``)."""
        self.flush()
        return self._variances.copy()

    @property
    def effective_count(self) -> float:
        """Decayed number of tuples the model currently represents."""
        self.flush()
        return float(self._weights.sum() * self._decay_scale)

    def memory_bytes(self) -> int:
        """Footprint of the synopsis proper (kernels + running sums).

        The transient per-chunk ingestion buffer is working memory, not part
        of the shipped statistics, and is flushed before accounting.
        """
        self._require_fitted()
        self.flush()
        kernel_floats = self._weights.size * (2 * self._dims + 1)
        running_floats = 2 * self._dims + self._sum_wx.size + self._sum_wx2.size + 1
        return int((kernel_floats + running_floats) * FLOAT_BYTES)

    def _smoothing_bandwidths(self) -> np.ndarray:
        """Per-attribute smoothing bandwidth (Scott rule on the *local* spread).

        The scale is the weighted average within-kernel standard deviation,
        not the global standard deviation: on multimodal data the global
        spread covers the gaps between clusters and would smear kernel mass
        into empty regions — exactly the over-smoothing failure the adaptive
        estimator is meant to avoid.  While the model is young (all kernels
        still have zero variance) the global spread is used as a fallback.
        """
        if self._sum_w <= 0:
            return np.ones(self._dims)
        mean = self._sum_wx / self._sum_w
        global_var = np.maximum(self._sum_wx2 / self._sum_w - mean**2, 0.0)
        global_std = np.sqrt(global_var)
        if self._weights.size:
            total = float(self._weights.sum())
            within_var = (self._weights @ self._variances) / max(total, 1e-12)
            within_std = np.sqrt(np.maximum(within_var, 0.0))
        else:
            within_std = np.zeros(self._dims)
        width = np.where(
            np.isfinite(self._domain_high - self._domain_low),
            np.maximum(self._domain_high - self._domain_low, 0.0),
            1.0,
        )
        fallback = np.where(global_std > 0, global_std, np.maximum(width, 1.0) * 0.1)
        scale = np.where(within_std > 0, within_std, fallback)
        n_eff = max(self._sum_w, 2.0)
        h = scale * n_eff ** (-1.0 / (self._dims + 4))
        return np.maximum(h * self.smoothing_factor, 1e-9)

    # -- estimation -------------------------------------------------------------
    def _estimate_batch(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Mixture mass inside every query box, broadcast over all kernels.

        Selective batches run through the support-culling fast path
        (:func:`repro.core.fastpath.estimate_boxes`); everything else — and
        models built with ``fastpath=False`` — runs the dense reference path
        on the same batched product-kernel CDF micro-kernel.
        """
        self.flush()
        n = lows.shape[0]
        if self._weights.size == 0:
            return np.zeros(n)
        total = float(self._weights.sum())
        if total <= 0:
            return np.zeros(n)
        use_fastpath = self.fastpath and fastpath.fastpath_enabled()
        if use_fastpath:
            index, stds = self._support_state()
        else:
            # Dense-pinned models never pay for an index they will not read.
            smoothing = self._smoothing_bandwidths()
            stds = np.sqrt(self._variances + smoothing**2)

        def axis_mass(
            ids: np.ndarray | None, axis: int, low: np.ndarray, high: np.ndarray
        ) -> np.ndarray:
            means = self._means[:, axis] if ids is None else self._means[ids, axis]
            scale = stds[:, axis] if ids is None else stds[ids, axis]
            return _normal_interval_mass(
                low[:, None], high[:, None], means[None, :], scale[None, :]
            )

        if use_fastpath:
            culled = fastpath.estimate_boxes(
                lows, highs, index, self._weights, total, axis_mass
            )
            if culled is not None:
                return culled
        return fastpath.weighted_box_masses(lows, highs, axis_mass, self._weights, total)

    def _support_state(self) -> tuple["fastpath.KernelSupportIndex", np.ndarray]:
        """Cached ``(support index, per-kernel stds)`` for the current epoch.

        The per-kernel per-attribute standard deviation combines the kernel's
        own spread with the global smoothing bandwidth; the effective support
        radius is the Gaussian cull radius times that std.  Rebuilt lazily
        whenever the maintenance epoch moved (never per tuple); the cache
        tuple is swapped atomically so concurrent readers at worst rebuild.
        """
        cached = self._support_cache
        if cached is not None and cached[0] == self._maintenance_epoch:
            return cached[1], cached[2]
        smoothing = self._smoothing_bandwidths()
        stds = np.sqrt(self._variances + smoothing**2)
        radius = fastpath.gaussian_cull_radius()
        index = fastpath.KernelSupportIndex(self._means, stds * radius)
        self._support_cache = (self._maintenance_epoch, index, stds)
        return index, stds

    def density(self, points: np.ndarray) -> np.ndarray:
        """Evaluate the mixture density at ``points`` (``(m, d)`` matrix)."""
        self._require_fitted()
        self.flush()
        points = np.atleast_2d(np.asarray(points, dtype=float))
        if points.shape[1] != self._dims:
            raise InvalidParameterError(f"density expects {self._dims}-dimensional points")
        if self._weights.size == 0:
            return np.zeros(points.shape[0])
        smoothing = self._smoothing_bandwidths()
        stds = np.sqrt(self._variances + smoothing**2)
        total = float(self._weights.sum())
        result = np.zeros(points.shape[0])
        for start in range(0, points.shape[0], 1024):
            chunk = points[start : start + 1024]
            values = np.ones((chunk.shape[0], self._weights.size))
            for d in range(self._dims):
                z = (chunk[:, d, None] - self._means[None, :, d]) / stds[None, :, d]
                values *= np.exp(-0.5 * z * z) / (stds[None, :, d] * math.sqrt(2 * math.pi))
            result[start : start + 1024] = values @ self._weights / total
        return result
