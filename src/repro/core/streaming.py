"""Streaming adaptive density estimator (the core contribution).

:class:`StreamingADE` maintains a bounded-size mixture of weighted Gaussian
*cluster kernels* over an insert stream.  Each kernel stores a weight, a mean
vector and a per-attribute variance.  New tuples either open a new kernel or
are merged into the nearest existing kernel with a moment-preserving update,
so memory never exceeds the configured budget regardless of stream length.
An optional exponential decay down-weights stale kernels so the model tracks
concept drift; kernels whose weight decays below a pruning threshold are
dropped, freeing budget for the current distribution.

Range selectivities are computed exactly as for a product-Gaussian mixture:
each kernel contributes its weight times the product over attributes of the
normal mass inside the queried interval, where the per-attribute standard
deviation combines the kernel's own spread with a global smoothing bandwidth
(so even freshly created, zero-variance kernels are smoothed).

This is the streaming counterpart of :class:`repro.core.adaptive.AdaptiveKDEEstimator`:
kernels in dense regions accumulate weight and stay narrow, kernels in sparse
regions stay wide — the bandwidth adapts locally through the merge process
itself rather than through explicit Abramson factors.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np
from scipy import special

from repro.core.errors import InvalidParameterError, StreamError
from repro.core.estimator import FLOAT_BYTES, StreamingEstimator, register_estimator
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imported for type annotations only (avoids a package cycle)
    from repro.engine.table import Table

__all__ = ["StreamingADE"]


def _normal_interval_mass(
    lows: np.ndarray, highs: np.ndarray, means: np.ndarray, stds: np.ndarray
) -> np.ndarray:
    """Mass of N(means, stds²) inside [lows, highs], elementwise.

    Uses ``ndtr`` (the normal CDF evaluated directly) — several times faster
    than composing ``erf``, and this is the hot function of batch estimation.
    """
    mass = np.asarray(special.ndtr((highs - means) / stds))
    np.subtract(mass, special.ndtr((lows - means) / stds), out=mass)
    return np.clip(mass, 0.0, 1.0, out=mass)


@register_estimator("streaming_ade")
class StreamingADE(StreamingEstimator):
    """Bounded-memory streaming adaptive density estimator.

    Parameters
    ----------
    max_kernels:
        Maximum number of cluster kernels retained (the space budget).
    decay:
        Per-tuple exponential decay applied to existing kernel weights before
        each insert.  ``1.0`` disables decay (landmark model); values such as
        ``1 - 1e-4`` give a half-life of ≈6.9k tuples, letting the model
        forget pre-drift data.
    merge_threshold:
        Distance (in units of per-attribute smoothing bandwidths) under which
        a new tuple is merged into its nearest kernel even when budget is
        still available.  Keeps duplicate-heavy streams from exhausting the
        budget on identical points.
    prune_weight:
        Kernels whose weight falls below this fraction of the mean kernel
        weight are discarded during compression.
    smoothing_factor:
        Multiplier on the Scott-rule global smoothing bandwidth.
    seed:
        Seed for tie-breaking randomness (unused in the default policy but
        kept for reproducible subclasses).
    """

    name = "streaming_ade"

    def __init__(
        self,
        max_kernels: int = 256,
        decay: float = 1.0,
        merge_threshold: float = 0.25,
        prune_weight: float = 1e-3,
        smoothing_factor: float = 1.0,
        seed: int | None = 0,
    ) -> None:
        super().__init__()
        if max_kernels < 2:
            raise InvalidParameterError("max_kernels must be at least 2")
        if not 0.0 < decay <= 1.0:
            raise InvalidParameterError("decay must lie in (0, 1]")
        if merge_threshold < 0:
            raise InvalidParameterError("merge_threshold must be non-negative")
        if smoothing_factor <= 0:
            raise InvalidParameterError("smoothing_factor must be positive")
        self.max_kernels = int(max_kernels)
        self.decay = float(decay)
        self.merge_threshold = float(merge_threshold)
        self.prune_weight = float(prune_weight)
        self.smoothing_factor = float(smoothing_factor)
        self.seed = seed

        self._dims = 0
        self._means = np.empty((0, 0))
        self._variances = np.empty((0, 0))
        self._weights = np.empty(0)
        self._total_seen = 0.0
        self._domain_low = np.empty(0)
        self._domain_high = np.empty(0)
        # Running (decayed) sums used for the global smoothing bandwidth.
        self._sum_w = 0.0
        self._sum_wx = np.empty(0)
        self._sum_wx2 = np.empty(0)

    # -- lifecycle ---------------------------------------------------------
    def fit(self, table: Table, columns: Sequence[str] | None = None) -> "StreamingADE":
        """Initialise the model and stream every row of ``table`` through it."""
        columns = self._resolve_columns(table, columns)
        self.start(columns)
        data = table.columns(columns)
        if data.shape[0] > 0:
            self.insert(data)
        self._mark_fitted(columns, table.row_count)
        return self

    def start(self, columns: Sequence[str]) -> "StreamingADE":
        """Initialise an empty model over ``columns`` without any data.

        Use this when the relation is consumed purely as a stream; the model
        becomes usable (``is_fitted``) immediately with zero rows modelled.
        """
        columns = list(columns)
        if not columns:
            raise InvalidParameterError("at least one column is required")
        self._dims = len(columns)
        self._means = np.empty((0, self._dims))
        self._variances = np.empty((0, self._dims))
        self._weights = np.empty(0)
        self._total_seen = 0.0
        self._domain_low = np.full(self._dims, np.inf)
        self._domain_high = np.full(self._dims, -np.inf)
        self._sum_w = 0.0
        self._sum_wx = np.zeros(self._dims)
        self._sum_wx2 = np.zeros(self._dims)
        self._mark_fitted(columns, 0)
        return self

    # -- streaming maintenance -----------------------------------------------
    def insert(self, rows: np.ndarray) -> None:
        """Fold a batch of rows into the model, one tuple at a time."""
        if not self.is_fitted:
            raise StreamError("call fit() or start() before insert()")
        rows = np.atleast_2d(np.asarray(rows, dtype=float))
        if rows.shape[1] != self._dims:
            raise StreamError(
                f"insert expects rows with {self._dims} attributes, got {rows.shape[1]}"
            )
        for row in rows:
            self._insert_one(row)
        self._row_count += rows.shape[0]

    def _insert_one(self, row: np.ndarray) -> None:
        if self.decay < 1.0 and self._weights.size:
            self._weights *= self.decay
            self._sum_w *= self.decay
            self._sum_wx *= self.decay
            self._sum_wx2 *= self.decay
        self._total_seen += 1.0
        self._sum_w += 1.0
        self._sum_wx += row
        self._sum_wx2 += row * row
        self._domain_low = np.minimum(self._domain_low, row)
        self._domain_high = np.maximum(self._domain_high, row)

        if self._weights.size == 0:
            self._append_kernel(row)
            return

        smoothing = self._smoothing_bandwidths()
        distances = np.abs(self._means - row)
        scores = (distances / smoothing).max(axis=1)
        nearest = int(np.argmin(scores))

        at_capacity = self._weights.size >= self.max_kernels
        if not at_capacity:
            # Budget available: only coalesce near-duplicates, otherwise give
            # the tuple its own kernel so local structure is preserved.
            if scores[nearest] <= self.merge_threshold:
                self._merge_point(nearest, row)
            else:
                self._append_kernel(row)
            return

        # At capacity.  Absorb the tuple into its nearest kernel when it falls
        # within that kernel's natural catchment area (the expected spacing of
        # kernels over the observed domain).  A tuple far from every kernel —
        # an outlier or the first evidence of a drifted mode — must not
        # inflate an existing kernel's variance; instead the two closest
        # existing kernels are merged to free budget and the tuple becomes a
        # new, tight kernel (the classical M-Kernel maintenance step).
        spacing = self._kernel_spacing()
        within_catchment = bool(np.all(distances[nearest] <= spacing))
        if within_catchment:
            self._merge_point(nearest, row)
        else:
            self._merge_closest_pair()
            self._append_kernel(row)
        self._prune()

    def _kernel_spacing(self) -> np.ndarray:
        """Expected per-attribute spacing of ``max_kernels`` kernels over the domain."""
        width = self._domain_high - self._domain_low
        width = np.where(np.isfinite(width) & (width > 0), width, 1.0)
        spacing = width * self.max_kernels ** (-1.0 / self._dims)
        return np.maximum(spacing, self._smoothing_bandwidths())

    def _append_kernel(self, row: np.ndarray) -> None:
        self._means = np.vstack([self._means, row[None, :]])
        self._variances = np.vstack([self._variances, np.zeros((1, self._dims))])
        self._weights = np.append(self._weights, 1.0)

    def _merge_point(self, index: int, row: np.ndarray) -> None:
        """Moment-preserving merge of a unit-weight point into kernel ``index``."""
        w = self._weights[index]
        mean = self._means[index]
        var = self._variances[index]
        total = w + 1.0
        new_mean = (w * mean + row) / total
        # Combine within-kernel variance with the between-component spread.
        new_var = (w * (var + mean**2) + row**2) / total - new_mean**2
        self._weights[index] = total
        self._means[index] = new_mean
        self._variances[index] = np.maximum(new_var, 0.0)

    def _prune(self) -> None:
        """Drop kernels whose weight decayed to insignificance."""
        if self._weights.size == 0:
            return
        threshold = self.prune_weight * float(self._weights.mean())
        keep = self._weights >= threshold
        if keep.all():
            return
        # Never prune everything: keep at least the heaviest kernel.
        if not keep.any():
            keep[int(np.argmax(self._weights))] = True
        self._means = self._means[keep]
        self._variances = self._variances[keep]
        self._weights = self._weights[keep]

    def compress(self, target_kernels: int | None = None) -> None:
        """Merge closest kernel pairs until at most ``target_kernels`` remain.

        This is the offline compaction step; the online path never exceeds
        ``max_kernels``, but callers may shrink an existing model to a smaller
        budget (e.g. before shipping statistics to another node).
        """
        target = target_kernels if target_kernels is not None else self.max_kernels
        if target < 1:
            raise InvalidParameterError("target_kernels must be positive")
        while self._weights.size > target:
            self._merge_closest_pair()

    def _merge_closest_pair(self) -> None:
        smoothing = self._smoothing_bandwidths()
        normalised = self._means / smoothing
        # Pairwise max-norm distances; O(K²) but only used by compress().
        diff = np.abs(normalised[:, None, :] - normalised[None, :, :]).max(axis=2)
        np.fill_diagonal(diff, np.inf)
        i, j = np.unravel_index(int(np.argmin(diff)), diff.shape)
        wi, wj = self._weights[i], self._weights[j]
        total = wi + wj
        mean = (wi * self._means[i] + wj * self._means[j]) / total
        var = (
            wi * (self._variances[i] + self._means[i] ** 2)
            + wj * (self._variances[j] + self._means[j] ** 2)
        ) / total - mean**2
        self._weights[i] = total
        self._means[i] = mean
        self._variances[i] = np.maximum(var, 0.0)
        keep = np.ones(self._weights.size, dtype=bool)
        keep[j] = False
        self._means = self._means[keep]
        self._variances = self._variances[keep]
        self._weights = self._weights[keep]

    # -- model introspection -----------------------------------------------------
    @property
    def kernel_count(self) -> int:
        """Number of cluster kernels currently stored."""
        return int(self._weights.size)

    @property
    def kernel_weights(self) -> np.ndarray:
        """Copy of the kernel weights."""
        return self._weights.copy()

    @property
    def kernel_means(self) -> np.ndarray:
        """Copy of the kernel mean vectors (``(K, d)``)."""
        return self._means.copy()

    @property
    def kernel_variances(self) -> np.ndarray:
        """Copy of the per-attribute kernel variances (``(K, d)``)."""
        return self._variances.copy()

    @property
    def effective_count(self) -> float:
        """Decayed number of tuples the model currently represents."""
        return float(self._weights.sum())

    def memory_bytes(self) -> int:
        self._require_fitted()
        kernel_floats = self._weights.size * (2 * self._dims + 1)
        running_floats = 2 * self._dims + self._sum_wx.size + self._sum_wx2.size + 1
        return int((kernel_floats + running_floats) * FLOAT_BYTES)

    def _smoothing_bandwidths(self) -> np.ndarray:
        """Per-attribute smoothing bandwidth (Scott rule on the *local* spread).

        The scale is the weighted average within-kernel standard deviation,
        not the global standard deviation: on multimodal data the global
        spread covers the gaps between clusters and would smear kernel mass
        into empty regions — exactly the over-smoothing failure the adaptive
        estimator is meant to avoid.  While the model is young (all kernels
        still have zero variance) the global spread is used as a fallback.
        """
        if self._sum_w <= 0:
            return np.ones(self._dims)
        mean = self._sum_wx / self._sum_w
        global_var = np.maximum(self._sum_wx2 / self._sum_w - mean**2, 0.0)
        global_std = np.sqrt(global_var)
        if self._weights.size:
            total = float(self._weights.sum())
            within_var = (self._weights @ self._variances) / max(total, 1e-12)
            within_std = np.sqrt(np.maximum(within_var, 0.0))
        else:
            within_std = np.zeros(self._dims)
        width = np.where(
            np.isfinite(self._domain_high - self._domain_low),
            np.maximum(self._domain_high - self._domain_low, 0.0),
            1.0,
        )
        fallback = np.where(global_std > 0, global_std, np.maximum(width, 1.0) * 0.1)
        scale = np.where(within_std > 0, within_std, fallback)
        n_eff = max(self._sum_w, 2.0)
        h = scale * n_eff ** (-1.0 / (self._dims + 4))
        return np.maximum(h * self.smoothing_factor, 1e-9)

    # -- estimation -------------------------------------------------------------
    def _estimate_batch(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Mixture mass inside every query box, broadcast over all kernels.

        The ``(block, K)`` buffer of per-kernel masses is kept bounded by
        chunking over queries, so arbitrarily large batches stay in cache.
        """
        n = lows.shape[0]
        if self._weights.size == 0:
            return np.zeros(n)
        total = float(self._weights.sum())
        if total <= 0:
            return np.zeros(n)
        smoothing = self._smoothing_bandwidths()
        stds = np.sqrt(self._variances + smoothing**2)
        kernels = self._weights.size
        out = np.empty(n)
        block = max((1 << 21) // max(kernels, 1), 1)
        for start in range(0, n, block):
            stop = min(start + block, n)
            mass = np.ones((stop - start, kernels))
            for d in range(self._dims):
                mass *= _normal_interval_mass(
                    lows[start:stop, d, None],
                    highs[start:stop, d, None],
                    self._means[None, :, d],
                    stds[None, :, d],
                )
            out[start:stop] = mass @ self._weights / total
        return out

    def density(self, points: np.ndarray) -> np.ndarray:
        """Evaluate the mixture density at ``points`` (``(m, d)`` matrix)."""
        self._require_fitted()
        points = np.atleast_2d(np.asarray(points, dtype=float))
        if points.shape[1] != self._dims:
            raise InvalidParameterError(f"density expects {self._dims}-dimensional points")
        if self._weights.size == 0:
            return np.zeros(points.shape[0])
        smoothing = self._smoothing_bandwidths()
        stds = np.sqrt(self._variances + smoothing**2)
        total = float(self._weights.sum())
        result = np.zeros(points.shape[0])
        for start in range(0, points.shape[0], 1024):
            chunk = points[start : start + 1024]
            values = np.ones((chunk.shape[0], self._weights.size))
            for d in range(self._dims):
                z = (chunk[:, d, None] - self._means[None, :, d]) / stds[None, :, d]
                values *= np.exp(-0.5 * z * z) / (stds[None, :, d] * math.sqrt(2 * math.pi))
            result[start : start + 1024] = values @ self._weights / total
        return result
