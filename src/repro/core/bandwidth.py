"""Bandwidth selection rules for kernel density estimators.

The bandwidth controls the bias/variance trade-off of the KDE and is the
single most important parameter of a kernel-based selectivity estimator.
This module implements the selection rules compared in the evaluation:

* ``scott`` and ``silverman``: plug-in rules of thumb based on the sample
  standard deviation (robustified with the inter-quartile range).
* ``lscv``: least-squares cross-validation — minimises an unbiased estimate
  of the integrated squared error over a bandwidth grid.
* ``mlcv``: maximum-likelihood (leave-one-out) cross-validation.
* :func:`local_bandwidth_factors`: Abramson-style local factors used by the
  sample-point adaptive estimator.
* :func:`knn_bandwidths`: k-nearest-neighbour balloon bandwidths.

All functions operate on one attribute at a time; multivariate estimators
use product kernels and therefore per-attribute bandwidths.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.core.kernels import GaussianKernel, Kernel, get_kernel

__all__ = [
    "scott_bandwidth",
    "silverman_bandwidth",
    "robust_scale",
    "lscv_bandwidth",
    "mlcv_bandwidth",
    "select_bandwidth",
    "local_bandwidth_factors",
    "knn_bandwidths",
    "bandwidth_grid",
]

_MIN_BANDWIDTH = 1e-12


def robust_scale(values: np.ndarray) -> float:
    """Robust scale estimate ``min(std, IQR / 1.349)`` used by rules of thumb.

    Falls back to the standard deviation when the IQR is degenerate (heavily
    discretised data) and to a small positive constant when the data are
    constant, so that downstream bandwidths are always positive.
    """
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return 1.0
    std = float(np.std(values))
    q75, q25 = np.percentile(values, [75.0, 25.0])
    iqr = float(q75 - q25)
    # An IQR vanishingly small relative to the magnitude of the data is a
    # discretisation or floating-point artefact (e.g. a subnormal straggler
    # sitting between otherwise identical quartiles), not a usable scale:
    # treat it as degenerate so the rule stays shift invariant.
    magnitude = float(np.max(np.abs(values)))
    if iqr < max(magnitude, 1.0) * 1e-8:
        iqr = 0.0
    candidates = [c for c in (std, iqr / 1.349) if c > 0 and math.isfinite(c)]
    if not candidates:
        return _MIN_BANDWIDTH
    return min(candidates)


def scott_bandwidth(values: np.ndarray, dimensions: int = 1) -> float:
    """Scott's rule ``h = σ n^{-1/(d+4)}`` for one attribute of a d-dim estimator."""
    values = np.asarray(values, dtype=float)
    n = max(values.size, 1)
    scale = robust_scale(values)
    return max(scale * n ** (-1.0 / (dimensions + 4)), _MIN_BANDWIDTH)


def silverman_bandwidth(values: np.ndarray, dimensions: int = 1) -> float:
    """Silverman's rule ``h = σ (4 / (d+2))^{1/(d+4)} n^{-1/(d+4)}``."""
    values = np.asarray(values, dtype=float)
    n = max(values.size, 1)
    scale = robust_scale(values)
    factor = (4.0 / (dimensions + 2.0)) ** (1.0 / (dimensions + 4.0))
    return max(scale * factor * n ** (-1.0 / (dimensions + 4)), _MIN_BANDWIDTH)


def bandwidth_grid(values: np.ndarray, size: int = 20, span: float = 8.0) -> np.ndarray:
    """Geometric grid of candidate bandwidths around the Scott rule.

    The grid covers ``[h_scott / span, h_scott * span^(1/2)]`` which is wide
    enough to contain the CV optimum for the multimodal densities used in the
    evaluation while staying cheap to search.
    """
    if size < 2:
        raise InvalidParameterError("bandwidth grid needs at least 2 candidates")
    pilot = scott_bandwidth(values)
    low = pilot / span
    high = pilot * math.sqrt(span)
    return np.geomspace(max(low, _MIN_BANDWIDTH), max(high, 2 * _MIN_BANDWIDTH), size)


def _pairwise_offsets(values: np.ndarray, max_points: int, rng: np.random.Generator | None) -> np.ndarray:
    """Pairwise differences of (a subsample of) the data, used by CV criteria."""
    values = np.asarray(values, dtype=float).ravel()
    if values.size > max_points:
        rng = rng or np.random.default_rng(0)
        values = rng.choice(values, size=max_points, replace=False)
    return values[:, None] - values[None, :]


def lscv_bandwidth(
    values: np.ndarray,
    kernel: str | Kernel = "gaussian",
    candidates: Sequence[float] | None = None,
    max_points: int = 2000,
    rng: np.random.Generator | None = None,
) -> float:
    """Least-squares cross-validation bandwidth.

    Minimises the unbiased ISE estimate

        ``LSCV(h) = ∫ f̂² - 2/n Σ_i f̂_{-i}(x_i)``

    over a geometric candidate grid.  For the Gaussian kernel, ``∫ f̂²`` has
    the closed form convolution ``K*K = N(0, 2)``; for compact kernels the
    convolution is approximated numerically on the standardised offsets.
    """
    values = np.asarray(values, dtype=float).ravel()
    n = values.size
    if n < 3:
        return scott_bandwidth(values)
    kernel = get_kernel(kernel)
    if candidates is None:
        candidates = bandwidth_grid(values)
    diffs = _pairwise_offsets(values, max_points, rng)
    m = diffs.shape[0]
    off_diagonal = ~np.eye(m, dtype=bool)

    gaussian = isinstance(kernel, GaussianKernel)
    best_h = float(candidates[0])
    best_score = math.inf
    for h in candidates:
        u = diffs / h
        if gaussian:
            conv = np.exp(-0.25 * u * u) / (2.0 * math.sqrt(math.pi))
        else:
            conv = _numeric_self_convolution(kernel, u)
        leave_one_out = kernel.pdf(u)[off_diagonal]
        integral_sq = conv.sum() / (m * m * h)
        cross = 2.0 * leave_one_out.sum() / (m * (m - 1) * h)
        score = integral_sq - cross
        if score < best_score:
            best_score = score
            best_h = float(h)
    return max(best_h, _MIN_BANDWIDTH)


def _numeric_self_convolution(kernel: Kernel, u: np.ndarray, points: int = 64) -> np.ndarray:
    """Numerically evaluate ``(K*K)(u)`` for kernels without a closed form."""
    radius = kernel.support_radius if math.isfinite(kernel.support_radius) else 6.0
    grid = np.linspace(-radius, radius, points)
    weights = kernel.pdf(grid)
    step = grid[1] - grid[0]
    # (K*K)(u) = ∫ K(t) K(u - t) dt approximated by the trapezoid rule.
    shifted = kernel.pdf(u[..., None] - grid)
    return np.trapezoid(shifted * weights, dx=step, axis=-1)


def mlcv_bandwidth(
    values: np.ndarray,
    kernel: str | Kernel = "gaussian",
    candidates: Sequence[float] | None = None,
    max_points: int = 2000,
    rng: np.random.Generator | None = None,
) -> float:
    """Maximum-likelihood (leave-one-out) cross-validation bandwidth."""
    values = np.asarray(values, dtype=float).ravel()
    n = values.size
    if n < 3:
        return scott_bandwidth(values)
    kernel = get_kernel(kernel)
    if candidates is None:
        candidates = bandwidth_grid(values)
    diffs = _pairwise_offsets(values, max_points, rng)
    m = diffs.shape[0]
    off_diagonal = ~np.eye(m, dtype=bool)

    best_h = float(candidates[0])
    best_score = -math.inf
    for h in candidates:
        contributions = kernel.pdf(diffs / h)
        contributions = np.where(off_diagonal, contributions, 0.0)
        leave_one_out = contributions.sum(axis=1) / ((m - 1) * h)
        log_likelihood = float(np.sum(np.log(np.maximum(leave_one_out, 1e-300))))
        if log_likelihood > best_score:
            best_score = log_likelihood
            best_h = float(h)
    return max(best_h, _MIN_BANDWIDTH)


_RULES: dict[str, Callable[..., float]] = {
    "scott": scott_bandwidth,
    "silverman": silverman_bandwidth,
}


def select_bandwidth(
    values: np.ndarray,
    rule: str = "scott",
    dimensions: int = 1,
    kernel: str | Kernel = "gaussian",
    rng: np.random.Generator | None = None,
) -> float:
    """Select a bandwidth for one attribute using the named rule.

    ``rule`` is one of ``"scott"``, ``"silverman"``, ``"lscv"``, ``"mlcv"``.
    """
    if rule in _RULES:
        return _RULES[rule](values, dimensions=dimensions)
    if rule == "lscv":
        return lscv_bandwidth(values, kernel=kernel, rng=rng)
    if rule == "mlcv":
        return mlcv_bandwidth(values, kernel=kernel, rng=rng)
    raise InvalidParameterError(
        f"unknown bandwidth rule {rule!r}; expected scott, silverman, lscv or mlcv"
    )


def local_bandwidth_factors(
    pilot_density: np.ndarray, sensitivity: float = 0.5, max_factor: float = 3.0
) -> np.ndarray:
    """Abramson-style local bandwidth factors from a pilot density estimate.

    Sample points in low-density regions get larger factors (wider kernels),
    points in dense regions get smaller factors.  Factors are normalised so
    their geometric mean is 1, which keeps the global amount of smoothing
    comparable to the fixed-bandwidth estimator, and clipped to
    ``[1/max_factor, max_factor]``: unclipped Abramson factors in the far
    tails spread kernel mass deep into empty regions, which is precisely
    where range-selectivity error is measured most harshly.

    Parameters
    ----------
    pilot_density:
        Pilot density evaluated at every sample point (positive values).
    sensitivity:
        Exponent ``α ∈ [0, 1]``; 0 reproduces the fixed-bandwidth estimator,
        0.5 is Abramson's square-root law.
    max_factor:
        Symmetric clip bound on the factors (must be ≥ 1).
    """
    if not 0.0 <= sensitivity <= 1.0:
        raise InvalidParameterError("sensitivity must lie in [0, 1]")
    if max_factor < 1.0:
        raise InvalidParameterError("max_factor must be at least 1")
    density = np.asarray(pilot_density, dtype=float)
    if density.size == 0:
        return np.ones(0)
    floor = max(float(np.max(density)) * 1e-12, 1e-300)
    density = np.maximum(density, floor)
    log_geometric_mean = float(np.mean(np.log(density)))
    geometric_mean = math.exp(log_geometric_mean)
    factors = (density / geometric_mean) ** (-sensitivity)
    return np.clip(factors, 1.0 / max_factor, max_factor)


def knn_bandwidths(values: np.ndarray, k: int | None = None) -> np.ndarray:
    """k-nearest-neighbour bandwidths: distance of each point to its k-th neighbour.

    A simple balloon-style local bandwidth used as an alternative adaptive
    scheme in the bandwidth ablation; O(n log n) via sorting (1-D only).
    """
    values = np.asarray(values, dtype=float).ravel()
    n = values.size
    if n == 0:
        return np.ones(0)
    if k is None:
        k = max(int(round(math.sqrt(n))), 1)
    k = min(max(k, 1), n - 1) if n > 1 else 1
    order = np.argsort(values)
    sorted_values = values[order]
    bandwidths = np.empty(n)
    for rank, value in enumerate(sorted_values):
        low = max(rank - k, 0)
        high = min(rank + k, n - 1)
        window = sorted_values[low : high + 1]
        distances = np.sort(np.abs(window - value))
        index = min(k, distances.size - 1)
        bandwidths[rank] = max(distances[index], _MIN_BANDWIDTH)
    result = np.empty(n)
    result[order] = bandwidths
    return result
