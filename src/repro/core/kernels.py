"""Kernel functions for kernel density estimation.

Every kernel is a symmetric, non-negative function ``K(u)`` that integrates
to one.  For selectivity estimation we additionally need, for every kernel,
the *interval mass*

    ``mass(a, b) = ∫_a^b K(u) du``

because a range predicate asks for the probability mass of the model inside
an axis-aligned box, not for point densities.  Each kernel therefore exposes
``pdf``, ``cdf`` and ``interval_mass`` as vectorised numpy operations.

All kernels here are *product kernels* in the multivariate case: the
multivariate kernel is the product of one-dimensional kernels applied per
attribute, which keeps box-mass computations closed form.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Mapping

import numpy as np
from scipy import special

from repro.core.errors import InvalidParameterError

__all__ = [
    "Kernel",
    "GaussianKernel",
    "EpanechnikovKernel",
    "BiweightKernel",
    "TriangularKernel",
    "UniformKernel",
    "get_kernel",
    "KERNELS",
]

_SQRT2 = math.sqrt(2.0)
_INV_SQRT_2PI = 1.0 / math.sqrt(2.0 * math.pi)


class Kernel(ABC):
    """Abstract univariate smoothing kernel.

    Subclasses implement the standardised kernel ``K(u)`` (bandwidth 1);
    scaling by a bandwidth ``h`` is always done by the caller via
    ``K((x - xi) / h) / h``.
    """

    #: short registry name, e.g. ``"gaussian"``
    name: str = "kernel"

    @abstractmethod
    def pdf(self, u: np.ndarray) -> np.ndarray:
        """Kernel density at standardised offsets ``u``."""

    @abstractmethod
    def cdf(self, u: np.ndarray) -> np.ndarray:
        """Cumulative kernel mass on ``(-inf, u]``."""

    @property
    @abstractmethod
    def variance(self) -> float:
        """Second moment ``∫ u² K(u) du`` of the kernel."""

    @property
    @abstractmethod
    def roughness(self) -> float:
        """Roughness ``R(K) = ∫ K(u)² du`` of the kernel."""

    @property
    def support_radius(self) -> float:
        """Radius beyond which the kernel is exactly zero (``inf`` if unbounded)."""
        return math.inf

    def effective_support_radius(self, epsilon: float) -> float:
        """Radius beyond which the one-sided tail mass is at most ``epsilon``.

        Compact kernels return their exact support radius (culling beyond it
        loses no mass at all); unbounded kernels override with an
        epsilon-derived radius.  The inherited ``inf`` makes support culling
        retain every kernel, degrading the query fast path gracefully to the
        dense path for kernels without a tail bound.
        """
        return self.support_radius

    # -- derived quantities ------------------------------------------------
    def interval_mass(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Mass of the kernel on the interval ``[a, b]`` (standardised units)."""
        mass = np.asarray(self.cdf(np.asarray(b, dtype=float)))
        mass = np.subtract(mass, self.cdf(np.asarray(a, dtype=float)), out=mass)
        return np.clip(mass, 0.0, 1.0, out=mass)

    @property
    def canonical_bandwidth_factor(self) -> float:
        """The kernel-dependent constant ``δ₀`` used to convert rule-of-thumb
        bandwidths between kernels (relative to the Gaussian kernel).

        ``δ₀ = (R(K) / variance²)^(1/5)``; dividing by the Gaussian value
        rescales a bandwidth chosen for a Gaussian kernel so that another
        kernel has equivalent smoothing.
        """
        return (self.roughness / (self.variance**2)) ** 0.2

    def efficiency(self) -> float:
        """Asymptotic MISE efficiency relative to the Epanechnikov kernel."""
        epan = EpanechnikovKernel()
        own = math.sqrt(self.variance) * self.roughness
        best = math.sqrt(epan.variance) * epan.roughness
        return best / own

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other)

    def __hash__(self) -> int:
        return hash(type(self))


class GaussianKernel(Kernel):
    """Standard normal kernel.  Unbounded support; smooth everywhere."""

    name = "gaussian"

    def pdf(self, u: np.ndarray) -> np.ndarray:
        u = np.asarray(u, dtype=float)
        return _INV_SQRT_2PI * np.exp(-0.5 * u * u)

    def cdf(self, u: np.ndarray) -> np.ndarray:
        u = np.asarray(u, dtype=float)
        # ndtr is the normal CDF evaluated directly; it is several times
        # faster than composing erf and is the hot function of every
        # Gaussian-kernel batch estimate.
        return special.ndtr(u)

    def effective_support_radius(self, epsilon: float) -> float:
        """The radius with ``Φ(-r) ≤ epsilon`` (tail mass beyond ``r``)."""
        from repro.core.fastpath import gaussian_tail_radius  # lazy: import order

        return gaussian_tail_radius(epsilon)

    @property
    def variance(self) -> float:
        return 1.0

    @property
    def roughness(self) -> float:
        return 1.0 / (2.0 * math.sqrt(math.pi))


class EpanechnikovKernel(Kernel):
    """Epanechnikov kernel ``K(u) = 0.75 (1 - u²)`` on ``[-1, 1]``.

    MISE-optimal among second-order kernels; compact support makes range
    masses cheap because distant kernels contribute exactly zero.
    """

    name = "epanechnikov"

    def pdf(self, u: np.ndarray) -> np.ndarray:
        u = np.asarray(u, dtype=float)
        inside = np.abs(u) <= 1.0
        return np.where(inside, 0.75 * (1.0 - u * u), 0.0)

    def cdf(self, u: np.ndarray) -> np.ndarray:
        u = np.clip(np.asarray(u, dtype=float), -1.0, 1.0)
        return 0.25 * (2.0 + 3.0 * u - u**3)

    @property
    def variance(self) -> float:
        return 0.2

    @property
    def roughness(self) -> float:
        return 0.6

    @property
    def support_radius(self) -> float:
        return 1.0


class BiweightKernel(Kernel):
    """Biweight (quartic) kernel ``K(u) = 15/16 (1 - u²)²`` on ``[-1, 1]``."""

    name = "biweight"

    def pdf(self, u: np.ndarray) -> np.ndarray:
        u = np.asarray(u, dtype=float)
        inside = np.abs(u) <= 1.0
        t = 1.0 - u * u
        return np.where(inside, (15.0 / 16.0) * t * t, 0.0)

    def cdf(self, u: np.ndarray) -> np.ndarray:
        u = np.clip(np.asarray(u, dtype=float), -1.0, 1.0)
        return (15.0 / 16.0) * (u - 2.0 * u**3 / 3.0 + u**5 / 5.0) + 0.5

    @property
    def variance(self) -> float:
        return 1.0 / 7.0

    @property
    def roughness(self) -> float:
        return 5.0 / 7.0

    @property
    def support_radius(self) -> float:
        return 1.0


class TriangularKernel(Kernel):
    """Triangular kernel ``K(u) = 1 - |u|`` on ``[-1, 1]``."""

    name = "triangular"

    def pdf(self, u: np.ndarray) -> np.ndarray:
        u = np.asarray(u, dtype=float)
        return np.maximum(1.0 - np.abs(u), 0.0)

    def cdf(self, u: np.ndarray) -> np.ndarray:
        u = np.clip(np.asarray(u, dtype=float), -1.0, 1.0)
        left = 0.5 * (1.0 + u) ** 2
        right = 1.0 - 0.5 * (1.0 - u) ** 2
        return np.where(u < 0.0, left, right)

    @property
    def variance(self) -> float:
        return 1.0 / 6.0

    @property
    def roughness(self) -> float:
        return 2.0 / 3.0

    @property
    def support_radius(self) -> float:
        return 1.0


class UniformKernel(Kernel):
    """Uniform (boxcar) kernel ``K(u) = 1/2`` on ``[-1, 1]``."""

    name = "uniform"

    def pdf(self, u: np.ndarray) -> np.ndarray:
        u = np.asarray(u, dtype=float)
        return np.where(np.abs(u) <= 1.0, 0.5, 0.0)

    def cdf(self, u: np.ndarray) -> np.ndarray:
        u = np.clip(np.asarray(u, dtype=float), -1.0, 1.0)
        return 0.5 * (u + 1.0)

    @property
    def variance(self) -> float:
        return 1.0 / 3.0

    @property
    def roughness(self) -> float:
        return 0.5

    @property
    def support_radius(self) -> float:
        return 1.0


KERNELS: Mapping[str, type[Kernel]] = {
    GaussianKernel.name: GaussianKernel,
    EpanechnikovKernel.name: EpanechnikovKernel,
    BiweightKernel.name: BiweightKernel,
    TriangularKernel.name: TriangularKernel,
    UniformKernel.name: UniformKernel,
}


def get_kernel(kernel: str | Kernel) -> Kernel:
    """Resolve a kernel by registry name or pass an instance through.

    >>> get_kernel("gaussian")
    GaussianKernel()
    """
    if isinstance(kernel, Kernel):
        return kernel
    try:
        return KERNELS[kernel]()
    except KeyError:
        raise InvalidParameterError(
            f"unknown kernel {kernel!r}; available: {sorted(KERNELS)}"
        ) from None
