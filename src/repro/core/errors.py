"""Exception hierarchy for the repro library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming mistakes such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class NotFittedError(ReproError):
    """An estimator method that requires ``fit()`` was called before fitting."""


class DimensionMismatchError(ReproError):
    """A query or data batch does not match the estimator's attribute set."""


class InvalidQueryError(ReproError):
    """A query is malformed (e.g. lower bound above upper bound)."""


class InvalidParameterError(ReproError):
    """A constructor or method argument is outside its valid domain."""


class BudgetError(ReproError):
    """A space budget is too small to build the requested synopsis."""


class CatalogError(ReproError):
    """A table or column referenced in the catalog does not exist."""


class SchemaError(ReproError):
    """A typed-column operation does not match the table schema (unknown
    dictionary value, predicate kind not valid for the column kind, ...)."""


class StreamError(ReproError):
    """A streaming operation was used incorrectly (e.g. insert before fit)."""


class PersistenceError(ReproError):
    """A model snapshot or store operation failed (bad format, unknown model)."""


class SnapshotCorruptError(PersistenceError):
    """A snapshot file on disk is damaged (torn write, bit rot, truncation).

    Distinct from the plain :class:`PersistenceError` cases (wrong format
    version, foreign file): corruption means the bytes do not match what was
    written, so the store's recovery machinery (quarantine + rollback to the
    newest intact version) applies.  Carries the offending ``path`` and,
    when known, the ``version`` that failed.
    """

    def __init__(self, path: str, detail: str, version: "int | None" = None) -> None:
        at = f" (version {version})" if version is not None else ""
        super().__init__(f"corrupt snapshot {path}{at}: {detail}")
        self.path = str(path)
        self.version = version
        self.detail = detail


class InjectedFault(ReproError):
    """A fault fired by an armed :class:`repro.fault.FaultPlan` rule.

    The stand-in for transient infrastructure failures (a crashed shard
    worker, a failed write) in deterministic fault-injection tests; recovery
    layers treat it as transient and retriable.  Carries the injection
    ``point`` that fired.
    """

    def __init__(self, point: str, message: str = "") -> None:
        super().__init__(
            f"injected fault at {point!r}" + (f": {message}" if message else "")
        )
        self.point = point


class CircuitOpenError(ReproError):
    """A request was shed by an open serving circuit breaker.

    Raised only when the breaker is open (or the served model faulted) *and*
    neither a last-good cached result nor a fallback estimator could answer
    the plan.  Carries the breaker ``state`` at refusal time.
    """

    def __init__(self, state: str, message: str = "") -> None:
        super().__init__(
            f"circuit breaker {state}" + (f": {message}" if message else "")
        )
        self.state = state


class AdmissionRejected(ReproError):
    """A request was refused by the serving tier's admission controller.

    Carries the ``tenant`` and ``op`` that were refused plus a ``reason``:
    ``"tokens"`` (the tenant's token bucket is empty) or ``"shed"`` (the
    tail-driven load-shedding policy is throttling this op class because an
    SLO-protected tenant's trailing p99 is over target).
    """

    def __init__(self, tenant: str, op: str, reason: str) -> None:
        super().__init__(
            f"admission rejected for tenant {tenant!r} op {op!r} ({reason})"
        )
        self.tenant = tenant
        self.op = op
        self.reason = reason
