"""Fixed-bandwidth kernel density selectivity estimator.

:class:`KDESelectivityEstimator` is the classical kernel-based synopsis: a
uniform random sample of the relation is retained and every sample point is
smoothed with a product kernel.  The selectivity of a conjunctive range
predicate ``Π_d [a_d, b_d]`` is the model mass inside the box,

    ``sel(Q) = (1/W) Σ_i w_i Π_d [ F_d((b_d - x_{id}) / h_d) - F_d((a_d - x_{id}) / h_d) ]``

which is closed form for product kernels because the box factorises per
attribute.  Optional boundary correction by reflection keeps mass from
leaking outside the attribute domains (important for bounded domains such as
``[0, 1]`` grades or ages).

The estimator is *space budgeted*: its footprint is the retained sample plus
one bandwidth per attribute, so it can be compared with histograms and other
synopses at equal byte budgets.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.core import fastpath
from repro.core.bandwidth import select_bandwidth
from repro.core.errors import InvalidParameterError
from repro.core.estimator import (
    FLOAT_BYTES,
    SelectivityEstimator,
    register_estimator,
)
from repro.core.kernels import Kernel, get_kernel
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imported for type annotations only (avoids a package cycle)
    from repro.engine.table import Table

__all__ = ["KDESelectivityEstimator"]


@register_estimator("kde")
class KDESelectivityEstimator(SelectivityEstimator):
    """Sample-based product-kernel density estimator for range selectivities.

    Parameters
    ----------
    sample_size:
        Number of rows retained from the relation.  ``None`` keeps all rows.
    kernel:
        Kernel name or :class:`~repro.core.kernels.Kernel` instance.
    bandwidth_rule:
        ``"scott"``, ``"silverman"``, ``"lscv"`` or ``"mlcv"``; or pass
        explicit per-attribute bandwidths via ``bandwidths``.
    bandwidths:
        Optional explicit bandwidths (sequence aligned with the fitted
        columns), overriding ``bandwidth_rule``.
    boundary_correction:
        When true, sample points are reflected at the attribute domain
        boundaries so no probability mass falls outside the observed domain.
    seed:
        Seed for the sampling generator (reproducibility).
    fastpath:
        When true (default), batch estimation runs through the support-culling
        query fast path (:mod:`repro.core.fastpath`), which matches the dense
        path to :data:`~repro.core.fastpath.DEFAULT_ATOL`.  Set ``False`` to
        pin the estimator to the dense reference path (debugging, exact
        reproduction of pre-fast-path numbers).
    """

    name = "kde"

    def __init__(
        self,
        sample_size: int | None = 1000,
        kernel: str | Kernel = "gaussian",
        bandwidth_rule: str = "scott",
        bandwidths: Sequence[float] | None = None,
        boundary_correction: bool = True,
        seed: int | None = 0,
        fastpath: bool = True,
    ) -> None:
        super().__init__()
        if sample_size is not None and sample_size < 1:
            raise InvalidParameterError("sample_size must be positive or None")
        self.sample_size = sample_size
        self.kernel = get_kernel(kernel)
        self.bandwidth_rule = bandwidth_rule
        self._explicit_bandwidths = (
            np.asarray(bandwidths, dtype=float) if bandwidths is not None else None
        )
        self.boundary_correction = boundary_correction
        self.seed = seed
        self.fastpath = bool(fastpath)

        self._points: np.ndarray = np.empty((0, 0))
        self._weights: np.ndarray = np.empty(0)
        self._bandwidths: np.ndarray = np.empty(0)
        self._domain_low: np.ndarray = np.empty(0)
        self._domain_high: np.ndarray = np.empty(0)
        # Staleness counter + cached (epoch, KernelSupportIndex) pair for the
        # query fast path; every synopsis mutation bumps the epoch and the
        # index is rebuilt lazily on the next estimate (one atomic attribute,
        # so concurrent readers at worst rebuild — an idempotent race).
        self._synopsis_epoch = 0
        self._support_cache: tuple[int, fastpath.KernelSupportIndex] | None = None

    # -- fitting -------------------------------------------------------------
    def fit(self, table: Table, columns: Sequence[str] | None = None) -> "KDESelectivityEstimator":
        columns = self._resolve_columns(table, columns)
        data = table.columns(columns)
        rng = np.random.default_rng(self.seed)
        if self.sample_size is not None and data.shape[0] > self.sample_size:
            index = rng.choice(data.shape[0], size=self.sample_size, replace=False)
            sample = data[index]
        else:
            sample = data.copy()
        self._points = sample
        self._weights = np.ones(sample.shape[0], dtype=float)
        self._fit_domain(data)
        self._fit_bandwidths(sample, rng)
        self._invalidate_support_index()
        self._mark_fitted(columns, table.row_count)
        return self

    def _invalidate_support_index(self) -> None:
        """Bump the staleness counter: the synopsis geometry changed."""
        self._synopsis_epoch += 1
        self._support_cache = None

    def _fit_domain(self, data: np.ndarray) -> None:
        if data.size == 0:
            dims = data.shape[1] if data.ndim == 2 else 0
            self._domain_low = np.zeros(dims)
            self._domain_high = np.ones(dims)
            return
        self._domain_low = data.min(axis=0).astype(float)
        self._domain_high = data.max(axis=0).astype(float)

    def _fit_bandwidths(self, sample: np.ndarray, rng: np.random.Generator) -> None:
        dims = sample.shape[1]
        if self._explicit_bandwidths is not None:
            if self._explicit_bandwidths.size != dims:
                raise InvalidParameterError(
                    f"{self._explicit_bandwidths.size} bandwidths supplied for {dims} attributes"
                )
            if np.any(self._explicit_bandwidths <= 0):
                raise InvalidParameterError("bandwidths must be positive")
            self._bandwidths = self._explicit_bandwidths.copy()
            return
        if sample.shape[0] == 0:
            # Zero-row fit: there is nothing to select a bandwidth from.  The
            # estimator stays usable and answers 0.0 (no sample points means
            # no mass anywhere); placeholder bandwidths keep every downstream
            # formula finite.
            self._bandwidths = np.ones(dims)
            return
        bandwidths = np.empty(dims)
        for d in range(dims):
            bandwidths[d] = select_bandwidth(
                sample[:, d],
                rule=self.bandwidth_rule,
                dimensions=dims,
                kernel=self.kernel,
                rng=rng,
            )
        self._bandwidths = bandwidths

    # -- persistence -----------------------------------------------------------
    def _config_params(self) -> dict:
        return {
            "sample_size": self.sample_size,
            "kernel": self.kernel.name,
            "bandwidth_rule": self.bandwidth_rule,
            "bandwidths": (
                None
                if self._explicit_bandwidths is None
                else [float(b) for b in self._explicit_bandwidths]
            ),
            "boundary_correction": self.boundary_correction,
            "seed": self.seed,
            "fastpath": self.fastpath,
        }

    def _state(self) -> tuple[dict, dict]:
        arrays = {
            "points": self._points,
            "weights": self._weights,
            "bandwidths": self._bandwidths,
            "domain_low": self._domain_low,
            "domain_high": self._domain_high,
        }
        return arrays, {}

    def _restore_state(self, arrays, meta) -> None:
        self._points = np.asarray(arrays["points"], dtype=float)
        self._weights = np.asarray(arrays["weights"], dtype=float)
        self._bandwidths = np.asarray(arrays["bandwidths"], dtype=float)
        self._domain_low = np.asarray(arrays["domain_low"], dtype=float)
        self._domain_high = np.asarray(arrays["domain_high"], dtype=float)
        self._invalidate_support_index()

    # -- introspection ---------------------------------------------------------
    @property
    def bandwidths(self) -> np.ndarray:
        """Per-attribute bandwidths chosen during ``fit``."""
        self._require_fitted()
        return self._bandwidths.copy()

    @property
    def sample_points(self) -> np.ndarray:
        """The retained sample (``(m, d)`` matrix)."""
        self._require_fitted()
        return self._points.copy()

    def set_bandwidths(self, bandwidths: Sequence[float]) -> None:
        """Override the per-attribute bandwidths of a fitted estimator."""
        self._require_fitted()
        bandwidths = np.asarray(bandwidths, dtype=float)
        if bandwidths.size != self._points.shape[1]:
            raise InvalidParameterError(
                f"{bandwidths.size} bandwidths supplied for {self._points.shape[1]} attributes"
            )
        if np.any(bandwidths <= 0):
            raise InvalidParameterError("bandwidths must be positive")
        self._bandwidths = bandwidths
        self._invalidate_support_index()

    def memory_bytes(self) -> int:
        self._require_fitted()
        sample_floats = self._points.size + self._weights.size
        parameter_floats = self._bandwidths.size + self._domain_low.size + self._domain_high.size
        return int((sample_floats + parameter_floats) * FLOAT_BYTES)

    # -- estimation -------------------------------------------------------------
    def _estimate_batch(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Box mass of the kernel mixture for ``(n, d)`` bound matrices.

        Selective batches run through the support-culling fast path
        (:func:`repro.core.fastpath.estimate_boxes`); everything else — and
        estimators built with ``fastpath=False`` — runs the dense reference
        path on the same batched product-kernel CDF micro-kernel.
        """
        n = lows.shape[0]
        if self._points.shape[0] == 0:
            return np.zeros(n)
        total_weight = float(self._weights.sum())
        if total_weight <= 0:
            return np.zeros(n)
        if self.fastpath and fastpath.fastpath_enabled():
            culled = fastpath.estimate_boxes(
                lows, highs, self._support_index(), self._weights, total_weight,
                self._axis_mass,
            )
            if culled is not None:
                return culled
        return fastpath.weighted_box_masses(
            lows, highs, self._axis_mass, self._weights, total_weight
        )

    def _support_index(self) -> "fastpath.KernelSupportIndex":
        """The cached per-dimension support-culling index (lazily rebuilt)."""
        cached = self._support_cache
        if cached is not None and cached[0] == self._synopsis_epoch:
            return cached[1]
        index = fastpath.KernelSupportIndex(self._points, self._support_radii())
        self._support_cache = (self._synopsis_epoch, index)
        return index

    def _support_radii(self) -> np.ndarray:
        """Per-axis effective support radii (``(d,)``; subclasses widen per point)."""
        scale = self.kernel.effective_support_radius(fastpath.cull_epsilon())
        return self._bandwidths * scale

    def _axis_bandwidths(self, axis: int, ids: np.ndarray | None) -> float | np.ndarray:
        """Bandwidth(s) along one axis; adaptive subclasses return per-point arrays."""
        return float(self._bandwidths[axis])

    def _axis_mass(
        self, ids: np.ndarray | None, axis: int, low: np.ndarray, high: np.ndarray
    ) -> np.ndarray:
        """Kernel mass of every (query, point) pair on one axis, with reflection.

        ``ids`` selects the candidate sample points (``None``: all of them),
        ``low`` / ``high`` are the ``(k,)`` per-query bounds; the result is
        ``(k, m)``.  Centers are pre-divided by the bandwidth so each CDF
        argument costs a single broadcast pass — this is the hot loop of
        batch estimation.
        """
        centers = self._points[:, axis] if ids is None else self._points[ids, axis]
        h = self._axis_bandwidths(axis, ids)
        inv_h = 1.0 / h
        scaled_centers = centers * inv_h
        domain_low = self._domain_low[axis]
        domain_high = self._domain_high[axis]
        if not self.boundary_correction or not (
            math.isfinite(domain_low) and math.isfinite(domain_high)
        ):
            return self._scaled_axis_mass(scaled_centers, inv_h, low, high)
        # Reflection: mirror each kernel at the domain boundaries and fold the
        # reflected mass that re-enters the query interval back in.  The query
        # interval is clipped to the domain first because no data exists outside.
        clipped_low = np.maximum(low, domain_low)
        clipped_high = np.minimum(high, domain_high)
        mass = self._scaled_axis_mass(scaled_centers, inv_h, clipped_low, clipped_high)
        mass += self._scaled_axis_mass(
            (2.0 * domain_low - centers) * inv_h, inv_h, clipped_low, clipped_high
        )
        mass += self._scaled_axis_mass(
            (2.0 * domain_high - centers) * inv_h, inv_h, clipped_low, clipped_high
        )
        np.clip(mass, 0.0, 1.0, out=mass)
        empty = clipped_low > clipped_high
        if np.any(empty):
            mass[empty] = 0.0
        return mass

    def _scaled_axis_mass(
        self,
        scaled_centers: np.ndarray,
        inv_bandwidth: float | np.ndarray,
        low: np.ndarray,
        high: np.ndarray,
    ) -> np.ndarray:
        """Kernel mass from pre-scaled centers: args are ``bound/h - center/h``."""
        if np.ndim(inv_bandwidth) == 0:
            lower = (low * inv_bandwidth)[:, None] - scaled_centers
            upper = (high * inv_bandwidth)[:, None] - scaled_centers
        else:
            lower = low[:, None] * inv_bandwidth - scaled_centers
            upper = high[:, None] * inv_bandwidth - scaled_centers
        return self.kernel.interval_mass(lower, upper)

    # -- density (used by MISE metrics and the bandwidth ablation) ------------
    def density(self, points: np.ndarray) -> np.ndarray:
        """Evaluate the estimated joint density at ``points`` (``(m, d)`` matrix)."""
        self._require_fitted()
        points = np.atleast_2d(np.asarray(points, dtype=float))
        if points.shape[1] != self._points.shape[1]:
            raise InvalidParameterError(
                f"density expects {self._points.shape[1]}-dimensional points"
            )
        if self._points.shape[0] == 0:
            return np.zeros(points.shape[0])
        total_weight = float(self._weights.sum())
        result = np.zeros(points.shape[0])
        # Evaluate in blocks so memory stays bounded for large samples.
        block = 2048
        for start in range(0, points.shape[0], block):
            chunk = points[start : start + block]
            values = np.ones((chunk.shape[0], self._points.shape[0]))
            for d in range(self._points.shape[1]):
                h = self._bandwidths[d]
                u = (chunk[:, d, None] - self._points[None, :, d]) / h
                values *= self.kernel.pdf(u) / h
            result[start : start + block] = values @ self._weights / total_weight
        return result
