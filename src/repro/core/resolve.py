"""Uniform resolution of estimator specifications.

Wrapper estimators (the feedback wrapper, the sharded front end, the expert
ensemble) all accept an inner estimator given as any of

* a :class:`~repro.core.estimator.SelectivityEstimator` **instance**,
* a registry **name** string (``"kde"``),
* a ``{"name": ..., **params}`` **config mapping** — which is how snapshot
  and describe round-trips reconstruct nested wrappers through
  :func:`~repro.core.estimator.estimator_from_config`.

:func:`resolve_estimator` is the one shared implementation of that
convention, so arbitrarily nested wrapper configs (ensemble-of-feedback-of-
kde) round-trip uniformly.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.core.errors import InvalidParameterError
from repro.core.estimator import (
    SelectivityEstimator,
    create_estimator,
    estimator_from_config,
)

__all__ = ["resolve_estimator"]


def resolve_estimator(
    spec: "SelectivityEstimator | Mapping[str, Any] | str | None",
    default: Callable[[], SelectivityEstimator] | None = None,
    *,
    what: str = "estimator",
) -> SelectivityEstimator:
    """Resolve an estimator spec (instance / registry name / config mapping).

    ``default`` is a zero-argument factory used when ``spec`` is ``None``;
    without one, ``None`` is rejected.  ``what`` names the parameter in error
    messages (``"base"``, ``"expert"``, ...).
    """
    if spec is None:
        if default is None:
            raise InvalidParameterError(f"{what} specification is required")
        return default()
    if isinstance(spec, SelectivityEstimator):
        return spec
    if isinstance(spec, str):
        return create_estimator(spec)
    if isinstance(spec, Mapping):
        return estimator_from_config(spec)
    raise InvalidParameterError(
        f"{what} must be an estimator instance, registry name or config "
        f"mapping, got {type(spec).__name__}"
    )
