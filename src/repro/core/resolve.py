"""Uniform resolution of pluggable-component specifications.

Registry-backed components across the repo — estimators, metrics exporters,
weighting policies — all accept a spec given as any of

* a component **instance**,
* a registry **name** string (``"kde"``, ``"jsonl"``),
* a ``{"name": ..., **params}`` **config mapping** — which is how snapshot
  and describe round-trips reconstruct nested wrappers through
  ``*_from_config`` factories.

:func:`resolve_component` is the one shared implementation of that
convention; :func:`resolve_estimator` binds it to the estimator registry
(used by the feedback wrapper, the sharded front end, and the expert
ensemble, so arbitrarily nested wrapper configs round-trip uniformly), and
:func:`repro.obs.export.resolve_exporter` binds it to the exporter registry.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, TypeVar

from repro.core.errors import InvalidParameterError
from repro.core.estimator import (
    SelectivityEstimator,
    create_estimator,
    estimator_from_config,
)

__all__ = ["resolve_component", "resolve_estimator"]

T = TypeVar("T")


def resolve_component(
    spec: "T | Mapping[str, Any] | str | None",
    *,
    base_type: type,
    create: Callable[[str], T],
    from_config: Callable[[Mapping[str, Any]], T],
    default: Callable[[], T] | None = None,
    what: str = "component",
    kind: str = "component",
) -> T:
    """Resolve a component spec (instance / registry name / config mapping).

    ``base_type`` is the instance type accepted as-is, ``create`` builds from
    a registry name, ``from_config`` from a ``{"name": ..., **params}``
    mapping.  ``default`` is a zero-argument factory used when ``spec`` is
    ``None``; without one, ``None`` is rejected.  ``what`` names the
    parameter and ``kind`` the component family in error messages.
    """
    if spec is None:
        if default is None:
            raise InvalidParameterError(f"{what} specification is required")
        return default()
    if isinstance(spec, base_type):
        return spec
    if isinstance(spec, str):
        return create(spec)
    if isinstance(spec, Mapping):
        return from_config(spec)
    raise InvalidParameterError(
        f"{what} must be {'an' if kind[0] in 'aeiou' else 'a'} {kind} instance, "
        f"registry name or config mapping, got {type(spec).__name__}"
    )


def resolve_estimator(
    spec: "SelectivityEstimator | Mapping[str, Any] | str | None",
    default: Callable[[], SelectivityEstimator] | None = None,
    *,
    what: str = "estimator",
) -> SelectivityEstimator:
    """Resolve an estimator spec (instance / registry name / config mapping).

    ``default`` is a zero-argument factory used when ``spec`` is ``None``;
    without one, ``None`` is rejected.  ``what`` names the parameter in error
    messages (``"base"``, ``"expert"``, ...).
    """
    return resolve_component(
        spec,
        base_type=SelectivityEstimator,
        create=create_estimator,
        from_config=estimator_from_config,
        default=default,
        what=what,
        kind="estimator",
    )
