"""Sample-point adaptive (variable-bandwidth) kernel selectivity estimator.

Fixed-bandwidth KDE over-smooths dense regions and under-smooths sparse
ones, which translates directly into selectivity error on skewed database
columns.  :class:`AdaptiveKDEEstimator` assigns each retained sample point
its own bandwidth: a pilot fixed-bandwidth estimate is computed first, then
Abramson-style local factors ``λ_i ∝ f_pilot(x_i)^{-α}`` widen kernels in
sparse regions and narrow them in dense ones.

This estimator is the *batch* form of the paper's adaptive density
estimation idea; the streaming form lives in
:mod:`repro.core.streaming` and the feedback-driven tuning in
:mod:`repro.core.feedback`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.bandwidth import local_bandwidth_factors
from repro.core.errors import InvalidParameterError
from repro.core.estimator import FLOAT_BYTES, register_estimator
from repro.core.kde import KDESelectivityEstimator
from repro.core.kernels import Kernel
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imported for type annotations only (avoids a package cycle)
    from repro.engine.table import Table

__all__ = ["AdaptiveKDEEstimator"]


@register_estimator("adaptive_kde")
class AdaptiveKDEEstimator(KDESelectivityEstimator):
    """Adaptive KDE with per-sample-point bandwidth factors.

    Parameters
    ----------
    sensitivity:
        Abramson exponent ``α ∈ [0, 1]``; ``0`` degenerates to the fixed
        bandwidth estimator, ``0.5`` is the classical square-root law.
    max_factor:
        Clip bound on the per-point factors (see
        :func:`repro.core.bandwidth.local_bandwidth_factors`).
    Other parameters are inherited from :class:`KDESelectivityEstimator`.
    """

    name = "adaptive_kde"

    def __init__(
        self,
        sample_size: int | None = 1000,
        kernel: str | Kernel = "gaussian",
        bandwidth_rule: str = "scott",
        bandwidths: Sequence[float] | None = None,
        boundary_correction: bool = True,
        sensitivity: float = 0.5,
        max_factor: float = 3.0,
        seed: int | None = 0,
        fastpath: bool = True,
    ) -> None:
        super().__init__(
            sample_size=sample_size,
            kernel=kernel,
            bandwidth_rule=bandwidth_rule,
            bandwidths=bandwidths,
            boundary_correction=boundary_correction,
            seed=seed,
            fastpath=fastpath,
        )
        if not 0.0 <= sensitivity <= 1.0:
            raise InvalidParameterError("sensitivity must lie in [0, 1]")
        if max_factor < 1.0:
            raise InvalidParameterError("max_factor must be at least 1")
        self.sensitivity = sensitivity
        self.max_factor = max_factor
        self._local_factors: np.ndarray = np.empty(0)

    # -- fitting -------------------------------------------------------------
    def fit(self, table: Table, columns: Sequence[str] | None = None) -> "AdaptiveKDEEstimator":
        super().fit(table, columns)
        self._fit_local_factors()
        # The per-point factors widen the support radii, so the fast-path
        # index built during fit (if any) is stale again.
        self._invalidate_support_index()
        return self

    def _fit_local_factors(self) -> None:
        """Compute Abramson factors from a pilot (fixed-bandwidth) density."""
        if self._points.shape[0] == 0 or self.sensitivity == 0.0:
            self._local_factors = np.ones(self._points.shape[0])
            return
        pilot_density = self._pilot_density_at_samples()
        self._local_factors = local_bandwidth_factors(
            pilot_density, self.sensitivity, self.max_factor
        )

    def _pilot_density_at_samples(self) -> np.ndarray:
        """Pilot fixed-bandwidth density evaluated at every retained sample point."""
        points = self._points
        n, dims = points.shape
        densities = np.zeros(n)
        block = 1024
        for start in range(0, n, block):
            chunk = points[start : start + block]
            values = np.ones((chunk.shape[0], n))
            for d in range(dims):
                h = self._bandwidths[d]
                u = (chunk[:, d, None] - points[None, :, d]) / h
                values *= self.kernel.pdf(u) / h
            densities[start : start + block] = values.mean(axis=1)
        return densities

    # -- persistence -----------------------------------------------------------
    def _config_params(self) -> dict:
        return {
            **super()._config_params(),
            "sensitivity": self.sensitivity,
            "max_factor": self.max_factor,
        }

    def _state(self) -> tuple[dict, dict]:
        arrays, meta = super()._state()
        arrays["local_factors"] = self._local_factors
        return arrays, meta

    def _restore_state(self, arrays, meta) -> None:
        super()._restore_state(arrays, meta)
        self._local_factors = np.asarray(arrays["local_factors"], dtype=float)
        self._invalidate_support_index()

    @property
    def local_factors(self) -> np.ndarray:
        """Per-sample-point bandwidth multipliers (geometric mean 1)."""
        self._require_fitted()
        return self._local_factors.copy()

    def memory_bytes(self) -> int:
        base = super().memory_bytes()
        return int(base + self._local_factors.size * FLOAT_BYTES)

    # -- estimation -------------------------------------------------------------
    def _axis_bandwidths(self, axis: int, ids: np.ndarray | None) -> np.ndarray:
        """Per-point bandwidths ``h_d · λ_i`` along one axis.

        ``ids`` selects the candidate sample points of a culled evaluation
        (``None``: all points); pilot paths with no factors fall back to the
        fixed bandwidth behaviour.
        """
        factors = self._local_factors
        if factors.size == 0:
            factors = np.ones(self._points.shape[0])
        if ids is not None:
            factors = factors[ids]
        return self._bandwidths[axis] * factors

    def _support_radii(self) -> np.ndarray:
        """Per-point, per-axis support radii: the base radii widened by λ_i."""
        base = super()._support_radii()
        factors = self._local_factors
        if factors.size == 0:
            return base
        return np.outer(factors, base)

    def density(self, points: np.ndarray) -> np.ndarray:
        """Evaluate the adaptive density estimate at ``points``."""
        self._require_fitted()
        points = np.atleast_2d(np.asarray(points, dtype=float))
        if points.shape[1] != self._points.shape[1]:
            raise InvalidParameterError(
                f"density expects {self._points.shape[1]}-dimensional points"
            )
        if self._points.shape[0] == 0:
            return np.zeros(points.shape[0])
        factors = self._local_factors
        total_weight = float(self._weights.sum())
        result = np.zeros(points.shape[0])
        block = 1024
        for start in range(0, points.shape[0], block):
            chunk = points[start : start + block]
            values = np.ones((chunk.shape[0], self._points.shape[0]))
            for d in range(self._points.shape[1]):
                h = self._bandwidths[d] * factors
                u = (chunk[:, d, None] - self._points[None, :, d]) / h[None, :]
                values *= self.kernel.pdf(u) / h[None, :]
            result[start : start + block] = values @ self._weights / total_weight
        return result
