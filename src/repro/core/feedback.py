"""Query-feedback self-tuning for selectivity estimators.

When the execution engine runs a query it observes the *true* cardinality for
free.  :class:`FeedbackAdaptiveEstimator` wraps any base synopsis and uses a
bounded log of such observations to correct future estimates:

* **Region corrections** — every feedback observation stores the queried box,
  the truth and the base estimate at that time.  A new query's base estimate
  is multiplied by a geometric blend of the correction ratios of overlapping
  feedback regions, weighted by box overlap and recency.  This is the same
  mechanism self-tuning histograms (STGrid / STHoles) use, applied on top of
  a density model.
* **Global bias correction** — a running (exponentially-decayed) mean of the
  signed log error rescales every estimate, removing systematic over- or
  under-smoothing bias of the base model.

The feedback log is bounded: when it exceeds ``max_regions`` the oldest and
lowest-weight entries are evicted, so the synopsis stays within its space
budget no matter how long the workload runs.

Estimation cost: the base-model half of every batch flows through the wrapped
estimator's ``estimate_batch`` and therefore through the query fast path of
:mod:`repro.core.fastpath` whenever the base is a kernel-family synopsis
(build the base with ``fastpath=False`` to pin the wrapper to the dense
reference path).  The correction half keeps its own region-overlap loop —
box intersection, not CDF work — but the feedback-log arrays it consumes are
cached behind a staleness counter (``feedback_count``) instead of being
re-stacked from the record deque on every batch.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Deque, Mapping, Sequence

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.core.estimator import (
    FLOAT_BYTES,
    FeedbackEstimator,
    SelectivityEstimator,
    register_estimator,
)
from repro.core.kde import KDESelectivityEstimator
from repro.core.resolve import resolve_estimator
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imported for type annotations only (avoids a package cycle)
    from repro.engine.table import Table
from repro.workload.queries import CompiledQueries, RangeQuery

__all__ = ["FeedbackAdaptiveEstimator", "FeedbackRecord"]

_EPSILON = 1e-6


class FeedbackRecord:
    """One feedback observation: the query box, truth and base estimate."""

    __slots__ = ("lows", "highs", "true_fraction", "base_estimate", "age")

    def __init__(
        self,
        lows: np.ndarray,
        highs: np.ndarray,
        true_fraction: float,
        base_estimate: float,
    ) -> None:
        self.lows = lows
        self.highs = highs
        self.true_fraction = float(true_fraction)
        self.base_estimate = float(base_estimate)
        self.age = 0

    @property
    def log_ratio(self) -> float:
        """Signed log correction ``log(truth / estimate)`` with smoothing."""
        return math.log(
            (self.true_fraction + _EPSILON) / (self.base_estimate + _EPSILON)
        )


@register_estimator("feedback_ade")
class FeedbackAdaptiveEstimator(FeedbackEstimator):
    """Wrap a base synopsis with query-feedback-driven corrections.

    Parameters
    ----------
    base:
        The wrapped :class:`SelectivityEstimator` — an instance, a registry
        name, or a ``{"name": ..., **params}`` configuration mapping (which
        is how snapshot and describe round-trips reconstruct the wrapper).
        Defaults to a :class:`~repro.core.kde.KDESelectivityEstimator` with a
        512-row sample, which matches the configuration used in the
        evaluation.
    max_regions:
        Maximum number of feedback observations retained.
    learning_rate:
        Strength of region corrections in ``[0, 1]``; 1 applies the full
        correction of perfectly-overlapping feedback.
    recency_halflife:
        Number of feedback observations after which an old record's influence
        halves.  Lets the corrections follow workload / data drift.
    bias_learning_rate:
        Step size of the global bias correction.
    """

    name = "feedback_ade"

    def __init__(
        self,
        base: SelectivityEstimator | Mapping[str, Any] | str | None = None,
        max_regions: int = 256,
        learning_rate: float = 0.8,
        recency_halflife: float = 200.0,
        bias_learning_rate: float = 0.05,
    ) -> None:
        super().__init__()
        if not 0.0 <= learning_rate <= 1.0:
            raise InvalidParameterError("learning_rate must lie in [0, 1]")
        if max_regions < 1:
            raise InvalidParameterError("max_regions must be positive")
        if recency_halflife <= 0:
            raise InvalidParameterError("recency_halflife must be positive")
        if bias_learning_rate < 0:
            raise InvalidParameterError("bias_learning_rate must be non-negative")
        self.base = resolve_estimator(
            base, default=lambda: KDESelectivityEstimator(sample_size=512), what="base"
        )
        self.max_regions = int(max_regions)
        self.learning_rate = float(learning_rate)
        self.recency_halflife = float(recency_halflife)
        self.bias_learning_rate = float(bias_learning_rate)

        self._records: Deque[FeedbackRecord] = deque()
        self._log_bias = 0.0
        self._feedback_count = 0
        self._domain_low = np.empty(0)
        self._domain_high = np.empty(0)
        # Cached (feedback_count, lows, highs, log_ratios, recency, volumes)
        # region arrays: every feedback() bumps the count, so the stacked
        # views are rebuilt lazily instead of per estimate_batch call.
        self._region_cache: tuple | None = None

    # -- lifecycle ---------------------------------------------------------
    def fit(
        self, table: Table, columns: Sequence[str] | None = None
    ) -> "FeedbackAdaptiveEstimator":
        columns = self._resolve_columns(table, columns)
        self.base.fit(table, columns)
        domain = table.domain(columns)
        self._domain_low = np.array([domain[c][0] for c in columns], dtype=float)
        self._domain_high = np.array([domain[c][1] for c in columns], dtype=float)
        self._records.clear()
        self._log_bias = 0.0
        self._feedback_count = 0
        self._region_cache = None
        self._mark_fitted(columns, table.row_count)
        return self

    def memory_bytes(self) -> int:
        self._require_fitted()
        record_floats = len(self._records) * (2 * len(self._columns) + 2)
        return int(self.base.memory_bytes() + record_floats * FLOAT_BYTES + 2 * FLOAT_BYTES)

    # -- persistence -----------------------------------------------------------
    def _config_params(self) -> dict:
        return {
            "base": self.base.config(),
            "max_regions": self.max_regions,
            "learning_rate": self.learning_rate,
            "recency_halflife": self.recency_halflife,
            "bias_learning_rate": self.bias_learning_rate,
        }

    def _state(self) -> tuple[dict, dict]:
        """Own state plus the wrapped estimator's snapshot, namespaced.

        The base estimator's arrays are merged in under ``base::`` keys and
        its (JSON-able) snapshot envelope travels in ``meta["base"]``, so one
        flat npz file holds the whole wrapper.
        """
        dims = max(len(self._columns), 1)
        if self._records:
            record_lows = np.stack([r.lows for r in self._records])
            record_highs = np.stack([r.highs for r in self._records])
            truths = np.array([r.true_fraction for r in self._records])
            bases = np.array([r.base_estimate for r in self._records])
            ages = np.array([r.age for r in self._records], dtype=np.int64)
        else:
            record_lows = np.empty((0, dims))
            record_highs = np.empty((0, dims))
            truths = np.empty(0)
            bases = np.empty(0)
            ages = np.empty(0, dtype=np.int64)
        arrays = {
            "record_lows": record_lows,
            "record_highs": record_highs,
            "record_truths": truths,
            "record_bases": bases,
            "record_ages": ages,
            "domain_low": self._domain_low,
            "domain_high": self._domain_high,
        }
        base_state = self.base.state_dict()
        for key, value in base_state.pop("arrays").items():
            arrays[f"base::{key}"] = value
        meta = {
            "log_bias": self._log_bias,
            "feedback_count": self._feedback_count,
            "base": base_state,
        }
        return arrays, meta

    def _restore_state(self, arrays, meta) -> None:
        self._domain_low = np.asarray(arrays["domain_low"], dtype=float)
        self._domain_high = np.asarray(arrays["domain_high"], dtype=float)
        self._log_bias = float(meta["log_bias"])
        self._feedback_count = int(meta["feedback_count"])
        dims = max(len(self._columns), 1)
        lows = np.asarray(arrays["record_lows"], dtype=float).reshape(-1, dims)
        highs = np.asarray(arrays["record_highs"], dtype=float).reshape(-1, dims)
        truths = np.asarray(arrays["record_truths"], dtype=float)
        bases = np.asarray(arrays["record_bases"], dtype=float)
        ages = np.asarray(arrays["record_ages"])
        self._records = deque()
        for i in range(truths.size):
            record = FeedbackRecord(
                lows[i].copy(), highs[i].copy(), float(truths[i]), float(bases[i])
            )
            record.age = int(ages[i])
            self._records.append(record)
        self._region_cache = None
        base_state = dict(meta["base"])
        base_state["arrays"] = {
            key[len("base::"):]: value
            for key, value in arrays.items()
            if key.startswith("base::")
        }
        self.base.load_state(base_state)

    # -- feedback -------------------------------------------------------------
    def feedback(self, query: RangeQuery, true_fraction: float) -> None:
        """Record the observed true selectivity of an executed query."""
        self._require_fitted()
        if not 0.0 <= true_fraction <= 1.0:
            raise InvalidParameterError("true_fraction must lie in [0, 1]")
        lows, highs = self._query_bounds(query)
        base_estimate = self.base.estimate(query)
        record = FeedbackRecord(
            self._clip_box(lows), self._clip_box(highs), true_fraction, base_estimate
        )
        for existing in self._records:
            existing.age += 1
        self._records.append(record)
        while len(self._records) > self.max_regions:
            self._evict_one()
        # Global bias: exponentially-decayed mean of the signed log error.
        error = math.log((base_estimate + _EPSILON) / (true_fraction + _EPSILON))
        self._log_bias = (1.0 - self.bias_learning_rate) * self._log_bias + (
            self.bias_learning_rate * error
        )
        self._feedback_count += 1

    def _evict_one(self) -> None:
        """Evict the least useful record: oldest among the lowest-influence ones."""
        if not self._records:
            return
        weights = [self._recency_weight(r) for r in self._records]
        victim = int(np.argmin(weights))
        del self._records[victim]

    def _recency_weight(self, record: FeedbackRecord) -> float:
        return 0.5 ** (record.age / self.recency_halflife)

    @property
    def feedback_count(self) -> int:
        """Total number of feedback observations seen."""
        return self._feedback_count

    @property
    def record_count(self) -> int:
        """Number of feedback regions currently retained."""
        return len(self._records)

    # -- estimation -------------------------------------------------------------
    def _estimate_batch(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Base-model batch estimates rescaled by bias and region corrections."""
        base = self.base.estimate_batch(CompiledQueries(self._columns, lows, highs))
        corrected = base * math.exp(-self._log_bias * self.learning_rate)
        corrected *= self._region_corrections(
            self._clip_box(lows), self._clip_box(highs)
        )
        return corrected

    def _clip_box(self, bounds: np.ndarray) -> np.ndarray:
        """Clip query bounds to the data domain so box volumes are finite."""
        if self._domain_low.size == 0:
            return bounds
        return np.clip(bounds, self._domain_low, self._domain_high)

    def _region_corrections(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Geometric blend of the correction ratios of overlapping feedback regions.

        Vectorised over both queries and records: the ``(block, R, d)``
        intersection tensor is chunked over queries so memory stays bounded.
        """
        n = lows.shape[0]
        if not self._records:
            return np.ones(n)
        record_lows, record_highs, log_ratios, recency, record_volumes = (
            self._region_arrays()
        )
        query_volumes = self._box_volumes(lows, highs)

        records = record_lows.shape[0]
        dims = record_lows.shape[1]
        factors = np.empty(n)
        block = max((1 << 20) // max(records * dims, 1), 1)
        for start in range(0, n, block):
            stop = min(start + block, n)
            inter_lows = np.maximum(lows[start:stop, None, :], record_lows[None, :, :])
            inter_highs = np.minimum(highs[start:stop, None, :], record_highs[None, :, :])
            disjoint = np.any(inter_highs < inter_lows, axis=2)
            overlap = np.where(disjoint, 0.0, self._box_volumes(inter_lows, inter_highs))
            union = query_volumes[start:stop, None] + record_volumes[None, :] - overlap
            similarity = np.where(union > 0.0, overlap / np.where(union > 0.0, union, 1.0), 1.0)
            weight = np.where(overlap > 0.0, similarity * recency[None, :], 0.0)
            total_weight = weight.sum(axis=1)
            weighted_log = weight @ log_ratios
            safe_total = np.where(total_weight > 0.0, total_weight, 1.0)
            blended = weighted_log / safe_total
            # Confidence grows with the amount of overlapping evidence.
            confidence = np.minimum(total_weight, 1.0) * self.learning_rate
            factors[start:stop] = np.where(
                total_weight > 0.0, np.exp(confidence * blended), 1.0
            )
        return factors

    def _region_arrays(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Stacked feedback-log arrays, cached until the next ``feedback()``.

        ``feedback()`` is the only mutator of the record deque (append, ages,
        eviction) and always increments ``_feedback_count``, which therefore
        doubles as the staleness counter of this cache.
        """
        cached = self._region_cache
        if cached is not None and cached[0] == self._feedback_count:
            return cached[1:]
        record_lows = np.stack([r.lows for r in self._records])
        record_highs = np.stack([r.highs for r in self._records])
        log_ratios = np.array([r.log_ratio for r in self._records])
        recency = np.array([self._recency_weight(r) for r in self._records])
        record_volumes = self._box_volumes(record_lows, record_highs)
        self._region_cache = (
            self._feedback_count,
            record_lows,
            record_highs,
            log_ratios,
            recency,
            record_volumes,
        )
        return record_lows, record_highs, log_ratios, recency, record_volumes

    def _box_volumes(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Normalised box volumes over the trailing attribute axis."""
        widths = np.maximum(highs - lows, 0.0)
        # Degenerate (point) constraints contribute a small positive width so
        # point queries can still match feedback on the same point.
        domain_width = np.maximum(self._domain_high - self._domain_low, 1e-12)
        widths = np.maximum(widths, 1e-6 * domain_width)
        return np.prod(widths / domain_width, axis=-1)
