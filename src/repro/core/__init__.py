"""Core contribution: kernel-based adaptive selectivity estimators.

Sub-modules
-----------
``kernels``
    Smoothing kernels (pdf / cdf / interval mass).
``bandwidth``
    Rule-of-thumb, cross-validation and local (adaptive) bandwidth selection.
``estimator``
    The :class:`SelectivityEstimator` contract, registry and budget accounting.
``fastpath``
    Query-side fast path: support-culling kernel index + the batched
    product-kernel CDF micro-kernel shared by the whole estimator family.
``kde``
    Fixed-bandwidth sample-based KDE selectivity estimator.
``adaptive``
    Sample-point adaptive (variable-bandwidth) KDE.
``streaming``
    Bounded-memory streaming adaptive density estimator (cluster kernels).
``feedback``
    Query-feedback self-tuning wrapper.
"""

from repro.core.adaptive import AdaptiveKDEEstimator
from repro.core.estimator import (
    FeedbackEstimator,
    SelectivityEstimator,
    StreamingEstimator,
    available_estimators,
    create_estimator,
    estimator_from_config,
    register_estimator,
)
from repro.core.feedback import FeedbackAdaptiveEstimator
from repro.core.kde import KDESelectivityEstimator
from repro.core.streaming import StreamingADE

__all__ = [
    "SelectivityEstimator",
    "StreamingEstimator",
    "FeedbackEstimator",
    "KDESelectivityEstimator",
    "AdaptiveKDEEstimator",
    "StreamingADE",
    "FeedbackAdaptiveEstimator",
    "register_estimator",
    "create_estimator",
    "available_estimators",
    "estimator_from_config",
]
