"""Query-side fast path: kernel support culling + the batched CDF micro-kernel.

Every estimator of the kernel family (fixed KDE, adaptive KDE, the streaming
ADE and — through its wrapped base — the feedback wrapper) answers a range
query as a weighted sum of per-kernel product masses,

    ``sel(Q) = (1/W) Σ_i w_i Π_d mass_d(i, Q)``.

The dense evaluation is O(kernels × queries × dims) normal-CDF calls even
though a kernel more than a few bandwidths away from the query box
contributes essentially nothing.  This module supplies the two pieces that
make the family fast without changing its answers:

:class:`KernelSupportIndex`
    A per-dimension sorted index of kernel positions with *effective support
    radii*.  A kernel whose ``±radius`` support cannot overlap a query box on
    some axis is culled via two ``searchsorted`` probes per axis; surviving
    axes are intersected with per-kernel radius checks.  Compact kernels
    (Epanechnikov & friends) use their exact support radius, so culling is
    lossless; the Gaussian uses the ε-derived radius below.

:func:`weighted_box_masses`
    The single batched product-kernel CDF micro-kernel: a blocked,
    preallocated-buffer accumulation of ``Σ_i w_i Π_d mass_d`` that both the
    dense reference path and the culled group path run on.  It replaces the
    near-duplicate inner loops that previously lived in ``core/kde.py`` and
    ``core/streaming.py`` (and that ``core/adaptive.py`` /
    ``core/feedback.py`` inherited).

Epsilon / atol policy
---------------------

Culling an unbounded (Gaussian) kernel drops real mass, so the cull radius is
derived from a deviation budget: with per-image tail tolerance
``ε = atol / 24`` the radius is ``-ndtri(ε)`` (≈ 7.5 at the default
``atol = 1e-12``).  Every culled kernel image then contributes at most ``ε``
axis mass, and because the per-kernel weights are normalised the *total*
deviation of a fast-path estimate from the dense path is bounded by
``3·ε ≤ atol/8`` (three kernel images per axis under boundary reflection —
the reflected images of significant kernels provably fall inside the same
candidate interval, see ``KernelSupportIndex.box_candidates``).  The safety
factor 24 also absorbs the evaluation-order differences between grouped and
per-query candidate sets, which is what keeps one-row batches (the scalar
``estimate`` sugar) within 1e-12 of large batches.  Estimates are culled
*downward* only: the fast path never reports more mass than the dense path.

Staleness contract
------------------

Estimators cache their index together with a staleness counter (an epoch
bumped by every synopsis mutation — fit, bulk/sequential insert, flush of a
pending chunk, compress, prune, snapshot restore).  The index is rebuilt
lazily on the next estimate after the epoch moved; per-tuple index updates
are never attempted.  The cached ``(epoch, index)`` tuple is swapped as one
attribute, so concurrent readers (the serving layer calls ``estimate_batch``
from many threads) either see a consistent cached index or rebuild it — an
idempotent, benign race.  Deep-copying an estimator (the serving layer's
copy-on-write ``checkout``/``publish``) carries the cached index along.

Disable the fast path per estimator with ``fastpath=False`` (constructor
parameter of the kernel-family estimators) or process-wide with the
:func:`fastpath_disabled` context manager; both leave the dense reference
path as the single evaluation route, which the equivalence suite compares
against.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator

import numpy as np
from scipy import special

__all__ = [
    "DEFAULT_ATOL",
    "KernelSupportIndex",
    "cull_epsilon",
    "estimate_boxes",
    "fastpath_disabled",
    "fastpath_enabled",
    "gaussian_cull_radius",
    "gaussian_tail_radius",
    "normal_box_mass",
    "set_route_metrics",
    "weighted_box_masses",
]

#: Documented maximum absolute deviation of a fast-path estimate from the
#: dense reference path (see the module docstring for the derivation).
DEFAULT_ATOL = 1e-12

#: Deviation-budget safety factor: three kernel images per axis (center plus
#: two boundary reflections) times headroom for grouping and dot-product
#: rounding differences.
_EPSILON_SAFETY = 24.0

#: Below this many kernels a dense pass beats any index overhead.
_MIN_KERNELS = 32

#: Queries whose tightest per-axis candidate range still keeps this fraction
#: of all kernels are answered densely — culling would not pay for them.
_DENSE_FRACTION = 0.75

#: Aimed-for queries per evaluation group (grid-bucketed query clustering).
_TARGET_GROUP = 64

#: Work-buffer bound for the micro-kernel: (queries-per-block × kernels)
#: stays at or below this many floats (≈ 1 MB), keeping the per-block
#: temporaries cache resident while still amortising interpreter overhead.
_BUFFER_ELEMENTS = 1 << 17

#: ``axis_mass(ids, axis, lows, highs) -> (queries, kernels)`` — per-axis
#: kernel mass of every (query, kernel) pair; ``ids`` selects a candidate
#: kernel subset (``None`` means all kernels).
AxisMass = Callable[[np.ndarray | None, int, np.ndarray, np.ndarray], np.ndarray]

_ENABLED = True

#: Optional observability sink for routing decisions (``None`` = no-op).
_ROUTE_METRICS = None


def set_route_metrics(registry) -> None:
    """Install a :class:`repro.obs.metrics.MetricsRegistry` for route counts.

    When set, :func:`estimate_boxes` counts how many queries it answered via
    the culled path (``fastpath.culled_queries``) versus the dense
    micro-kernel (``fastpath.dense_queries``, including whole batches it
    declined).  ``None`` (the default) disables counting entirely — the hot
    path then pays a single module-global ``is not None`` check.  Process-
    wide rather than per-estimator because the routing decision itself is a
    module-level policy.
    """
    global _ROUTE_METRICS
    _ROUTE_METRICS = registry if registry is not None and registry.enabled else None


def fastpath_enabled() -> bool:
    """Whether the process-wide fast-path switch is on (default: yes)."""
    return _ENABLED


@contextmanager
def fastpath_disabled():
    """Force every estimator onto the dense reference path within the block.

    The equivalence suite and the fast-path benchmark use this to reach the
    dense path without rebuilding estimators; it composes with (and is
    overridden by neither) the per-estimator ``fastpath=False`` parameter.
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = previous


def cull_epsilon(atol: float = DEFAULT_ATOL) -> float:
    """Per-kernel-image tail-mass tolerance for a total deviation ``atol``."""
    return max(float(atol), 1e-300) / _EPSILON_SAFETY


def gaussian_tail_radius(epsilon: float) -> float:
    """The radius with ``Φ(-r) ≤ epsilon`` (one-sided tail mass beyond ``r``).

    Clamped to ``[1, 40]``; the single source of the Gaussian tail bound used
    by both :func:`gaussian_cull_radius` and
    :meth:`repro.core.kernels.GaussianKernel.effective_support_radius`.
    """
    return float(min(max(-special.ndtri(max(float(epsilon), 1e-300)), 1.0), 40.0))


def gaussian_cull_radius(atol: float = DEFAULT_ATOL) -> float:
    """Standardised cull radius for the Gaussian kernel at deviation ``atol``.

    ``Φ(-radius) ≤ cull_epsilon(atol)``, so a Gaussian kernel (or cluster
    kernel) whose center is more than ``radius`` standard deviations outside
    the query interval contributes at most ``ε`` axis mass.
    """
    return gaussian_tail_radius(cull_epsilon(atol))


def normal_box_mass(
    lows: np.ndarray,
    highs: np.ndarray,
    means: np.ndarray,
    stds: np.ndarray,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Mass of ``N(means, stds²)`` inside ``[lows, highs]``, elementwise.

    Uses ``ndtr`` (the normal CDF evaluated directly) — several times faster
    than composing ``erf``, and this is the hot function of batch estimation.
    ``out`` may supply a preallocated result buffer of the broadcast shape.
    """
    if out is None:
        mass = np.subtract(highs, means)
    else:
        mass = np.subtract(highs, means, out=out)
    np.divide(mass, stds, out=mass)
    special.ndtr(mass, out=mass)
    work = np.subtract(lows, means)
    np.divide(work, stds, out=work)
    special.ndtr(work, out=work)
    np.subtract(mass, work, out=mass)
    return np.clip(mass, 0.0, 1.0, out=mass)


class KernelSupportIndex:
    """Per-dimension sorted kernel positions with effective support radii.

    ``centers`` is the ``(K, d)`` matrix of kernel positions; ``radii`` the
    per-kernel per-axis effective support (broadcastable to ``(K, d)``):
    kernel ``i`` contributes more than the cull epsilon on axis ``d`` only to
    intervals overlapping ``[c_id - r_id, c_id + r_id]``.  Instances are
    immutable snapshots of the synopsis geometry — a mutated synopsis builds
    a fresh index (see the staleness contract in the module docstring).
    """

    __slots__ = (
        "centers",
        "radii",
        "orders",
        "sorted_positions",
        "max_radii",
        "kernel_count",
        "dims",
    )

    def __init__(self, centers: np.ndarray, radii: np.ndarray) -> None:
        centers = np.ascontiguousarray(np.atleast_2d(centers), dtype=float)
        self.centers = centers
        self.kernel_count, self.dims = centers.shape
        self.radii = np.ascontiguousarray(
            np.broadcast_to(np.asarray(radii, dtype=float), centers.shape)
        )
        #: per-axis argsort of the kernel positions (``(K, d)``)
        self.orders = np.argsort(centers, axis=0, kind="stable")
        self.sorted_positions = np.take_along_axis(centers, self.orders, axis=0)
        self.max_radii = (
            self.radii.max(axis=0)
            if self.kernel_count
            else np.zeros(self.dims)
        )

    def candidate_counts(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Per-query, per-axis candidate-count upper bounds (``(n, d)``).

        Two vectorised ``searchsorted`` probes per axis against the sorted
        positions, widened by the axis's maximum support radius.  The counts
        drive the dense-vs-culled routing and the choice of primary axis.
        """
        counts = np.empty(lows.shape, dtype=np.int64)
        for axis in range(self.dims):
            positions = self.sorted_positions[:, axis]
            radius = self.max_radii[axis]
            starts = np.searchsorted(positions, lows[:, axis] - radius, side="left")
            stops = np.searchsorted(positions, highs[:, axis] + radius, side="right")
            counts[:, axis] = stops - starts
        return counts

    def box_candidates(self, low: np.ndarray, high: np.ndarray) -> np.ndarray:
        """Ascending kernel ids whose support can overlap the box ``[low, high]``.

        The axis with the fewest in-range kernels supplies the initial
        contiguous slice of its sort order; every axis (including that one)
        then refines with the exact per-kernel radius test, so the result is
        the intersection of the per-axis support overlaps.  Reflected kernel
        images (boundary-corrected KDE) need no extra probes: a reflected
        image overlaps a domain-clipped interval only if its source kernel
        sits within one support radius of the interval, which places the
        source inside the same candidate slice.
        """
        starts = np.empty(self.dims, dtype=np.int64)
        stops = np.empty(self.dims, dtype=np.int64)
        for axis in range(self.dims):
            positions = self.sorted_positions[:, axis]
            radius = self.max_radii[axis]
            starts[axis] = np.searchsorted(positions, low[axis] - radius, side="left")
            stops[axis] = np.searchsorted(positions, high[axis] + radius, side="right")
        primary = int(np.argmin(stops - starts))
        ids = self.orders[starts[primary] : stops[primary], primary]
        if ids.size == 0:
            return ids
        keep = np.ones(ids.size, dtype=bool)
        for axis in range(self.dims):
            centers = self.centers[ids, axis]
            radii = self.radii[ids, axis]
            keep &= centers + radii >= low[axis]
            keep &= centers - radii <= high[axis]
        return np.sort(ids[keep])


def weighted_box_masses(
    lows: np.ndarray,
    highs: np.ndarray,
    axis_mass: AxisMass,
    weights: np.ndarray,
    total_weight: float,
    ids: np.ndarray | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """The product-kernel CDF micro-kernel: ``(1/W) Σ_i w_i Π_d mass_d(i)``.

    Evaluates every query box in ``(lows, highs)`` against the kernel subset
    ``ids`` (all kernels when ``None``), blocked over queries with one
    preallocated ``(block, kernels)`` accumulation buffer so arbitrarily
    large batches stay cache resident.  This is the single inner loop of the
    whole estimator family — the dense reference path runs it over all
    kernels, the fast path over culled candidate sets.
    """
    n = lows.shape[0]
    dims = lows.shape[1]
    if out is None:
        out = np.empty(n)
    kernel_weights = weights if ids is None else weights[ids]
    count = kernel_weights.size
    if count == 0 or n == 0:
        out[:n] = 0.0
        return out
    block = max(_BUFFER_ELEMENTS // count, 1)
    buffer = np.empty((min(block, n), count))
    for start in range(0, n, block):
        stop = min(start + block, n)
        masses = buffer[: stop - start]
        masses[:] = 1.0
        for axis in range(dims):
            np.multiply(
                masses,
                axis_mass(ids, axis, lows[start:stop, axis], highs[start:stop, axis]),
                out=masses,
            )
        np.matmul(masses, kernel_weights, out=out[start:stop])
    out[:n] /= total_weight
    return out


def _spatial_groups(
    lows: np.ndarray, highs: np.ndarray, index: KernelSupportIndex
) -> Iterator[np.ndarray]:
    """Cluster query boxes into spatially coherent evaluation groups.

    Nearby boxes share one culled candidate set, so grouping trades a
    slightly wider union box for full vectorisation across the group.  Box
    centers (clipped to the kernel position range, which keeps one-sided and
    full-domain boxes finite) are bucketed on a coarse grid sized for about
    ``_TARGET_GROUP`` queries per cell; each occupied cell is one group.
    """
    n, dims = lows.shape
    if n <= 1:
        yield np.arange(n)
        return
    position_low = index.sorted_positions[0, :]
    position_high = index.sorted_positions[-1, :]
    centers = 0.5 * (
        np.maximum(lows, position_low) + np.minimum(highs, position_high)
    )
    span = position_high - position_low
    span = np.where(span > 0, span, 1.0)
    cells_per_axis = max(int(np.ceil((n / _TARGET_GROUP) ** (1.0 / dims))), 1)
    cells = ((centers - position_low) / span * cells_per_axis).astype(np.int64)
    np.clip(cells, 0, cells_per_axis - 1, out=cells)
    keys = np.zeros(n, dtype=np.int64)
    for axis in range(dims):
        keys *= cells_per_axis
        keys += cells[:, axis]
    order = np.argsort(keys, kind="stable")
    boundaries = np.flatnonzero(np.diff(keys[order])) + 1
    yield from np.split(order, boundaries)


def estimate_boxes(
    lows: np.ndarray,
    highs: np.ndarray,
    index: KernelSupportIndex,
    weights: np.ndarray,
    total_weight: float,
    axis_mass: AxisMass,
) -> np.ndarray | None:
    """Support-culled batch estimation over a kernel index.

    Routes each query by its tightest per-axis candidate count: wide queries
    (candidate fraction ≥ ``_DENSE_FRACTION``) run on the dense micro-kernel
    directly, selective queries are clustered into spatial groups and each
    group is evaluated against one shared culled candidate set.  Returns
    ``None`` when culling cannot pay at all (tiny synopses, or every query is
    wide) — the caller then takes the dense path itself.
    """
    n = lows.shape[0]
    route_metrics = _ROUTE_METRICS
    if index.kernel_count < _MIN_KERNELS or n == 0:
        if route_metrics is not None and n:
            route_metrics.counter("fastpath.dense_queries").inc(n)
        return None
    counts = index.candidate_counts(lows, highs)
    tightest = counts.min(axis=1)
    selective = tightest < index.kernel_count * _DENSE_FRACTION
    if not selective.any():
        if route_metrics is not None:
            route_metrics.counter("fastpath.dense_queries").inc(n)
        return None
    out = np.zeros(n)
    wide = np.flatnonzero(~selective)
    if route_metrics is not None:
        if wide.size:
            route_metrics.counter("fastpath.dense_queries").inc(int(wide.size))
        route_metrics.counter("fastpath.culled_queries").inc(int(n - wide.size))
    if wide.size:
        out[wide] = weighted_box_masses(
            lows[wide], highs[wide], axis_mass, weights, total_weight
        )
    chosen = np.flatnonzero(selective)
    for group in _spatial_groups(lows[chosen], highs[chosen], index):
        queries = chosen[group]
        union_low = lows[queries].min(axis=0)
        union_high = highs[queries].max(axis=0)
        ids = index.box_candidates(union_low, union_high)
        if ids.size == 0:
            continue  # no kernel reaches any box in the group: mass 0
        out[queries] = weighted_box_masses(
            lows[queries], highs[queries], axis_mass, weights, total_weight, ids=ids
        )
    return out
