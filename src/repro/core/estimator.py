"""Estimator interface, registry and space-budget accounting.

Every synopsis in this library — the adaptive KDE models as well as the
baseline histograms, samples and wavelet synopses — implements the
:class:`SelectivityEstimator` contract.  The contract is **batch first**: a
workload compiled into a :class:`~repro.workload.queries.CompiledQueries`
plan (a ``(lows, highs)`` bound-matrix pair aligned with the fitted columns)
is the primary unit of estimation, so throughput scales with numpy rather
than with the Python interpreter:

* ``fit(table, columns)`` builds the synopsis from a table,
* ``estimate_batch(queries)`` — the public estimation entry point — accepts a
  sequence of :class:`~repro.workload.queries.RangeQuery` objects *or* an
  already-compiled plan and returns one selectivity in ``[0, 1]`` per query
  as a numpy vector,
* ``estimate(query)`` is sugar over a one-row batch,
* ``estimate_cardinality(query)`` / ``estimate_cardinality_batch(queries)``
  scale selectivities by the (tracked) row count,
* ``memory_bytes()`` reports the synopsis footprint so comparisons between
  estimators can be made at equal space budget,
* streaming estimators additionally implement ``insert(rows)``,
* self-tuning estimators additionally implement ``feedback(query, truth)``.

Subclasses implement the private hook ``_estimate_batch(lows, highs)``, which
receives validated ``(n, d)`` bound matrices aligned with the fitted columns
and returns ``n`` raw estimates (clipping to ``[0, 1]`` is applied by the
base class).  Every built-in synopsis implements this hook natively
vectorised.  Third-party estimators that only override the scalar
``estimate(query)`` keep working: the base hook falls back to a per-query
loop.  ``estimate_many`` survives as a deprecated alias of
``estimate_batch``.

A simple name-based registry (:func:`register_estimator`,
:func:`create_estimator`, :func:`estimator_from_config`) lets the experiment
harness instantiate estimators from configuration dictionaries.

Persistence contract
--------------------

Every estimator is snapshotable:

* ``config()`` returns ``{"name": <registry name>, **constructor_params}``
  such that ``estimator_from_config(est.config())`` builds an equivalent
  *unfitted* estimator.  ``describe()`` is a superset of ``config()`` (it adds
  runtime metadata under the reserved keys in :data:`DESCRIBE_METADATA_KEYS`,
  which ``estimator_from_config`` ignores), so a describe dictionary also
  round-trips through ``estimator_from_config``.
* ``state_dict()`` returns the complete fitted state as numpy arrays plus a
  JSON-serialisable header; ``load_state()`` restores it on a compatible
  instance.  Streaming estimators are flushed first so rows sitting in a
  pending ingestion buffer are never dropped from a snapshot.
* ``save(path)`` / ``SelectivityEstimator.load(path)`` persist a snapshot to
  a single ``.npz`` file (see :mod:`repro.persist` for the on-disk format and
  its versioning policy); the round-trip reproduces ``estimate_batch``
  output bitwise.

Subclasses implement the paired hooks ``_state()`` (returning
``(arrays, meta)``) and ``_restore_state(arrays, meta)``; the base class
handles the envelope (registry name, config, columns, row count).

Mergeable-synopsis protocol
---------------------------

The sharded estimation engine (:mod:`repro.shard`) partitions a table and
fits one synopsis per partition.  Every estimator participates in sharding
through one of two paths:

* **True state-merge** — estimators with :attr:`supports_merge` set override
  :meth:`merge_state` to fold the fitted states of per-shard synopses into a
  single combined synopsis.  Synopses whose layout is decided by global data
  properties (bucket edges, grid boundaries) additionally implement
  :meth:`shard_frame`, which the shard coordinator evaluates once on the
  *full* table; every per-shard :meth:`fit_shard` then builds against that
  shared frame so the shard states are aligned and the merge is exact.
  Estimators whose merged synopsis reproduces a monolithic fit *bitwise*
  (integer bucket counts summed over aligned frames) also set
  :attr:`merge_exact`; sample-based merges (reservoir subsampling) are
  statistically equivalent but not bit-identical and leave it ``False``.
* **Weighted estimate combination** — every estimator inherits
  :meth:`combine_estimates`, a row-count-weighted average of per-shard
  estimate vectors.  This is the universal fallback: a sharded front end can
  serve any registered estimator by running one vectorized ``estimate_batch``
  per shard and reducing with this method.
"""

from __future__ import annotations

import warnings
from abc import ABC, abstractmethod
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.core.errors import (
    DimensionMismatchError,
    InvalidParameterError,
    NotFittedError,
)
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imported for type annotations only (avoids a package cycle)
    from repro.engine.table import Table
from repro.workload.queries import CompiledQueries, RangeQuery, compile_queries

__all__ = [
    "SelectivityEstimator",
    "StreamingEstimator",
    "FeedbackEstimator",
    "register_estimator",
    "create_estimator",
    "available_estimators",
    "estimator_from_config",
    "FLOAT_BYTES",
    "DESCRIBE_METADATA_KEYS",
]

#: Size in bytes charged per stored floating-point value in space budgets.
FLOAT_BYTES = 8

#: Runtime-metadata keys ``describe()`` adds on top of ``config()``.  They are
#: never constructor parameters, and :func:`estimator_from_config` ignores
#: them so a describe dictionary round-trips into an equivalent estimator.
DESCRIBE_METADATA_KEYS = frozenset(
    {
        "class",
        "fitted",
        "columns",
        "rows_modelled",
        "memory_bytes",
        # degraded-mode surface of the sharded front end (see repro.shard)
        "degraded",
        "lost_shards",
    }
)


def _workload_is_empty(queries: object) -> bool:
    """Whether a workload is a sized, empty container (plan or sequence).

    Unsized iterables return ``False`` and are materialised by compilation —
    only provably empty workloads take the pre-compilation short-circuit.
    """
    try:
        return len(queries) == 0  # type: ignore[arg-type]
    except TypeError:
        return False


class SelectivityEstimator(ABC):
    """Abstract base class of every synopsis.

    Subclasses must call :meth:`_mark_fitted` at the end of ``fit`` and use
    :meth:`_require_fitted` in methods that need a built synopsis.
    """

    #: registry name; subclasses override.
    name: str = "estimator"

    #: Whether :meth:`merge_state` can fold per-shard synopses into one.
    supports_merge: bool = False

    #: Whether :meth:`merge_state` is a deterministic recombination of
    #: sufficient statistics (exact up to float rounding).  Sample-based
    #: merges resample and are only statistically equivalent.
    merge_lossless: bool = False

    #: Whether the merged synopsis reproduces a monolithic fit bitwise
    #: (requires fitting every shard against the same :meth:`shard_frame`).
    merge_exact: bool = False

    #: Optional telemetry sink (:class:`repro.obs.metrics.MetricsRegistry`).
    #: A class attribute so the uninstrumented default costs one attribute
    #: load and an ``is not None`` branch on hot maintenance paths.  Never
    #: part of model state: registries deep-copy to themselves (checkout
    #: keeps recording into the same sink) and are excluded from snapshots.
    _metrics = None

    def __init__(self) -> None:
        self._fitted = False
        self._columns: tuple[str, ...] = ()
        self._row_count = 0

    def attach_metrics(self, registry=None) -> "SelectivityEstimator":
        """Attach an observability registry (``None`` detaches; returns self).

        Instrumented maintenance paths (the streaming bulk-ingest pipeline)
        record rows/latency into it; estimators without instrumentation
        simply ignore the attachment.  The registry is a process-local sink,
        not model state — it does not appear in ``config()``/``state_dict()``
        and survives copy-on-write checkout by reference.
        """
        self._metrics = registry
        return self

    # -- lifecycle ---------------------------------------------------------
    @abstractmethod
    def fit(self, table: Table, columns: Sequence[str] | None = None) -> "SelectivityEstimator":
        """Build the synopsis from ``table`` over ``columns`` (default: all)."""

    @abstractmethod
    def memory_bytes(self) -> int:
        """Approximate memory footprint of the synopsis in bytes."""

    # -- estimation ----------------------------------------------------------
    def estimate(self, query: RangeQuery) -> float:
        """Estimated fraction of rows satisfying ``query``, in ``[0, 1]``.

        Sugar over a one-row :meth:`estimate_batch`.
        """
        return float(self.estimate_batch((query,))[0])

    def estimate_batch(
        self, queries: Sequence[RangeQuery] | CompiledQueries
    ) -> np.ndarray:
        """Vector of estimates in ``[0, 1]`` for a whole workload.

        ``queries`` is either a sequence of
        :class:`~repro.workload.queries.RangeQuery` objects (compiled against
        the fitted columns on the fly) or a pre-built
        :class:`~repro.workload.queries.CompiledQueries` plan, which skips all
        per-query Python work.  Queries constraining attributes the synopsis
        does not cover raise
        :class:`~repro.core.errors.DimensionMismatchError`.  An empty
        workload short-circuits to an empty float64 vector before any plan is
        compiled — the model is never touched.
        """
        self._require_fitted()
        if _workload_is_empty(queries):
            if isinstance(queries, CompiledQueries):
                # Keep the column-compatibility check: a zero-row plan built
                # for a different synopsis is still a caller bug worth raising
                # on, and validating an empty plan costs nothing.
                compile_queries(queries, self._columns)
            return np.zeros(0)
        compiled = compile_queries(queries, self._columns)
        if len(compiled) == 0:
            return np.zeros(0)
        estimates = np.asarray(
            self._estimate_batch(compiled.lows, compiled.highs), dtype=float
        )
        return self._clip_fractions(estimates)

    def _estimate_batch(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Raw estimates for validated ``(n, d)`` bound matrices.

        Built-in synopses override this with a natively vectorised
        implementation; the base version is a per-query loop so estimators
        that only implement the scalar :meth:`estimate` keep working.
        """
        if type(self).estimate is SelectivityEstimator.estimate:
            raise NotImplementedError(
                f"{type(self).__name__} must implement _estimate_batch() "
                "(or the scalar estimate())"
            )
        plan = CompiledQueries(self._columns, lows, highs)
        return np.array([self.estimate(q) for q in plan.to_queries()], dtype=float)

    # -- shared helpers ------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        """Whether ``fit`` has completed."""
        return self._fitted

    @property
    def columns(self) -> tuple[str, ...]:
        """Attributes covered by the synopsis (set during ``fit``)."""
        return self._columns

    @property
    def row_count(self) -> int:
        """Number of rows the synopsis currently models."""
        return self._row_count

    def estimate_cardinality(self, query: RangeQuery) -> float:
        """Estimated number of qualifying rows (selectivity × row count)."""
        return self.estimate(query) * self._row_count

    def estimate_cardinality_batch(
        self, queries: Sequence[RangeQuery] | CompiledQueries
    ) -> np.ndarray:
        """Vector of cardinality estimates (selectivity × row count)."""
        return self.estimate_batch(queries) * self._row_count

    def estimate_many(self, queries: Iterable[RangeQuery]) -> np.ndarray:
        """Deprecated alias of :meth:`estimate_batch`."""
        warnings.warn(
            "estimate_many() is deprecated; use estimate_batch()",
            DeprecationWarning,
            stacklevel=2,
        )
        queries = queries if isinstance(queries, CompiledQueries) else list(queries)
        return self.estimate_batch(queries)

    def _mark_fitted(self, columns: Sequence[str], row_count: int) -> None:
        self._columns = tuple(columns)
        self._row_count = int(row_count)
        self._fitted = True

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} must be fitted before use")

    def _resolve_columns(self, table: Table, columns: Sequence[str] | None) -> list[str]:
        resolved = list(columns) if columns is not None else list(table.column_names)
        if not resolved:
            raise InvalidParameterError("at least one column is required")
        for column in resolved:
            if column not in table:
                raise DimensionMismatchError(
                    f"table {table.name!r} has no column {column!r}"
                )
        return resolved

    def _query_bounds(self, query: RangeQuery) -> tuple[np.ndarray, np.ndarray]:
        """Bounds of ``query`` aligned with the fitted columns.

        Raises if the query constrains an attribute the synopsis does not
        cover — that estimate would silently ignore a predicate otherwise.
        """
        self._require_fitted()
        unknown = set(query.attributes) - set(self._columns)
        if unknown:
            raise DimensionMismatchError(
                f"query constrains {sorted(unknown)} which are not covered by this synopsis "
                f"(covered: {list(self._columns)})"
            )
        return query.bounds(self._columns)

    @staticmethod
    def _clip_fraction(value: float) -> float:
        """Clip an estimate into the legal selectivity range ``[0, 1]``."""
        if np.isnan(value):
            return 0.0
        return float(min(max(value, 0.0), 1.0))

    @staticmethod
    def _clip_fractions(values: np.ndarray) -> np.ndarray:
        """Vector form of :meth:`_clip_fraction` (NaN collapses to 0)."""
        values = np.where(np.isnan(values), 0.0, values)
        return np.clip(values, 0.0, 1.0)

    # -- mergeable-synopsis protocol (sharded estimation) ----------------------
    def shard_frame(
        self, table: Table, columns: Sequence[str]
    ) -> dict[str, np.ndarray]:
        """Global fit frame evaluated once on the *full* table by a sharder.

        Estimators whose synopsis layout depends on global data properties
        (bucket edges from min/max or quantiles, grid boundaries) return those
        properties here; every per-shard :meth:`fit_shard` then builds against
        the same frame, which is what makes :meth:`merge_state` exact.  The
        default frame is empty — correct for estimators without global layout
        decisions (samples) and for the weighted-combine fallback, which
        never calls it.
        """
        return {}

    def fit_shard(
        self,
        table: Table,
        columns: Sequence[str] | None = None,
        frame: Mapping[str, np.ndarray] | None = None,
    ) -> "SelectivityEstimator":
        """Fit on one shard's sub-table, honouring a coordinator ``frame``.

        The default ignores the frame and delegates to :meth:`fit`; estimators
        with :attr:`supports_merge` override it (or :meth:`fit`) so the frame
        pins their layout.
        """
        return self.fit(table, columns)

    def merge_state(
        self, shards: Sequence["SelectivityEstimator"]
    ) -> "SelectivityEstimator":
        """Fold the fitted states of per-shard synopses into this instance.

        ``self`` is a configuration-compatible (typically fresh) instance that
        becomes the combined synopsis; ``shards`` are estimators of the same
        registry name fitted on disjoint partitions (against a common
        :meth:`shard_frame` where the estimator defines one).  Only available
        when :attr:`supports_merge` is set.
        """
        raise InvalidParameterError(
            f"{type(self).__name__} does not support state-merge; combine "
            "per-shard estimates with combine_estimates() instead"
        )

    @classmethod
    def combine_estimates(
        cls, estimates: np.ndarray, row_counts: np.ndarray
    ) -> np.ndarray:
        """Row-count-weighted reduction of per-shard estimate vectors.

        ``estimates`` is ``(shards, n)`` — one ``estimate_batch`` result per
        shard — and ``row_counts`` the rows each shard models.  The default is
        the weighted average, which is the exact global selectivity when each
        per-shard estimate were exact (``sum_s n_s * p_s / sum_s n_s``).
        Empty shards carry zero weight; an entirely empty table estimates 0.
        """
        estimates = np.atleast_2d(np.asarray(estimates, dtype=float))
        weights = np.asarray(row_counts, dtype=float)
        if estimates.shape[0] != weights.shape[0]:
            raise InvalidParameterError(
                f"{estimates.shape[0]} shard estimate vectors for "
                f"{weights.shape[0]} shard row counts"
            )
        total = weights.sum()
        if total <= 0:
            return np.zeros(estimates.shape[1])
        return (weights[:, None] * estimates).sum(axis=0) / total

    def _require_merge_peers(
        self, shards: Sequence["SelectivityEstimator"]
    ) -> list["SelectivityEstimator"]:
        """Validate a merge input: same registry name, every shard fitted."""
        if not shards:
            raise InvalidParameterError("merge_state needs at least one shard")
        peers = list(shards)
        for shard in peers:
            if shard.name != self.name:
                raise InvalidParameterError(
                    f"cannot merge {shard.name!r} state into {self.name!r}"
                )
            if not shard.is_fitted:
                raise NotFittedError("every merged shard must be fitted")
            if shard.columns != peers[0].columns:
                raise DimensionMismatchError(
                    "merged shards must cover the same columns"
                )
        return peers

    # -- configuration & persistence -----------------------------------------
    def _config_params(self) -> dict[str, Any]:
        """Constructor parameters (JSON-serialisable), overridden per subclass."""
        return {}

    def config(self) -> dict[str, Any]:
        """Reconstruction recipe: ``{"name": ..., **constructor_params}``.

        ``estimator_from_config(est.config())`` builds an equivalent unfitted
        estimator.
        """
        return {"name": self.name, **self._config_params()}

    def describe(self) -> dict[str, Any]:
        """Structured description used in experiment reports.

        A superset of :meth:`config`: the extra runtime-metadata keys are the
        reserved :data:`DESCRIBE_METADATA_KEYS`, which
        :func:`estimator_from_config` strips, so the description itself
        round-trips into an equivalent unfitted estimator.
        """
        return {
            **self.config(),
            "class": type(self).__name__,
            "fitted": self._fitted,
            "columns": list(self._columns),
            "rows_modelled": self._row_count,
            "memory_bytes": self.memory_bytes() if self._fitted else 0,
        }

    def _state(self) -> tuple[dict[str, np.ndarray], dict[str, Any]]:
        """Fitted state as ``(arrays, meta)``.

        ``arrays`` maps snapshot keys to numpy arrays (persisted losslessly);
        ``meta`` holds JSON-serialisable scalars.  The base implementation is
        empty, which is correct only for estimators whose entire state is
        ``config() + columns + row_count`` — everything else overrides.
        """
        return {}, {}

    def _restore_state(
        self, arrays: Mapping[str, np.ndarray], meta: Mapping[str, Any]
    ) -> None:
        """Inverse of :meth:`_state`; called after the envelope is applied."""

    def state_dict(self) -> dict[str, Any]:
        """Complete snapshot of the estimator (config + fitted state).

        Streaming estimators are flushed first so rows sitting in a pending
        ingestion buffer are folded into the model rather than silently
        dropped from the snapshot.  Everything except the ``"arrays"`` entry
        is JSON-serialisable.
        """
        if isinstance(self, StreamingEstimator):
            self.flush()
        arrays, meta = self._state()
        return {
            "estimator": self.name,
            "config": self._config_params(),
            "fitted": bool(self._fitted),
            "columns": list(self._columns),
            "row_count": int(self._row_count),
            "meta": meta,
            "arrays": {key: np.asarray(value) for key, value in arrays.items()},
        }

    def load_state(self, state: Mapping[str, Any]) -> "SelectivityEstimator":
        """Restore a :meth:`state_dict` snapshot onto this instance.

        The snapshot must come from the same registry name; constructor
        parameters are *not* re-applied here — build the instance via
        :func:`estimator_from_config` on the snapshot's config first (which is
        what :func:`repro.persist.load_estimator` does).
        """
        name = state.get("estimator")
        if name != self.name:
            raise InvalidParameterError(
                f"snapshot of estimator {name!r} cannot be loaded into {self.name!r}"
            )
        self._columns = tuple(state.get("columns", ()))
        self._row_count = int(state.get("row_count", 0))
        self._fitted = bool(state.get("fitted", False))
        arrays = {
            key: np.asarray(value) for key, value in state.get("arrays", {}).items()
        }
        self._restore_state(arrays, state.get("meta", {}))
        return self

    def save(self, path: "str | Any") -> None:
        """Write a single-file ``.npz`` snapshot (see :mod:`repro.persist`)."""
        from repro.persist.snapshot import save_estimator  # lazy: avoids a cycle

        save_estimator(self, path)

    @staticmethod
    def load(path: "str | Any") -> "SelectivityEstimator":
        """Load a snapshot written by :meth:`save` (any registered estimator)."""
        from repro.persist.snapshot import load_estimator  # lazy: avoids a cycle

        return load_estimator(path)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "fitted" if self._fitted else "unfitted"
        return f"{type(self).__name__}({status}, columns={list(self._columns)})"


class StreamingEstimator(SelectivityEstimator):
    """A synopsis that can be maintained incrementally over an insert stream.

    The maintenance contract is batch first, mirroring the estimation side:

    * ``insert(rows)`` accepts a ``(batch, len(columns))`` matrix of any
      batch size (a single row may be passed 1-D); **empty batches are a
      no-op**, never an error.
    * Implementations may buffer rows internally and fold them in chunked,
      vectorized maintenance steps, as long as the resulting synopsis does
      not depend on how the caller sliced the stream into ``insert`` calls.
    * ``flush()`` applies any internally buffered rows; estimators without
      an ingestion buffer inherit the default no-op.  Harness code calls it
      before timing estimation so buffered maintenance work is not billed
      to the query path.
    """

    @abstractmethod
    def insert(self, rows: np.ndarray) -> None:
        """Fold a batch of new rows (``(batch, len(columns))`` matrix) into the synopsis."""

    def flush(self) -> None:
        """Apply any internally buffered rows to the synopsis (default: no-op)."""

    def insert_row(self, row: Sequence[float]) -> None:
        """Convenience wrapper to insert a single row."""
        self.insert(np.asarray(row, dtype=float).reshape(1, -1))


class FeedbackEstimator(SelectivityEstimator):
    """A synopsis that self-tunes from observed true selectivities."""

    @abstractmethod
    def feedback(self, query: RangeQuery, true_fraction: float) -> None:
        """Incorporate the observed true selectivity of an executed query."""


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, Callable[..., SelectivityEstimator]] = {}


def register_estimator(name: str, factory: Callable[..., SelectivityEstimator] | None = None):
    """Register an estimator factory under ``name``.

    Can be used as a decorator on the estimator class::

        @register_estimator("equiwidth")
        class EquiWidthHistogram(SelectivityEstimator): ...
    """

    def _register(target: Callable[..., SelectivityEstimator]):
        if name in _REGISTRY:
            raise InvalidParameterError(f"estimator name {name!r} is already registered")
        _REGISTRY[name] = target
        return target

    if factory is not None:
        return _register(factory)
    return _register


def create_estimator(name: str, **kwargs: Any) -> SelectivityEstimator:
    """Instantiate a registered estimator by name with keyword arguments."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown estimator {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory(**kwargs)


def available_estimators() -> list[str]:
    """Names of all registered estimators."""
    return sorted(_REGISTRY)


def estimator_from_config(config: Mapping[str, Any]) -> SelectivityEstimator:
    """Build an estimator from ``{"name": ..., **params}`` configuration.

    The reserved runtime-metadata keys in :data:`DESCRIBE_METADATA_KEYS` are
    ignored, so the output of :meth:`SelectivityEstimator.describe` (and the
    ``config`` entry of a snapshot header) round-trips directly.
    """
    if "name" not in config:
        raise InvalidParameterError("estimator config requires a 'name' key")
    params = {
        k: v
        for k, v in config.items()
        if k != "name" and k not in DESCRIBE_METADATA_KEYS
    }
    return create_estimator(str(config["name"]), **params)
