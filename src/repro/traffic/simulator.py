"""Deterministic multi-tenant traffic simulator over a live estimator server.

The simulator turns a set of :class:`~repro.traffic.tenants.TenantProfile`
descriptions into a single open-loop event schedule — every tenant's arrival
times, op choices and plan draws are derived up front from
``SeedSequence([seed, tenant index])`` — and then replays that schedule
against a real :class:`~repro.serve.server.EstimatorServer`, recording each
op's wall-clock latency into an :mod:`repro.obs` registry.  Two runs with
the same profiles and seed execute the *identical* op sequence (pinned by a
checksum over every query answer), so tail-latency comparisons between runs
measure the system, not the workload.

Execution is single-threaded and ordered by virtual arrival time: the
interference mechanism under study is not CPU contention but *cache and
generation churn* — an ingest tenant's publishes bump the serving generation
and invalidate every cached plan, turning a victim tenant's hits into
misses.  That mechanism is fully exercised by interleaved sequential
execution, and keeping it single-threaded is what makes runs reproducible
enough to gate in CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Sequence

import numpy as np

from repro.core.errors import AdmissionRejected, InvalidParameterError
from repro.obs.export import exporter_for_path, resolve_exporter
from repro.obs.metrics import MetricsRegistry
from repro.traffic.tenants import DEFAULT_TENANTS, TenantProfile
from repro.workload.generators import TypedWorkload, UniformWorkload
from repro.workload.queries import LoweredQueries, compile_queries

__all__ = ["TrafficEvent", "TrafficReport", "TrafficSimulator"]

_OPS = ("query", "ingest", "publish")


@dataclass(frozen=True)
class TrafficEvent:
    """One scheduled arrival: when, who, what, and which plan (queries)."""

    time: float
    tenant: str
    op: str
    plan: int = -1


@dataclass
class TrafficReport:
    """Outcome of one simulator run (JSON-native via :meth:`to_payload`)."""

    duration: float
    seed: int
    events: int
    checksum: float
    tenants: dict[str, dict] = field(default_factory=dict)
    server: dict = field(default_factory=dict)
    admission: dict = field(default_factory=dict)

    def to_payload(self) -> dict:
        return {
            "duration": self.duration,
            "seed": self.seed,
            "events": self.events,
            "checksum": self.checksum,
            "tenants": self.tenants,
            "server": self.server,
            "admission": self.admission,
        }

    def export(self, path, exporter=None, metrics: MetricsRegistry | None = None):
        """Write the report (plus a registry snapshot) through an exporter.

        ``exporter`` follows the shared component-resolution convention
        (name, config mapping, or instance); when omitted it is inferred
        from the path suffix.  Returns the written path.
        """
        exporter = (
            exporter_for_path(path) if exporter is None else resolve_exporter(exporter)
        )
        payload = self.to_payload()
        if metrics is not None:
            payload.update(metrics.snapshot())
        return exporter.export(payload, path)


class _TenantState:
    """Frozen per-tenant draw state: plan pool + dedicated RNG streams."""

    __slots__ = ("profile", "rng", "plans", "plan_probs", "ingest_source")

    def __init__(self, profile: TenantProfile, seed: int, index: int, server, table):
        self.profile = profile
        # One independent, splittable stream per tenant: tenant i's draws
        # never depend on how many events tenant j generated.
        self.rng = np.random.default_rng(np.random.SeedSequence([seed, index]))
        workload_seed = int(self.rng.integers(0, 2**31 - 1))
        schema = table.schema
        typed = bool(profile.typed and schema is not None and schema.encoded_columns)
        if typed:
            generator = TypedWorkload(
                table, volume_fraction=profile.volume_fraction, seed=workload_seed
            )
        else:
            generator = UniformWorkload(
                table,
                attributes=server.columns,
                volume_fraction=profile.volume_fraction,
                seed=workload_seed,
            )
        queries = generator.generate(profile.plan_pool * profile.queries_per_plan)
        self.plans = []
        for start in range(0, len(queries), profile.queries_per_plan):
            chunk = queries[start : start + profile.queries_per_plan]
            plan = compile_queries(
                chunk, server.columns, schema=table.schema if typed else None
            )
            self.plans.append(plan)
        # Zipf-skewed popularity over the pool: plan 0 is the hottest.
        ranks = np.arange(1, profile.plan_pool + 1, dtype=float)
        weights = ranks ** -profile.zipf_s
        self.plan_probs = weights / weights.sum()
        self.ingest_source = table

    def draw_plan(self) -> int:
        return int(self.rng.choice(len(self.plans), p=self.plan_probs))

    def draw_op(self) -> str:
        return _OPS[int(self.rng.choice(3, p=self.profile.op_weights))]

    def draw_ingest_rows(self) -> np.ndarray:
        table = self.ingest_source
        index = self.rng.integers(0, table.row_count, self.profile.ingest_rows)
        return table.as_matrix()[index]

    def arrivals(self, duration: float) -> list[float]:
        """Open-loop arrival times over ``[0, duration)`` of virtual seconds.

        A two-state modulated Poisson process: the tenant alternates between
        a normal state at ``rate`` and a burst state at ``rate * burstiness``,
        spending ``burst_fraction`` of virtual time bursting (mean burst
        length 0.25 s).  ``burstiness == 1`` degenerates to plain Poisson.
        """
        profile = self.profile
        times: list[float] = []
        now = 0.0
        bursting = False
        state_end = 0.0
        burst_mean = 0.25
        normal_mean = (
            burst_mean * (1.0 - profile.burst_fraction) / profile.burst_fraction
            if profile.burst_fraction > 0
            else np.inf
        )
        use_bursts = profile.burstiness > 1.0 and profile.burst_fraction > 0
        while now < duration:
            if use_bursts and now >= state_end:
                bursting = not bursting
                mean = burst_mean if bursting else normal_mean
                state_end = now + float(self.rng.exponential(mean))
            rate = profile.rate * (profile.burstiness if bursting else 1.0)
            now += float(self.rng.exponential(1.0 / rate))
            if now < duration:
                times.append(now)
        return times


class TrafficSimulator:
    """Replay deterministic multi-tenant traffic against a live server.

    Parameters
    ----------
    server:
        The :class:`~repro.serve.server.EstimatorServer` under test.
    table:
        Source :class:`~repro.engine.table.Table` for query generation and
        ingest rows (ingest batches are resampled rows of this table).
    tenants:
        Tenant profiles (defaults to :data:`~repro.traffic.tenants.DEFAULT_TENANTS`).
        Names must be unique.
    seed:
        Master seed; with identical profiles it fixes the entire schedule.
    metrics:
        Registry receiving ``traffic.op_seconds{tenant=,op=}`` latency
        series and ``traffic.ops{tenant=,op=}`` counters.  Defaults to the
        server's registry when that is enabled, else a fresh
        :class:`~repro.obs.metrics.MetricsRegistry` — the simulator always
        measures, even over an uninstrumented server.
    collector:
        Optional :class:`~repro.obs.collector.TelemetryCollector`.  When
        given, :meth:`run` drives it on **virtual time**: one ``tick`` per
        ``collector.interval`` of simulated seconds (plus a final tick at
        the end of the run), so trailing-window rollups — and any admission
        controller bound to the collector — see the run's own clock.  Use a
        fresh collector per run: ticks must advance monotonically.
    """

    def __init__(
        self,
        server,
        table,
        tenants: Sequence[TenantProfile] = DEFAULT_TENANTS,
        seed: int = 0,
        metrics: MetricsRegistry | None = None,
        collector=None,
    ) -> None:
        if not tenants:
            raise InvalidParameterError("at least one tenant profile is required")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise InvalidParameterError(f"tenant names must be unique: {names}")
        self.server = server
        self.table = table
        self.tenants = tuple(tenants)
        self.seed = int(seed)
        self.collector = collector
        if metrics is not None:
            self.metrics = metrics
        elif getattr(server, "metrics", None) is not None and server.metrics.enabled:
            self.metrics = server.metrics
        else:
            self.metrics = MetricsRegistry()
        self._states = {
            profile.name: _TenantState(profile, self.seed, index, server, table)
            for index, profile in enumerate(self.tenants)
        }

    # -- schedule --------------------------------------------------------------
    def schedule(self, duration: float) -> list[TrafficEvent]:
        """The full event list for ``duration`` virtual seconds, time-ordered.

        Pure function of ``(profiles, seed, duration)`` — calling it twice
        returns the same events, and :meth:`run` executes exactly this list.
        Ties are broken by tenant order, so the interleaving is total.
        """
        if duration <= 0:
            raise InvalidParameterError("duration must be positive")
        events: list[TrafficEvent] = []
        for index, profile in enumerate(self.tenants):
            # Draw state must not be shared with run(): rebuild a fresh
            # tenant state so schedule() is repeatable and side-effect free.
            state = _TenantState(profile, self.seed, index, self.server, self.table)
            for when in state.arrivals(duration):
                op = state.draw_op()
                plan = state.draw_plan() if op == "query" else -1
                events.append(TrafficEvent(when, profile.name, op, plan))
        events.sort(key=lambda e: (e.time, e.tenant))
        return events

    # -- execution -------------------------------------------------------------
    def run(self, duration: float) -> TrafficReport:
        """Execute the schedule against the server and report per-tenant tails.

        Latency quantiles are read from the ``traffic.op_seconds`` series —
        the *client-observed* spans (compile + serve + reduce for queries;
        checkout + insert + flush + publish for ingest), which is what an
        SLO on this layer should gate.

        With a ``collector`` attached, the run becomes a closed control
        loop: the collector is ticked on virtual-time interval boundaries
        (event timestamps), and an admission controller bound to it sheds
        ops mid-run.  Refused ops raise
        :class:`~repro.core.errors.AdmissionRejected` inside the loop; the
        simulator counts them (``traffic.rejected{tenant=,op=}``, plus
        per-tenant ``rejected``/``goodput`` report entries) instead of
        recording a latency — a shed op was never served, so it must not
        enter the tail series.
        """
        events = self.schedule(duration)
        # Rebuild draw states so ingest-row draws replay identically run-to-run.
        states = {
            profile.name: _TenantState(profile, self.seed, index, self.server, self.table)
            for index, profile in enumerate(self.tenants)
        }
        op_seconds = {
            (name, op): self.metrics.histogram("traffic.op_seconds", tenant=name, op=op)
            for name in states
            for op in _OPS
        }
        op_counts = {
            (name, op): self.metrics.counter("traffic.ops", tenant=name, op=op)
            for name in states
            for op in _OPS
        }
        rejected: dict[tuple[str, str], int] = {}
        admission = getattr(self.server, "admission", None)
        collector = self.collector
        if collector is not None and collector.last_tick is None:
            collector.tick(now=0.0)  # baseline at virtual time zero
        # Tick boundaries as rounded integer multiples of the interval —
        # accumulating floats would drift the recorded tick times
        # (0.1 + 0.1 + 0.1 == 0.30000000000000004).
        ticks = 0
        next_tick = collector.interval if collector is not None else float("inf")
        checksum = 0.0
        for event in events:
            while event.time >= next_tick:
                collector.tick(now=next_tick)
                ticks += 1
                next_tick = round((ticks + 1) * collector.interval, 9)
            state = states[event.tenant]
            start = perf_counter()
            try:
                if event.op == "query":
                    plan = state.plans[event.plan]
                    if isinstance(plan, LoweredQueries):
                        estimates = plan.reduce(
                            self.server.estimate_batch(
                                plan.plan, tenant=event.tenant, now=event.time
                            )
                        )
                    else:
                        estimates = self.server.estimate_batch(
                            plan, tenant=event.tenant, now=event.time
                        )
                    checksum += float(np.sum(estimates))
                elif event.op == "ingest":
                    if admission is not None:
                        admission.admit(event.tenant, "ingest", now=event.time)
                    rows = state.draw_ingest_rows()
                    model = self.server.checkout()
                    model.insert(rows)
                    if hasattr(model, "flush"):
                        model.flush()
                    self.server.publish(model)
                else:  # pure publish churn: version bump, no data change
                    if admission is not None:
                        admission.admit(event.tenant, "publish", now=event.time)
                    self.server.publish(self.server.checkout())
            except AdmissionRejected:
                key = (event.tenant, event.op)
                rejected[key] = rejected.get(key, 0) + 1
                self.metrics.counter(
                    "traffic.rejected", tenant=event.tenant, op=event.op
                ).inc()
                continue
            elapsed = perf_counter() - start
            op_seconds[(event.tenant, event.op)].record(elapsed)
            op_counts[(event.tenant, event.op)].inc()
        if collector is not None and duration > next_tick - collector.interval:
            collector.tick(now=duration)
        return self._report(duration, events, checksum, rejected, admission)

    def _report(
        self,
        duration: float,
        events: list[TrafficEvent],
        checksum: float,
        rejected: "dict[tuple[str, str], int] | None" = None,
        admission=None,
    ) -> TrafficReport:
        rejected = rejected or {}
        scheduled: dict[tuple[str, str], int] = {}
        for event in events:
            key = (event.tenant, event.op)
            scheduled[key] = scheduled.get(key, 0) + 1
        tenants: dict[str, dict] = {}
        for name, state in self._states.items():
            entry: dict = {"profile": state.profile.describe(), "ops": {}}
            for op in _OPS:
                histogram = self.metrics.histogram(
                    "traffic.op_seconds", tenant=name, op=op
                )
                if histogram.count:
                    entry["ops"][op] = {
                        "count": histogram.count,
                        "mean_seconds": histogram.mean,
                        **histogram.quantiles(),
                    }
            query = entry["ops"].get("query")
            if query:
                entry["p50"] = query["p50"]
                entry["p99"] = query["p99"]
            refused = {
                op: count
                for (tenant, op), count in rejected.items()
                if tenant == name and count
            }
            if refused:
                entry["rejected"] = refused
            total = sum(c for (t, _op), c in scheduled.items() if t == name)
            refused_total = sum(refused.values())
            # Goodput = admitted fraction of this run's *scheduled* ops —
            # the quantity the admission bench gates for the storm tenant.
            entry["goodput"] = (
                (total - refused_total) / total if total else 1.0
            )
            tenants[name] = entry
        server_stats = self.server.stats() if hasattr(self.server, "stats") else {}
        admission_stats = (
            {**admission.describe(), "slo": admission.slo_status()}
            if admission is not None
            else {}
        )
        return TrafficReport(
            duration=duration,
            seed=self.seed,
            events=len(events),
            checksum=checksum,
            tenants=tenants,
            server=server_stats,
            admission=admission_stats,
        )
