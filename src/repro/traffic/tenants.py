"""Tenant profiles for the multi-tenant traffic simulator.

A :class:`TenantProfile` is a declarative description of one tenant's
traffic: how often it arrives (rate / burstiness), what it does when it
arrives (query / ingest / publish mix), and what its queries look like
(plan-pool size, zipf skew over the pool, batch size, selectivity volume).
Profiles are frozen value objects — the simulator derives every random
decision from ``(seed, tenant index)``, so the same profiles under the same
seed replay the same traffic exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.core.errors import InvalidParameterError

__all__ = ["TenantProfile", "DEFAULT_TENANTS"]


@dataclass(frozen=True)
class TenantProfile:
    """One tenant's traffic shape.

    Parameters
    ----------
    name:
        Tenant label; appears as the ``tenant=`` label on every telemetry
        series the simulator records.
    query_weight / ingest_weight / publish_weight:
        Relative odds that an arrival is a query batch, an ingest batch
        (checkout + insert + flush + publish), or a pure model re-publish
        (churn).  At least one weight must be positive.
    rate:
        Mean arrivals per second of *virtual* time.  The simulator is
        open-loop: arrival times are drawn up front and never stretched by
        service time, which is what makes tail latency measurable.
    burstiness:
        Rate multiplier while the tenant is in its burst state (``1.0``
        disables bursts).
    burst_fraction:
        Fraction of virtual time spent in the burst state.
    plan_pool:
        Number of distinct query plans the tenant rotates through.  Pools
        smaller than the server cache make a tenant cache-friendly; larger
        pools force recomputation.
    zipf_s:
        Zipf exponent for draws from the plan pool (``0`` = uniform).  Real
        dashboards re-ask a few hot plans constantly; skew reproduces that.
    queries_per_plan:
        Queries per submitted batch (one plan = one ``estimate_batch`` call).
    volume_fraction:
        Target selectivity volume of generated range queries.
    ingest_rows:
        Rows per ingest batch.
    typed:
        Generate typed workloads (categorical predicates) when the table has
        a schema with encoded columns; plain numeric ranges otherwise.
    """

    name: str
    query_weight: float = 1.0
    ingest_weight: float = 0.0
    publish_weight: float = 0.0
    rate: float = 100.0
    burstiness: float = 1.0
    burst_fraction: float = 0.2
    plan_pool: int = 16
    zipf_s: float = 1.1
    queries_per_plan: int = 8
    volume_fraction: float = 0.15
    ingest_rows: int = 256
    typed: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidParameterError("tenant name must be non-empty")
        for weight_field in ("query_weight", "ingest_weight", "publish_weight"):
            if getattr(self, weight_field) < 0:
                raise InvalidParameterError(f"{weight_field} must be non-negative")
        if self.query_weight + self.ingest_weight + self.publish_weight <= 0:
            raise InvalidParameterError(
                f"tenant {self.name!r} needs at least one positive op weight"
            )
        if self.rate <= 0:
            raise InvalidParameterError("rate must be positive")
        if self.burstiness < 1.0:
            raise InvalidParameterError("burstiness must be >= 1 (1 disables bursts)")
        if not 0.0 <= self.burst_fraction < 1.0:
            raise InvalidParameterError("burst_fraction must be in [0, 1)")
        if self.plan_pool < 1:
            raise InvalidParameterError("plan_pool must be positive")
        if self.zipf_s < 0:
            raise InvalidParameterError("zipf_s must be non-negative")
        if self.queries_per_plan < 1:
            raise InvalidParameterError("queries_per_plan must be positive")
        if not 0.0 < self.volume_fraction <= 1.0:
            raise InvalidParameterError("volume_fraction must be in (0, 1]")
        if self.ingest_rows < 1:
            raise InvalidParameterError("ingest_rows must be positive")

    @property
    def op_weights(self) -> tuple[float, float, float]:
        """Normalised ``(query, ingest, publish)`` probabilities."""
        total = self.query_weight + self.ingest_weight + self.publish_weight
        return (
            self.query_weight / total,
            self.ingest_weight / total,
            self.publish_weight / total,
        )

    def describe(self) -> dict:
        """JSON-serialisable profile description (for BENCH envelopes)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


def _default_tenants() -> tuple[TenantProfile, ...]:
    return (
        TenantProfile(
            name="dashboard", rate=200.0, plan_pool=8, zipf_s=1.2, burstiness=3.0
        ),
        TenantProfile(
            name="adhoc", rate=60.0, plan_pool=64, zipf_s=0.0, volume_fraction=0.1
        ),
        TenantProfile(
            name="ingest",
            query_weight=0.2,
            ingest_weight=1.0,
            rate=20.0,
            plan_pool=4,
            ingest_rows=512,
        ),
    )


#: A representative three-tenant mix: a cache-friendly dashboard, a
#: cache-hostile ad-hoc analyst, and a write-heavy ingest pipeline.
DEFAULT_TENANTS: tuple[TenantProfile, ...] = _default_tenants()
