"""Multi-tenant traffic simulation over the serving layer.

Deterministic, seedable open-loop traffic: :class:`TenantProfile` describes
one tenant's arrival process and op mix, :class:`TrafficSimulator` replays
the derived schedule against a live :class:`~repro.serve.server.EstimatorServer`
while recording per-tenant latency through :mod:`repro.obs`, and
:class:`TrafficReport` carries the per-tenant p50/p95/p99 readouts the
tail-latency benchmark gates on.
"""

from repro.traffic.simulator import TrafficEvent, TrafficReport, TrafficSimulator
from repro.traffic.tenants import DEFAULT_TENANTS, TenantProfile

__all__ = [
    "DEFAULT_TENANTS",
    "TenantProfile",
    "TrafficEvent",
    "TrafficReport",
    "TrafficSimulator",
]
