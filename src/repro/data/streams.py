"""Drifting data streams for the adaptivity experiments.

A :class:`DataStream` produces batches of rows whose generating distribution
may change over time.  The drift experiments (Fig. 5, Table 4) consume these
streams, feeding each batch both to the exact engine table (ground truth) and
to the streaming synopses under test.

Four drift patterns are provided:

* :func:`stationary_stream` — no drift; sanity baseline.
* :func:`sudden_drift_stream` — the distribution switches abruptly at given
  breakpoints (e.g. a fact table starts receiving a new product family).
* :func:`gradual_drift_stream` — the cluster centres move continuously, so
  the distribution at the end of the stream shares no mass with the start.
* :func:`rotating_drift_stream` — the centres orbit continuously (oscillate
  in 1-D) *and* optionally jump at breakpoints: the mixed sudden+gradual
  regime of the ensemble drift benchmark, where no single synopsis wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.data.generators import sample_gaussian_mixture

__all__ = [
    "DataStream",
    "stationary_stream",
    "sudden_drift_stream",
    "gradual_drift_stream",
    "rotating_drift_stream",
]


@dataclass
class DataStream:
    """A finite stream of row batches with a known per-batch generator.

    Attributes
    ----------
    dimensions:
        Attribute count of every row.
    batch_size:
        Number of rows per batch.
    batches:
        Number of batches in the stream.
    generator:
        ``generator(batch_index, rng) -> (batch_size, dimensions)`` array.
    seed:
        Seed of the stream's random generator.
    """

    dimensions: int
    batch_size: int
    batches: int
    generator: Callable[[int, np.random.Generator], np.ndarray]
    seed: int | None = 0
    name: str = "stream"

    def __post_init__(self) -> None:
        if self.dimensions < 1:
            raise InvalidParameterError("dimensions must be positive")
        if self.batch_size < 1:
            raise InvalidParameterError("batch_size must be positive")
        if self.batches < 1:
            raise InvalidParameterError("batches must be positive")

    @property
    def total_rows(self) -> int:
        """Total number of rows the stream will produce."""
        return self.batch_size * self.batches

    @property
    def column_names(self) -> list[str]:
        """Default column names ``x0 … x{d-1}``."""
        return [f"x{i}" for i in range(self.dimensions)]

    def __iter__(self) -> Iterator[np.ndarray]:
        rng = np.random.default_rng(self.seed)
        for index in range(self.batches):
            batch = np.atleast_2d(np.asarray(self.generator(index, rng), dtype=float))
            if batch.shape != (self.batch_size, self.dimensions):
                raise InvalidParameterError(
                    f"stream generator returned shape {batch.shape}, "
                    f"expected {(self.batch_size, self.dimensions)}"
                )
            yield batch

    def materialize(self) -> np.ndarray:
        """All rows of the stream as one ``(total_rows, dimensions)`` matrix."""
        return np.vstack(list(self))


def _resolve_breakpoints(drift_at: Sequence[float], batches: int) -> list[int]:
    """Batch indices of the relative breakpoints, clamped and deduplicated.

    Each breakpoint is clamped into ``[1, batches - 1]`` so a drift point
    close to either end still fires inside the stream (``round()`` would
    otherwise map e.g. ``0.999 * 100`` to batch 100, past the last batch),
    and the set is deduplicated so two nearby fractions rounding to the same
    batch cause one jump, not a silently doubled shift.
    """
    for point in drift_at:
        if not 0.0 < point < 1.0:
            raise InvalidParameterError("drift points must lie strictly inside (0, 1)")
    return sorted(
        {min(max(int(round(p * batches)), 1), max(batches - 1, 1)) for p in drift_at}
    )


def _mixture_batch(
    rng: np.random.Generator,
    batch_size: int,
    centers: np.ndarray,
    stds: np.ndarray,
    weights: np.ndarray,
) -> np.ndarray:
    return sample_gaussian_mixture(batch_size, centers, stds, weights, rng)


def stationary_stream(
    dimensions: int = 1,
    batch_size: int = 500,
    batches: int = 100,
    seed: int | None = 0,
) -> DataStream:
    """A stream whose Gaussian-mixture distribution never changes."""
    base = np.random.default_rng(seed)
    centers = base.uniform(0.0, 10.0, size=(3, dimensions))
    stds = np.full((3, dimensions), 0.5)
    weights = np.array([0.5, 0.3, 0.2])

    def generate(_: int, rng: np.random.Generator) -> np.ndarray:
        return _mixture_batch(rng, batch_size, centers, stds, weights)

    return DataStream(dimensions, batch_size, batches, generate, seed=seed, name="stationary")


def sudden_drift_stream(
    dimensions: int = 1,
    batch_size: int = 500,
    batches: int = 100,
    drift_at: Sequence[float] = (0.5,),
    shift: float = 8.0,
    seed: int | None = 0,
) -> DataStream:
    """A stream whose distribution jumps by ``shift`` at each relative breakpoint.

    ``drift_at`` lists breakpoints as fractions of the stream length; after
    the k-th breakpoint the mixture centres are translated by ``k * shift``.
    """
    base = np.random.default_rng(seed)
    centers = base.uniform(0.0, 5.0, size=(3, dimensions))
    stds = np.full((3, dimensions), 0.5)
    weights = np.array([0.5, 0.3, 0.2])
    breakpoints = _resolve_breakpoints(drift_at, batches)

    def generate(index: int, rng: np.random.Generator) -> np.ndarray:
        jumps = sum(1 for b in breakpoints if index >= b)
        return _mixture_batch(rng, batch_size, centers + jumps * shift, stds, weights)

    return DataStream(dimensions, batch_size, batches, generate, seed=seed, name="sudden_drift")


def gradual_drift_stream(
    dimensions: int = 1,
    batch_size: int = 500,
    batches: int = 100,
    total_shift: float = 10.0,
    seed: int | None = 0,
) -> DataStream:
    """A stream whose mixture centres move linearly by ``total_shift`` overall."""
    base = np.random.default_rng(seed)
    centers = base.uniform(0.0, 5.0, size=(3, dimensions))
    stds = np.full((3, dimensions), 0.5)
    weights = np.array([0.5, 0.3, 0.2])

    def generate(index: int, rng: np.random.Generator) -> np.ndarray:
        progress = index / max(batches - 1, 1)
        return _mixture_batch(rng, batch_size, centers + progress * total_shift, stds, weights)

    return DataStream(dimensions, batch_size, batches, generate, seed=seed, name="gradual_drift")


def rotating_drift_stream(
    dimensions: int = 1,
    batch_size: int = 500,
    batches: int = 100,
    radius: float = 6.0,
    revolutions: float = 1.0,
    drift_at: Sequence[float] = (),
    shift: float = 8.0,
    seed: int | None = 0,
) -> DataStream:
    """A stream whose centres orbit continuously and may also jump suddenly.

    The mixture centres move on a circle of ``radius`` in the first two
    attributes (completing ``revolutions`` turns over the stream); in 1-D the
    rotation degenerates to a sinusoidal oscillation of amplitude
    ``radius``.  ``drift_at`` optionally adds sudden jumps of ``shift`` at
    relative breakpoints with the same clamping/deduplication guarantees as
    :func:`sudden_drift_stream` — together they produce the mixed
    sudden+gradual regime the drift-adaptive ensemble is benchmarked on.
    """
    if radius < 0.0:
        raise InvalidParameterError("radius must be non-negative")
    base = np.random.default_rng(seed)
    centers = base.uniform(0.0, 5.0, size=(3, dimensions))
    stds = np.full((3, dimensions), 0.5)
    weights = np.array([0.5, 0.3, 0.2])
    breakpoints = _resolve_breakpoints(drift_at, batches)

    def generate(index: int, rng: np.random.Generator) -> np.ndarray:
        progress = index / max(batches - 1, 1)
        angle = 2.0 * np.pi * revolutions * progress
        moved = centers.copy()
        if dimensions >= 2:
            moved[:, 0] += radius * np.cos(angle)
            moved[:, 1] += radius * np.sin(angle)
        else:
            moved[:, 0] += radius * np.sin(angle)
        jumps = sum(1 for b in breakpoints if index >= b)
        return _mixture_batch(rng, batch_size, moved + jumps * shift, stds, weights)

    return DataStream(
        dimensions, batch_size, batches, generate, seed=seed, name="rotating_drift"
    )
