"""Synthetic dataset generators.

The evaluation replaces the (unavailable) real relations with synthetic data
whose distributional features — skew, multi-modality, correlation, cluster
structure — are the ones that drive selectivity-estimation error.  Every
generator returns a :class:`~repro.engine.table.Table` and takes an explicit
seed, so experiments are reproducible.

Generators
----------
* :func:`uniform_table` — independent uniform attributes (the easy case).
* :func:`gaussian_mixture_table` — multimodal clustered data; the standard
  hard case for fixed-bandwidth and coarse-histogram synopses.
* :func:`zipf_table` — heavy-tailed, highly skewed values (mapped into a
  continuous domain), modelling skewed fact-table measures.
* :func:`correlated_table` — linearly correlated attributes, the case where
  AVI estimators fail.
* :func:`clustered_table` — axis-aligned clusters with background noise.
* :func:`mixed_table` — one skewed, one multimodal and one correlated pair of
  attributes, used by the multi-dimensional accuracy experiments.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.engine.table import Table, TableSchema

__all__ = [
    "uniform_table",
    "gaussian_mixture_table",
    "zipf_table",
    "correlated_table",
    "clustered_table",
    "mixed_table",
    "mixed_type_table",
    "gaussian_mixture_density",
    "sample_gaussian_mixture",
    "DATASET_BUILDERS",
    "make_dataset",
]


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _column_names(dimensions: int, names: Sequence[str] | None) -> list[str]:
    if names is not None:
        if len(names) != dimensions:
            raise InvalidParameterError(f"{len(names)} names given for {dimensions} attributes")
        return list(names)
    return [f"x{i}" for i in range(dimensions)]


def uniform_table(
    rows: int,
    dimensions: int = 1,
    low: float = 0.0,
    high: float = 1.0,
    seed: int | np.random.Generator | None = 0,
    name: str = "uniform",
    column_names: Sequence[str] | None = None,
) -> Table:
    """Independent uniform attributes on ``[low, high]``."""
    if rows < 0:
        raise InvalidParameterError("rows must be non-negative")
    if high <= low:
        raise InvalidParameterError("high must exceed low")
    rng = _rng(seed)
    data = rng.uniform(low, high, size=(rows, dimensions))
    return Table.from_array(name, data, _column_names(dimensions, column_names))


def sample_gaussian_mixture(
    rows: int,
    means: np.ndarray,
    stds: np.ndarray,
    weights: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample ``rows`` points from a Gaussian mixture (any dimensionality)."""
    means = np.atleast_2d(np.asarray(means, dtype=float))
    stds = np.atleast_2d(np.asarray(stds, dtype=float))
    weights = np.asarray(weights, dtype=float)
    weights = weights / weights.sum()
    components = rng.choice(means.shape[0], size=rows, p=weights)
    noise = rng.standard_normal(size=(rows, means.shape[1]))
    return means[components] + noise * stds[components]


def gaussian_mixture_density(
    points: np.ndarray, means: np.ndarray, stds: np.ndarray, weights: np.ndarray
) -> np.ndarray:
    """True density of a diagonal-covariance Gaussian mixture at ``points``."""
    points = np.atleast_2d(np.asarray(points, dtype=float))
    means = np.atleast_2d(np.asarray(means, dtype=float))
    stds = np.atleast_2d(np.asarray(stds, dtype=float))
    weights = np.asarray(weights, dtype=float)
    weights = weights / weights.sum()
    density = np.zeros(points.shape[0])
    for mean, std, weight in zip(means, stds, weights):
        z = (points - mean) / std
        component = np.exp(-0.5 * np.sum(z * z, axis=1))
        component /= np.prod(std) * (2 * math.pi) ** (points.shape[1] / 2)
        density += weight * component
    return density


def gaussian_mixture_table(
    rows: int,
    dimensions: int = 1,
    components: int = 3,
    separation: float = 3.0,
    seed: int | np.random.Generator | None = 0,
    name: str = "gaussian_mixture",
    column_names: Sequence[str] | None = None,
) -> Table:
    """Multimodal data: ``components`` Gaussian clusters spread along the diagonal.

    ``separation`` controls how far apart the modes are (in units of the
    component standard deviation); larger values give more sharply multimodal
    data, which is harder for over-smoothing estimators.
    """
    if components < 1:
        raise InvalidParameterError("components must be positive")
    if separation < 0:
        raise InvalidParameterError("separation must be non-negative")
    rng = _rng(seed)
    std = 1.0
    centers = np.arange(components, dtype=float) * separation * std
    means = np.tile(centers[:, None], (1, dimensions))
    # Per-component jitter so clusters are not perfectly on the diagonal.
    means += rng.uniform(-0.5, 0.5, size=means.shape) * std
    stds = np.full((components, dimensions), std)
    stds *= rng.uniform(0.6, 1.4, size=stds.shape)
    weights = rng.uniform(0.5, 1.5, size=components)
    data = sample_gaussian_mixture(rows, means, stds, weights, rng)
    return Table.from_array(name, data, _column_names(dimensions, column_names))


def zipf_table(
    rows: int,
    dimensions: int = 1,
    theta: float = 1.0,
    distinct: int = 1000,
    domain: float = 1000.0,
    seed: int | np.random.Generator | None = 0,
    name: str = "zipf",
    column_names: Sequence[str] | None = None,
) -> Table:
    """Zipf-skewed data mapped onto a continuous domain.

    Value ranks follow a Zipf distribution with exponent ``theta`` over
    ``distinct`` distinct values, then ranks are mapped to positions in
    ``[0, domain]`` with a small uniform jitter so columns remain continuous.
    ``theta = 0`` is uniform; ``theta = 2`` is extremely skewed.
    """
    if theta < 0:
        raise InvalidParameterError("theta must be non-negative")
    if distinct < 1:
        raise InvalidParameterError("distinct must be positive")
    rng = _rng(seed)
    ranks = np.arange(1, distinct + 1, dtype=float)
    probabilities = ranks ** (-theta) if theta > 0 else np.ones(distinct)
    probabilities /= probabilities.sum()
    width = domain / distinct
    columns = []
    for _ in range(dimensions):
        chosen = rng.choice(distinct, size=rows, p=probabilities)
        positions = chosen * width + rng.uniform(0.0, width, size=rows)
        columns.append(positions)
    data = np.column_stack(columns) if columns else np.empty((rows, 0))
    return Table.from_array(name, data, _column_names(dimensions, column_names))


def correlated_table(
    rows: int,
    dimensions: int = 2,
    correlation: float = 0.8,
    seed: int | np.random.Generator | None = 0,
    name: str = "correlated",
    column_names: Sequence[str] | None = None,
) -> Table:
    """Jointly Gaussian attributes with pairwise correlation ``correlation``."""
    if dimensions < 2:
        raise InvalidParameterError("correlated_table needs at least 2 dimensions")
    if not -1.0 < correlation < 1.0:
        raise InvalidParameterError("correlation must lie strictly inside (-1, 1)")
    rng = _rng(seed)
    covariance = np.full((dimensions, dimensions), correlation)
    np.fill_diagonal(covariance, 1.0)
    data = rng.multivariate_normal(np.zeros(dimensions), covariance, size=rows)
    return Table.from_array(name, data, _column_names(dimensions, column_names))


def clustered_table(
    rows: int,
    dimensions: int = 2,
    clusters: int = 5,
    noise_fraction: float = 0.1,
    seed: int | np.random.Generator | None = 0,
    name: str = "clustered",
    column_names: Sequence[str] | None = None,
) -> Table:
    """Random compact clusters plus a uniform background noise component."""
    if clusters < 1:
        raise InvalidParameterError("clusters must be positive")
    if not 0.0 <= noise_fraction <= 1.0:
        raise InvalidParameterError("noise_fraction must lie in [0, 1]")
    rng = _rng(seed)
    noise_rows = int(round(rows * noise_fraction))
    cluster_rows = rows - noise_rows
    centers = rng.uniform(0.0, 100.0, size=(clusters, dimensions))
    radii = rng.uniform(0.5, 3.0, size=(clusters, dimensions))
    weights = rng.uniform(0.5, 1.5, size=clusters)
    cluster_data = sample_gaussian_mixture(cluster_rows, centers, radii, weights, rng)
    noise = rng.uniform(0.0, 100.0, size=(noise_rows, dimensions))
    data = np.vstack([cluster_data, noise]) if rows else np.empty((0, dimensions))
    rng.shuffle(data)
    return Table.from_array(name, data, _column_names(dimensions, column_names))


def mixed_table(
    rows: int,
    seed: int | np.random.Generator | None = 0,
    name: str = "mixed",
) -> Table:
    """A 4-attribute table mixing skew, multimodality and correlation.

    Attributes: ``skewed`` (Zipf), ``multimodal`` (3-component mixture),
    ``base`` and ``corr`` (Gaussian pair with correlation 0.85).
    """
    rng = _rng(seed)
    skewed = zipf_table(rows, 1, theta=1.2, seed=rng).column("x0")
    multimodal = gaussian_mixture_table(rows, 1, components=3, separation=4.0, seed=rng).column("x0")
    pair = correlated_table(rows, 2, correlation=0.85, seed=rng)
    return Table(
        name,
        {
            "skewed": skewed,
            "multimodal": multimodal,
            "base": pair.column("x0"),
            "corr": pair.column("x1"),
        },
    )


#: Prefix families used for the string column of :func:`mixed_type_table` —
#: shared prefixes make prefix predicates select meaningful row groups.
_PRODUCT_FAMILIES = ("auto", "bio", "chem", "data", "eco", "fin")

#: Region base names for the categorical column of :func:`mixed_type_table`.
_REGION_NAMES = (
    "north", "south", "east", "west", "central",
    "apac", "emea", "latam", "nordics", "midwest", "pacific", "atlantic",
)


def mixed_type_table(
    rows: int,
    seed: int | np.random.Generator | None = 0,
    name: str = "mixed_type",
    regions: int = 12,
    products: int = 120,
) -> Table:
    """A mixed-type table: numeric, categorical and string columns.

    Attributes: ``amount`` (Zipf-skewed numeric), ``score`` (3-component
    Gaussian mixture), ``region`` (categorical over ``regions`` skewed region
    names) and ``product`` (string; ``products`` names drawn from prefix
    families such as ``auto-0012``, so prefix predicates like ``auto-`` match
    whole families).  The returned table carries a :class:`TableSchema`
    declaring the non-numeric columns, dictionary-encoded on ingest.
    """
    if rows < 0:
        raise InvalidParameterError("rows must be non-negative")
    if regions < 1 or products < 1:
        raise InvalidParameterError("regions and products must be positive")
    rng = _rng(seed)
    amount = zipf_table(rows, 1, theta=1.1, domain=1000, seed=rng).column("x0")
    score = gaussian_mixture_table(
        rows, 1, components=3, separation=4.0, seed=rng
    ).column("x0")
    region_names = [
        _REGION_NAMES[i % len(_REGION_NAMES)]
        + ("" if i < len(_REGION_NAMES) else f"-{i // len(_REGION_NAMES)}")
        for i in range(regions)
    ]
    region_weights = 1.0 / np.arange(1, regions + 1)
    region_weights /= region_weights.sum()
    region = np.asarray(region_names, dtype=str)[
        rng.choice(regions, size=rows, p=region_weights)
    ]
    product_names = [
        f"{_PRODUCT_FAMILIES[i % len(_PRODUCT_FAMILIES)]}-{i:04d}"
        for i in range(products)
    ]
    product_weights = 1.0 / np.arange(1, products + 1) ** 0.8
    product_weights /= product_weights.sum()
    product = np.asarray(product_names, dtype=str)[
        rng.choice(products, size=rows, p=product_weights)
    ]
    schema = TableSchema({"region": "categorical", "product": "string"})
    return Table(
        name,
        {"amount": amount, "score": score, "region": region, "product": product},
        schema=schema,
    )


#: Named dataset registry used by experiment configurations.
DATASET_BUILDERS = {
    "uniform": uniform_table,
    "gaussian_mixture": gaussian_mixture_table,
    "zipf": zipf_table,
    "correlated": correlated_table,
    "clustered": clustered_table,
    "mixed_type": mixed_type_table,
}


def make_dataset(kind: str, rows: int, **kwargs: object) -> Table:
    """Build one of the named datasets (``DATASET_BUILDERS``) by keyword."""
    try:
        builder = DATASET_BUILDERS[kind]
    except KeyError:
        raise InvalidParameterError(
            f"unknown dataset kind {kind!r}; available: {sorted(DATASET_BUILDERS)}"
        ) from None
    return builder(rows, **kwargs)  # type: ignore[arg-type]
