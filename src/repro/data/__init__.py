"""Synthetic dataset and drifting-stream generators."""

from repro.data.generators import (
    DATASET_BUILDERS,
    clustered_table,
    correlated_table,
    gaussian_mixture_density,
    gaussian_mixture_table,
    make_dataset,
    mixed_table,
    sample_gaussian_mixture,
    uniform_table,
    zipf_table,
)
from repro.data.streams import (
    DataStream,
    gradual_drift_stream,
    stationary_stream,
    sudden_drift_stream,
)

__all__ = [
    "DATASET_BUILDERS",
    "uniform_table",
    "gaussian_mixture_table",
    "zipf_table",
    "correlated_table",
    "clustered_table",
    "mixed_table",
    "make_dataset",
    "gaussian_mixture_density",
    "sample_gaussian_mixture",
    "DataStream",
    "stationary_stream",
    "sudden_drift_stream",
    "gradual_drift_stream",
]
