"""Toy cost-based join-order optimizer.

The point of better selectivity estimates is better plans.  This module
provides the minimal machinery needed to measure that end-to-end effect
(Fig. 8): a star-join query over catalog tables, each with a local range
predicate, is optimized by exhaustive enumeration of left-deep join orders.
The cost model is the classical "sum of intermediate result sizes" model, so
plan quality depends only on cardinality estimates — exactly the dependence
the experiment wants to isolate.

Two numbers matter:

* the *estimated-cost-optimal* plan chosen using a given estimator, and
* the *true cost* of that plan, computed from exact selectivities.

The ratio between the true cost of the chosen plan and the true cost of the
truly optimal plan ("plan regret") is the optimizer-impact metric reported in
the evaluation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.errors import CatalogError, InvalidParameterError
from repro.engine.catalog import Catalog
from repro.workload.queries import RangeQuery

__all__ = ["JoinSpec", "Plan", "Optimizer", "plan_regret"]


@dataclass(frozen=True)
class JoinSpec:
    """A star/chain join query: tables, per-table filters and join selectivities.

    Attributes
    ----------
    tables:
        Names of the joined tables (must exist in the catalog).
    filters:
        Optional local range predicate per table.
    join_selectivities:
        Mapping from an unordered table pair (frozenset of two names) to the
        join predicate's selectivity (fraction of the cross product kept).
        Pairs not listed join with the default selectivity.
    default_join_selectivity:
        Selectivity used for table pairs with no explicit entry (a cross
        product would be 1.0; a typical foreign-key join is ``1/|dim|`` and
        should be given explicitly).
    """

    tables: tuple[str, ...]
    filters: Mapping[str, RangeQuery]
    join_selectivities: Mapping[frozenset, float]
    default_join_selectivity: float = 1.0

    def __post_init__(self) -> None:
        if len(self.tables) < 2:
            raise InvalidParameterError("a join needs at least two tables")
        if len(set(self.tables)) != len(self.tables):
            raise InvalidParameterError("tables must be distinct")
        for pair, selectivity in self.join_selectivities.items():
            if len(pair) != 2:
                raise InvalidParameterError("join selectivity keys must be pairs of tables")
            if not 0.0 <= selectivity <= 1.0:
                raise InvalidParameterError("join selectivities must lie in [0, 1]")

    def join_selectivity(self, left: str, right: str) -> float:
        """Selectivity of the join predicate between two tables."""
        return float(self.join_selectivities.get(frozenset((left, right)), self.default_join_selectivity))


@dataclass(frozen=True)
class Plan:
    """A left-deep join order together with its estimated and true costs."""

    order: tuple[str, ...]
    estimated_cost: float
    true_cost: float

    def __str__(self) -> str:
        arrow = " ⋈ ".join(self.order)
        return f"{arrow}  (est={self.estimated_cost:.1f}, true={self.true_cost:.1f})"


class Optimizer:
    """Exhaustive left-deep join-order optimizer over a catalog."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog

    # -- cardinalities -----------------------------------------------------
    def _base_cardinality(self, spec: JoinSpec, table_name: str, use_estimates: bool) -> float:
        table = self.catalog.table(table_name)
        query = spec.filters.get(table_name)
        if query is None:
            return float(table.row_count)
        if use_estimates:
            return self.catalog.estimate_selectivity(table_name, query) * table.row_count
        return self.catalog.true_selectivity(table_name, query) * table.row_count

    def _order_cost(self, spec: JoinSpec, order: Sequence[str], use_estimates: bool) -> float:
        """Sum of intermediate result sizes of a left-deep join in this order."""
        cardinalities = {t: self._base_cardinality(spec, t, use_estimates) for t in order}
        joined = [order[0]]
        current = cardinalities[order[0]]
        cost = 0.0
        for next_table in order[1:]:
            selectivity = 1.0
            for member in joined:
                selectivity *= spec.join_selectivity(member, next_table)
            current = current * cardinalities[next_table] * selectivity
            cost += current
            joined.append(next_table)
        return cost

    # -- optimization -----------------------------------------------------------
    def enumerate_plans(self, spec: JoinSpec, use_estimates: bool = True) -> list[Plan]:
        """All left-deep plans, each with estimated and true cost."""
        for table in spec.tables:
            if table not in self.catalog:
                raise CatalogError(f"join references unknown table {table!r}")
        plans = []
        for order in itertools.permutations(spec.tables):
            estimated = self._order_cost(spec, order, use_estimates=use_estimates)
            true = self._order_cost(spec, order, use_estimates=False)
            plans.append(Plan(order, estimated, true))
        return plans

    def best_plan(self, spec: JoinSpec, use_estimates: bool = True) -> Plan:
        """The plan minimising estimated cost (or true cost if ``use_estimates=False``)."""
        plans = self.enumerate_plans(spec, use_estimates)
        key = (lambda p: p.estimated_cost) if use_estimates else (lambda p: p.true_cost)
        return min(plans, key=key)


def plan_regret(optimizer: Optimizer, spec: JoinSpec) -> float:
    """True-cost ratio between the estimator-chosen plan and the truly optimal plan.

    1.0 means the estimates were good enough to pick the optimal join order;
    larger values measure how much slower the chosen plan is.
    """
    chosen = optimizer.best_plan(spec, use_estimates=True)
    optimal = optimizer.best_plan(spec, use_estimates=False)
    if optimal.true_cost <= 0:
        return 1.0
    return chosen.true_cost / optimal.true_cost
