"""Toy cost-based join-order optimizer.

The point of better selectivity estimates is better plans.  This module
provides the minimal machinery needed to measure that end-to-end effect
(Fig. 8): a star-join query over catalog tables, each with a local range
predicate, is optimized by exhaustive enumeration of left-deep join orders.
The cost model is the classical "sum of intermediate result sizes" model, so
plan quality depends only on cardinality estimates — exactly the dependence
the experiment wants to isolate.

Two numbers matter:

* the *estimated-cost-optimal* plan chosen using a given estimator, and
* the *true cost* of that plan, computed from exact selectivities.

The ratio between the true cost of the chosen plan and the true cost of the
truly optimal plan ("plan regret") is the optimizer-impact metric reported in
the evaluation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.core.errors import CatalogError, InvalidParameterError
from repro.engine.catalog import Catalog
from repro.engine.table import Table
from repro.workload.queries import RangeQuery

__all__ = [
    "JoinSpec",
    "Plan",
    "Optimizer",
    "plan_regret",
    "estimate_join_selectivity",
    "exact_join_selectivity",
]


@dataclass(frozen=True)
class JoinSpec:
    """A star/chain join query: tables, per-table filters and join selectivities.

    Attributes
    ----------
    tables:
        Names of the joined tables (must exist in the catalog).
    filters:
        Optional local range predicate per table.
    join_selectivities:
        Mapping from an unordered table pair (frozenset of two names) to the
        join predicate's selectivity (fraction of the cross product kept).
        Pairs not listed join with the default selectivity.
    join_keys:
        Mapping from an unordered table pair to ``{table: column}`` naming
        the equi-join columns of that pair.  For pairs listed here (and not
        overridden by an explicit selectivity), the optimizer *derives* the
        join selectivity — from the attached synopses when estimating, from
        exact column contents when costing truth — instead of falling back
        to the default.
    default_join_selectivity:
        Selectivity used for table pairs with neither an explicit entry nor
        a join key (a cross product would be 1.0; a typical foreign-key join
        is ``1/|dim|`` and should be given explicitly or via ``join_keys``).
    """

    tables: tuple[str, ...]
    filters: Mapping[str, RangeQuery]
    join_selectivities: Mapping[frozenset, float]
    default_join_selectivity: float = 1.0
    join_keys: Mapping[frozenset, Mapping[str, str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.tables) < 2:
            raise InvalidParameterError("a join needs at least two tables")
        if len(set(self.tables)) != len(self.tables):
            raise InvalidParameterError("tables must be distinct")
        for pair, selectivity in self.join_selectivities.items():
            if len(pair) != 2:
                raise InvalidParameterError("join selectivity keys must be pairs of tables")
            if not 0.0 <= selectivity <= 1.0:
                raise InvalidParameterError("join selectivities must lie in [0, 1]")
        for pair, columns in self.join_keys.items():
            if len(pair) != 2:
                raise InvalidParameterError("join key entries must name pairs of tables")
            if set(columns) != set(pair):
                raise InvalidParameterError(
                    f"join key columns for {sorted(pair)} must map exactly "
                    "those two tables to their join columns"
                )

    def join_selectivity(self, left: str, right: str) -> float:
        """Selectivity of the join predicate between two tables."""
        return float(self.join_selectivities.get(frozenset((left, right)), self.default_join_selectivity))


@dataclass(frozen=True)
class Plan:
    """A left-deep join order together with its estimated and true costs."""

    order: tuple[str, ...]
    estimated_cost: float
    true_cost: float

    def __str__(self) -> str:
        arrow = " ⋈ ".join(self.order)
        return f"{arrow}  (est={self.estimated_cost:.1f}, true={self.true_cost:.1f})"


class Optimizer:
    """Exhaustive left-deep join-order optimizer over a catalog.

    ``join_buckets`` controls the resolution of the bucketed join-selectivity
    estimate used for :attr:`JoinSpec.join_keys` pairs (see
    :func:`estimate_join_selectivity`).
    """

    def __init__(self, catalog: Catalog, join_buckets: int = 64):
        self.catalog = catalog
        self.join_buckets = int(join_buckets)

    # -- cardinalities -----------------------------------------------------
    def _base_cardinality(self, spec: JoinSpec, table_name: str, use_estimates: bool) -> float:
        table = self.catalog.table(table_name)
        query = spec.filters.get(table_name)
        if query is None:
            return float(table.row_count)
        if use_estimates:
            return self.catalog.estimate_selectivity(table_name, query) * table.row_count
        return self.catalog.true_selectivity(table_name, query) * table.row_count

    def _pair_selectivity(
        self,
        spec: JoinSpec,
        left: str,
        right: str,
        use_estimates: bool,
        cache: dict,
    ) -> float:
        """Join selectivity of one table pair, resolved and memoised.

        Resolution order: an explicit :attr:`JoinSpec.join_selectivities`
        entry wins; otherwise a :attr:`JoinSpec.join_keys` pair is *derived*
        (synopsis-backed when estimating and at least one synopsis is
        attached, exact column contents when costing truth); only pairs with
        neither fall back to the default selectivity.
        """
        pair = frozenset((left, right))
        key = (pair, use_estimates)
        if key in cache:
            return cache[key]
        if pair in spec.join_selectivities:
            value = float(spec.join_selectivities[pair])
        elif pair in spec.join_keys:
            columns = spec.join_keys[pair]
            if use_estimates:
                if (
                    self.catalog.estimator(left) is None
                    and self.catalog.estimator(right) is None
                ):
                    # No synopsis anywhere on the pair: nothing to derive an
                    # estimate from, keep the declared default.
                    value = float(spec.default_join_selectivity)
                else:
                    value = estimate_join_selectivity(
                        self.catalog,
                        left,
                        columns[left],
                        right,
                        columns[right],
                        buckets=self.join_buckets,
                    )
            else:
                value = exact_join_selectivity(
                    self.catalog.table(left),
                    columns[left],
                    self.catalog.table(right),
                    columns[right],
                )
        else:
            value = float(spec.default_join_selectivity)
        cache[key] = value
        return value

    def _order_cost(
        self,
        spec: JoinSpec,
        order: Sequence[str],
        use_estimates: bool,
        cache: dict | None = None,
    ) -> float:
        """Sum of intermediate result sizes of a left-deep join in this order."""
        cache = cache if cache is not None else {}
        cardinalities = {t: self._base_cardinality(spec, t, use_estimates) for t in order}
        joined = [order[0]]
        current = cardinalities[order[0]]
        cost = 0.0
        for next_table in order[1:]:
            selectivity = 1.0
            for member in joined:
                selectivity *= self._pair_selectivity(
                    spec, member, next_table, use_estimates, cache
                )
            current = current * cardinalities[next_table] * selectivity
            cost += current
            joined.append(next_table)
        return cost

    # -- optimization -----------------------------------------------------------
    def enumerate_plans(self, spec: JoinSpec, use_estimates: bool = True) -> list[Plan]:
        """All left-deep plans, each with estimated and true cost."""
        for table in spec.tables:
            if table not in self.catalog:
                raise CatalogError(f"join references unknown table {table!r}")
        cache: dict = {}
        plans = []
        for order in itertools.permutations(spec.tables):
            estimated = self._order_cost(spec, order, use_estimates=use_estimates, cache=cache)
            true = self._order_cost(spec, order, use_estimates=False, cache=cache)
            plans.append(Plan(order, estimated, true))
        return plans

    def best_plan(self, spec: JoinSpec, use_estimates: bool = True) -> Plan:
        """The plan minimising estimated cost (or true cost if ``use_estimates=False``)."""
        plans = self.enumerate_plans(spec, use_estimates)
        key = (lambda p: p.estimated_cost) if use_estimates else (lambda p: p.true_cost)
        return min(plans, key=key)


def exact_join_selectivity(
    left: Table, left_column: str, right: Table, right_column: str
) -> float:
    """Exact equi-join selectivity: matches / (|left| * |right|).

    Dictionary-encoded columns are decoded before comparison, so two tables
    whose dictionaries assign different codes to the same strings still join
    by value.  Joining a decoded column against a numeric one compares
    strings against numbers and yields 0 — the typed surface makes that a
    meaningless join, not an error, because exact costing must not throw
    mid-enumeration.
    """
    if left.row_count == 0 or right.row_count == 0:
        return 0.0

    def _join_values(table: Table, column: str) -> np.ndarray:
        schema = table.schema
        if schema is not None and schema.is_encoded(column):
            return table.decoded(column)
        return table.column(column)

    left_values = _join_values(left, left_column)
    right_values = _join_values(right, right_column)
    if left_values.dtype.kind != right_values.dtype.kind:
        return 0.0
    left_unique, left_counts = np.unique(left_values, return_counts=True)
    right_unique, right_counts = np.unique(right_values, return_counts=True)
    _, left_idx, right_idx = np.intersect1d(
        left_unique, right_unique, assume_unique=True, return_indices=True
    )
    matches = float(np.sum(left_counts[left_idx] * right_counts[right_idx]))
    return matches / (left.row_count * right.row_count)


def estimate_join_selectivity(
    catalog: Catalog,
    left: str,
    left_column: str,
    right: str,
    right_column: str,
    buckets: int = 64,
) -> float:
    """Synopsis-backed equi-join selectivity over two joined columns.

    The overlap of the two column domains is cut into ``buckets`` disjoint
    ranges; each side's synopsis (via the catalog, so tables without one
    answer exactly) supplies the per-bucket value-mass ``p_i``, and under the
    classical uniform-distinct-spread assumption each bucket contributes
    ``p_left_i * p_right_i / V_i`` with ``V_i`` the larger per-bucket
    distinct count of the two sides.  On a foreign-key join this reduces to
    the textbook ``1 / ndv(dimension key)`` regardless of fact-side skew.

    Dictionary-encoded join columns estimate in code space, which is only
    meaningful when both sides share one dictionary; mismatched encodings
    fall back to the containment bound ``1 / max(ndv_left, ndv_right)``.
    """
    left_table = catalog.table(left)
    right_table = catalog.table(right)
    if left_table.row_count == 0 or right_table.row_count == 0:
        return 0.0
    left_stats = left_table.stats(left_column)
    right_stats = right_table.stats(right_column)
    left_ndv = max(left_stats.distinct, 1)
    right_ndv = max(right_stats.distinct, 1)

    def _dictionary(table: Table, column: str):
        schema = table.schema
        if schema is not None and schema.is_encoded(column):
            return schema.dictionary(column)
        return None

    left_dict = _dictionary(left_table, left_column)
    right_dict = _dictionary(right_table, right_column)
    if left_dict != right_dict:
        # Codes are not comparable across different dictionaries (or against
        # raw numbers): assume key containment, every value of the
        # narrower side finds partners spread over the wider side's domain.
        return 1.0 / max(left_ndv, right_ndv)

    low = max(left_stats.minimum, right_stats.minimum)
    high = min(left_stats.maximum, right_stats.maximum)
    if not (low <= high):  # disjoint domains (also catches NaN stats)
        return 0.0

    def _masses(table_name: str, column: str, lows, highs) -> np.ndarray:
        queries = [
            RangeQuery({column: (lo, hi)}) for lo, hi in zip(lows, highs)
        ]
        return np.asarray(catalog.estimate_batch(table_name, queries), dtype=float)

    if high == low or left_stats.width <= 0 or right_stats.width <= 0:
        # The overlap is a single value: sel = P_left(v) * P_right(v).
        p_left = _masses(left, left_column, [low], [high])[0]
        p_right = _masses(right, right_column, [low], [high])[0]
        return float(np.clip(p_left * p_right, 0.0, 1.0))

    buckets = max(int(buckets), 1)
    edges = np.linspace(low, high, buckets + 1)
    lows = edges[:-1].copy()
    # Nudge interior lower bounds up so the closed buckets are disjoint.
    lows[1:] = np.nextafter(lows[1:], np.inf)
    highs = edges[1:]
    p_left = _masses(left, left_column, lows, highs)
    p_right = _masses(right, right_column, lows, highs)
    widths = highs - edges[:-1]
    per_bucket_values = np.maximum(
        left_ndv * widths / left_stats.width,
        right_ndv * widths / right_stats.width,
    )
    per_bucket_values = np.maximum(per_bucket_values, 1.0)
    selectivity = float(np.sum(p_left * p_right / per_bucket_values))
    return float(np.clip(selectivity, 0.0, 1.0))


def plan_regret(optimizer: Optimizer, spec: JoinSpec) -> float:
    """True-cost ratio between the estimator-chosen plan and the truly optimal plan.

    1.0 means the estimates were good enough to pick the optimal join order;
    larger values measure how much slower the chosen plan is.
    """
    chosen = optimizer.best_plan(spec, use_estimates=True)
    optimal = optimizer.best_plan(spec, use_estimates=False)
    if optimal.true_cost <= 0:
        return 1.0
    return chosen.true_cost / optimal.true_cost
