"""In-memory column-oriented table.

The execution engine substrate: a minimal column store that holds numeric
attributes as numpy arrays, supports appends (for streaming experiments),
row filtering by :class:`~repro.workload.queries.RangeQuery`, and exact
selectivity computation.  Estimators are always evaluated against the exact
answers produced here.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.core.errors import CatalogError, DimensionMismatchError, InvalidParameterError
from repro.workload.queries import CompiledQueries, RangeQuery, compile_queries

__all__ = ["ColumnStats", "Table"]


class ColumnStats:
    """Summary statistics of a single numeric column.

    These are the statistics a catalog would keep for every column: min, max,
    mean, standard deviation, row count and an approximate distinct count.
    """

    __slots__ = ("name", "count", "minimum", "maximum", "mean", "std", "distinct")

    def __init__(self, name: str, values: np.ndarray):
        values = np.asarray(values, dtype=float)
        self.name = name
        self.count = int(values.size)
        if values.size == 0:
            self.minimum = float("nan")
            self.maximum = float("nan")
            self.mean = float("nan")
            self.std = float("nan")
            self.distinct = 0
        else:
            self.minimum = float(np.min(values))
            self.maximum = float(np.max(values))
            self.mean = float(np.mean(values))
            self.std = float(np.std(values))
            self.distinct = int(np.unique(values).size)

    @property
    def width(self) -> float:
        """Domain width ``max - min`` (0.0 for empty/constant columns)."""
        if self.count == 0:
            return 0.0
        return self.maximum - self.minimum

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ColumnStats({self.name!r}, n={self.count}, min={self.minimum:g}, "
            f"max={self.maximum:g}, distinct={self.distinct})"
        )


class Table:
    """A named, append-only, column-oriented table of numeric attributes.

    Parameters
    ----------
    name:
        Table name used by the catalog and the optimizer.
    columns:
        Mapping from column name to a 1-D array-like of float values.  All
        columns must have equal length.

    Notes
    -----
    The table is deliberately simple: numeric columns only, no indexes, no
    deletes.  That is all the selectivity-estimation experiments need, and
    exact answers are computed by full scans (`true_count`).
    """

    def __init__(self, name: str, columns: Mapping[str, Sequence[float] | np.ndarray]):
        if not columns:
            raise InvalidParameterError("a table needs at least one column")
        self.name = name
        self._columns: dict[str, np.ndarray] = {}
        length: int | None = None
        for column_name, values in columns.items():
            array = np.asarray(values, dtype=float).ravel()
            if length is None:
                length = array.size
            elif array.size != length:
                raise InvalidParameterError(
                    f"column {column_name!r} has {array.size} rows, expected {length}"
                )
            self._columns[column_name] = array
        self._row_count = int(length or 0)

    # -- construction helpers ----------------------------------------------
    @classmethod
    def from_array(
        cls, name: str, data: np.ndarray, column_names: Sequence[str] | None = None
    ) -> "Table":
        """Build a table from a 2-D array of shape ``(rows, attributes)``."""
        data = np.atleast_2d(np.asarray(data, dtype=float))
        if data.ndim != 2:
            raise InvalidParameterError("data must be a 2-D array of shape (rows, attributes)")
        if column_names is None:
            column_names = [f"x{i}" for i in range(data.shape[1])]
        if len(column_names) != data.shape[1]:
            raise InvalidParameterError(
                f"{len(column_names)} column names for {data.shape[1]} attributes"
            )
        return cls(name, {c: data[:, i] for i, c in enumerate(column_names)})

    # -- basic accessors -----------------------------------------------------
    @property
    def row_count(self) -> int:
        """Number of rows currently in the table."""
        return self._row_count

    @property
    def column_names(self) -> tuple[str, ...]:
        """Column names in insertion order."""
        return tuple(self._columns)

    def __len__(self) -> int:
        return self._row_count

    def __contains__(self, column: str) -> bool:
        return column in self._columns

    def column(self, name: str) -> np.ndarray:
        """Return the (read-only view of the) values of a column."""
        try:
            return self._columns[name]
        except KeyError:
            raise CatalogError(f"table {self.name!r} has no column {name!r}") from None

    def columns(self, names: Sequence[str]) -> np.ndarray:
        """Return a ``(rows, len(names))`` matrix of the requested columns."""
        arrays = [self.column(n) for n in names]
        if not arrays:
            return np.empty((self._row_count, 0))
        return np.column_stack(arrays)

    def as_matrix(self) -> np.ndarray:
        """Return all columns as a ``(rows, attributes)`` matrix."""
        return self.columns(self.column_names)

    def stats(self, column: str) -> ColumnStats:
        """Compute :class:`ColumnStats` for one column."""
        return ColumnStats(column, self.column(column))

    def domain(self, columns: Sequence[str] | None = None) -> dict[str, tuple[float, float]]:
        """Return ``{column: (min, max)}`` for the requested columns."""
        names = list(columns) if columns is not None else list(self.column_names)
        result: dict[str, tuple[float, float]] = {}
        for name in names:
            values = self.column(name)
            if values.size == 0:
                result[name] = (0.0, 0.0)
            else:
                result[name] = (float(values.min()), float(values.max()))
        return result

    # -- mutation -------------------------------------------------------------
    def append_rows(self, rows: Mapping[str, Sequence[float] | np.ndarray]) -> int:
        """Append a batch of rows given as ``{column: values}``.

        Every existing column must be present in ``rows``.  Returns the number
        of rows appended.
        """
        missing = set(self._columns) - set(rows)
        if missing:
            raise DimensionMismatchError(f"append is missing columns: {sorted(missing)}")
        arrays = {name: np.asarray(rows[name], dtype=float).ravel() for name in self._columns}
        sizes = {a.size for a in arrays.values()}
        if len(sizes) != 1:
            raise DimensionMismatchError("all appended columns must have the same length")
        added = sizes.pop()
        for name, values in arrays.items():
            self._columns[name] = np.concatenate([self._columns[name], values])
        self._row_count += int(added)
        return int(added)

    def append_matrix(self, data: np.ndarray, column_names: Sequence[str] | None = None) -> int:
        """Append rows given as a ``(rows, attributes)`` matrix."""
        data = np.atleast_2d(np.asarray(data, dtype=float))
        names = list(column_names) if column_names is not None else list(self.column_names)
        if data.shape[1] != len(names):
            raise DimensionMismatchError(
                f"matrix has {data.shape[1]} columns but {len(names)} names were given"
            )
        return self.append_rows({name: data[:, i] for i, name in enumerate(names)})

    # -- exact query evaluation -----------------------------------------------
    def selection_mask(self, query: RangeQuery) -> np.ndarray:
        """Boolean mask of rows satisfying ``query`` (full scan)."""
        mask = np.ones(self._row_count, dtype=bool)
        for attribute in query.attributes:
            interval = query[attribute]
            values = self.column(attribute)
            mask &= (values >= interval.low) & (values <= interval.high)
        return mask

    def true_count(self, query: RangeQuery) -> int:
        """Exact number of rows satisfying ``query``."""
        return int(np.count_nonzero(self.selection_mask(query)))

    def true_selectivity(self, query: RangeQuery) -> float:
        """Exact fraction of rows satisfying ``query`` (0.0 for empty tables)."""
        if self._row_count == 0:
            return 0.0
        return self.true_count(query) / self._row_count

    def true_counts(
        self, queries: Sequence[RangeQuery] | CompiledQueries
    ) -> np.ndarray:
        """Exact row counts for a whole workload (vectorized full scans).

        Accepts a sequence of queries or a pre-compiled plan whose columns are
        a subset of the table's columns.  The ``(block, rows)`` containment
        mask is chunked over queries so memory stays bounded.
        """
        if isinstance(queries, CompiledQueries):
            missing = [c for c in queries.columns if c not in self._columns]
            if missing:
                raise CatalogError(
                    f"table {self.name!r} has no columns {missing}"
                )
            compiled = queries
        else:
            compiled = compile_queries(queries, self.column_names)
        n = len(compiled)
        out = np.zeros(n, dtype=np.int64)
        if n == 0 or self._row_count == 0:
            return out
        # Columns no query constrains are all (-inf, +inf) and filter nothing.
        active = [
            d
            for d in range(len(compiled.columns))
            if not (
                np.isneginf(compiled.lows[:, d]).all()
                and np.isposinf(compiled.highs[:, d]).all()
            )
        ]
        if not active:
            out[:] = self._row_count
            return out
        values = {d: self.column(compiled.columns[d]) for d in active}
        block = max((1 << 22) // self._row_count, 1)
        for start in range(0, n, block):
            stop = min(start + block, n)
            mask = np.ones((stop - start, self._row_count), dtype=bool)
            for d, column_values in values.items():
                mask &= (column_values[None, :] >= compiled.lows[start:stop, d, None]) & (
                    column_values[None, :] <= compiled.highs[start:stop, d, None]
                )
            out[start:stop] = np.count_nonzero(mask, axis=1)
        return out

    def true_selectivities(
        self, queries: Sequence[RangeQuery] | CompiledQueries
    ) -> np.ndarray:
        """Exact selectivity of every query (zeros for empty tables)."""
        counts = self.true_counts(queries)
        if self._row_count == 0:
            return np.zeros(counts.shape[0])
        return counts / self._row_count

    def select(self, query: RangeQuery) -> "Table":
        """Return a new table containing only the rows matching ``query``."""
        mask = self.selection_mask(query)
        return Table(self.name, {name: values[mask] for name, values in self._columns.items()})

    def sample(self, size: int, rng: np.random.Generator | None = None) -> "Table":
        """Return a uniform random sample (without replacement) of ``size`` rows."""
        rng = rng or np.random.default_rng()
        if size >= self._row_count:
            return Table(self.name, dict(self._columns))
        index = rng.choice(self._row_count, size=size, replace=False)
        return Table(self.name, {name: values[index] for name, values in self._columns.items()})

    def iter_rows(self, columns: Sequence[str] | None = None) -> Iterator[tuple[float, ...]]:
        """Iterate rows as tuples over the requested columns."""
        names = list(columns) if columns is not None else list(self.column_names)
        matrix = self.columns(names)
        for row in matrix:
            yield tuple(float(v) for v in row)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.name!r}, rows={self._row_count}, columns={list(self._columns)})"
