"""In-memory column-oriented table with an optional typed schema.

The execution engine substrate: a minimal column store that holds attributes
as numpy float arrays, supports appends (for streaming experiments), row
filtering by :class:`~repro.workload.queries.RangeQuery` /
:class:`~repro.workload.queries.TypedQuery`, and exact selectivity
computation.  Estimators are always evaluated against the exact answers
produced here.

Non-numeric columns are handled by *dictionary encoding*: a
:class:`TableSchema` declares categorical/string columns, whose values are
stored as integer codes into a **sorted** per-column dictionary.  Sorting the
dictionary makes lexicographic order coincide with code order, so string
prefixes and IN sets lower onto the same numeric interval machinery every
estimator already speaks — the whole numeric core (histograms, kernels,
sharding, persistence) operates on codes without knowing they are codes.
The schema is optional: tables built without one behave exactly as before
(every column numeric).
"""

from __future__ import annotations

from enum import Enum
from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.core.errors import (
    CatalogError,
    DimensionMismatchError,
    InvalidParameterError,
    SchemaError,
)
from repro.workload.queries import (
    CompiledQueries,
    Interval,
    LoweredQueries,
    RangeQuery,
    SetMembership,
    StringPrefix,
    TypedQuery,
    compile_queries,
)

__all__ = ["ColumnKind", "ColumnStats", "Table", "TableSchema"]


class ColumnStats:
    """Summary statistics of a single numeric column.

    These are the statistics a catalog would keep for every column: min, max,
    mean, standard deviation, row count and an approximate distinct count.
    """

    __slots__ = ("name", "count", "minimum", "maximum", "mean", "std", "distinct")

    def __init__(self, name: str, values: np.ndarray):
        values = np.asarray(values, dtype=float)
        self.name = name
        self.count = int(values.size)
        if values.size == 0:
            self.minimum = float("nan")
            self.maximum = float("nan")
            self.mean = float("nan")
            self.std = float("nan")
            self.distinct = 0
        else:
            self.minimum = float(np.min(values))
            self.maximum = float(np.max(values))
            self.mean = float(np.mean(values))
            self.std = float(np.std(values))
            self.distinct = int(np.unique(values).size)

    @property
    def width(self) -> float:
        """Domain width ``max - min`` (0.0 for empty/constant columns)."""
        if self.count == 0:
            return 0.0
        return self.maximum - self.minimum

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ColumnStats({self.name!r}, n={self.count}, min={self.minimum:g}, "
            f"max={self.maximum:g}, distinct={self.distinct})"
        )


class ColumnKind(str, Enum):
    """Declared kind of a table column.

    ``NUMERIC`` columns store their values directly.  ``CATEGORICAL`` and
    ``STRING`` columns are dictionary-encoded: values live in a sorted
    per-column dictionary and the column stores integer codes.  The only
    behavioural difference between the two encoded kinds is that prefix
    predicates are accepted on ``STRING`` columns only.
    """

    NUMERIC = "numeric"
    CATEGORICAL = "categorical"
    STRING = "string"

    @classmethod
    def coerce(cls, value: "ColumnKind | str") -> "ColumnKind":
        if isinstance(value, ColumnKind):
            return value
        try:
            return cls(str(value))
        except ValueError:
            raise SchemaError(
                f"unknown column kind {value!r}; expected one of "
                f"{[k.value for k in cls]}"
            ) from None


#: Version stamp of the JSON schema payload carried by snapshots/manifests.
SCHEMA_FORMAT_VERSION = 1


class TableSchema:
    """Column kinds plus sorted dictionaries for the encoded columns.

    Undeclared columns default to :attr:`ColumnKind.NUMERIC`, so an empty
    schema is equivalent to no schema at all.  Dictionaries are **sorted and
    duplicate-free**; the invariant the whole lowering layer rests on is that
    lexicographic order of the dictionary equals numeric order of the codes.
    Appending values absent from a dictionary extends (re-sorts) it and
    returns a code remap — the owning :class:`Table` applies that remap to
    its stored codes, and any fitted synopsis over the column must be
    refreshed (codes shifted underneath it).
    """

    __slots__ = ("_kinds", "_dicts", "_runs_cache")

    def __init__(
        self,
        kinds: Mapping[str, "ColumnKind | str"] | None = None,
        dictionaries: Mapping[str, Sequence[str]] | None = None,
    ) -> None:
        self._runs_cache: dict = {}
        self._kinds: dict[str, ColumnKind] = {}
        for name, kind in (kinds or {}).items():
            kind = ColumnKind.coerce(kind)
            if kind is not ColumnKind.NUMERIC:
                self._kinds[str(name)] = kind
        self._dicts: dict[str, np.ndarray] = {}
        for name, words in (dictionaries or {}).items():
            if name not in self._kinds:
                raise SchemaError(
                    f"dictionary given for column {name!r}, which is not "
                    "declared categorical/string"
                )
            self._dicts[name] = self._normalised_dictionary(name, words)

    @staticmethod
    def _normalised_dictionary(name: str, words: Sequence[str]) -> np.ndarray:
        array = np.asarray(list(words), dtype=str)
        if array.ndim != 1:
            raise SchemaError(f"dictionary of column {name!r} must be one-dimensional")
        if array.size and not np.all(array[:-1] < array[1:]):
            raise SchemaError(
                f"dictionary of column {name!r} must be sorted and duplicate-free"
            )
        array.setflags(write=False)
        return array

    # -- kinds -------------------------------------------------------------
    @property
    def encoded_columns(self) -> tuple[str, ...]:
        """Names of the declared categorical/string columns, sorted."""
        return tuple(sorted(self._kinds))

    def kind(self, column: str) -> ColumnKind:
        """Kind of ``column`` (undeclared columns are numeric)."""
        return self._kinds.get(column, ColumnKind.NUMERIC)

    def is_encoded(self, column: str) -> bool:
        """Whether ``column`` is dictionary-encoded (categorical or string)."""
        return column in self._kinds

    # -- dictionaries ------------------------------------------------------
    def _require_dictionary(self, column: str) -> np.ndarray:
        if column not in self._kinds:
            raise SchemaError(f"column {column!r} is not dictionary-encoded")
        dictionary = self._dicts.get(column)
        if dictionary is None:
            raise SchemaError(f"column {column!r} has no dictionary yet")
        return dictionary

    def has_dictionary(self, column: str) -> bool:
        """Whether an encoded column's dictionary has been built."""
        return column in self._dicts

    def dictionary(self, column: str) -> tuple[str, ...]:
        """The sorted value dictionary of an encoded column."""
        return tuple(self._require_dictionary(column))

    def cardinality(self, column: str) -> int:
        """Number of distinct dictionary entries of an encoded column."""
        return int(self._require_dictionary(column).size)

    def extend_dictionary(
        self, column: str, values: Sequence[str] | np.ndarray
    ) -> np.ndarray | None:
        """Add unseen ``values`` to a column's dictionary (building it if absent).

        Returns ``None`` when no existing code changed meaning, otherwise the
        ``old code -> new code`` remap array the caller must apply to every
        stored code of the column (the dictionary re-sorts on extension).
        """
        if column not in self._kinds:
            raise SchemaError(f"column {column!r} is not dictionary-encoded")
        incoming = np.unique(np.asarray(values, dtype=str).ravel())
        current = self._dicts.get(column)
        if current is None:
            incoming.setflags(write=False)
            self._dicts[column] = incoming
            self._runs_cache.clear()
            return None
        merged = np.union1d(current, incoming)
        if merged.size == current.size:
            return None
        remap = np.searchsorted(merged, current)
        merged.setflags(write=False)
        self._dicts[column] = merged
        self._runs_cache.clear()
        return remap

    def encode(self, column: str, values: Sequence[str] | np.ndarray) -> np.ndarray:
        """Map string values to float codes; unknown values raise SchemaError."""
        dictionary = self._require_dictionary(column)
        array = np.asarray(values, dtype=str).ravel()
        if dictionary.size == 0:
            if array.size:
                raise SchemaError(f"column {column!r} has an empty dictionary")
            return np.empty(0)
        positions = np.searchsorted(dictionary, array)
        clipped = np.minimum(positions, dictionary.size - 1)
        bad = (positions >= dictionary.size) | (dictionary[clipped] != array)
        if bad.any():
            unknown = sorted(set(array[bad].tolist()))[:5]
            raise SchemaError(
                f"column {column!r}: values not in the dictionary: {unknown}"
            )
        return positions.astype(float)

    def decode(self, column: str, codes: np.ndarray) -> np.ndarray:
        """Map float codes back to their dictionary strings."""
        dictionary = self._require_dictionary(column)
        self.validate_codes(column, codes)
        return dictionary[np.asarray(codes, dtype=float).astype(np.int64)]

    def validate_codes(self, column: str, values: np.ndarray) -> None:
        """Check that ``values`` are integral codes within the dictionary."""
        dictionary = self._require_dictionary(column)
        array = np.asarray(values, dtype=float).ravel()
        if array.size == 0:
            return
        if (
            not np.all(np.isfinite(array))
            or np.any(array != np.floor(array))
            or array.min() < 0
            or array.max() >= dictionary.size
        ):
            raise SchemaError(
                f"column {column!r}: values are not dictionary codes in "
                f"[0, {dictionary.size})"
            )

    # -- predicate lowering ------------------------------------------------
    def predicate_runs(self, column: str, predicate) -> np.ndarray:
        """Lower one predicate to an ``(r, 2)`` array of closed value runs.

        This is the per-predicate half of the lowering contract consumed by
        :func:`~repro.workload.queries.compile_queries`: intervals pass
        through (code-space on encoded columns), IN sets become runs of
        consecutive dictionary codes, prefixes become one code interval.  An
        empty result (``r == 0``) means the predicate matches no rows.
        """
        kind = self.kind(column)
        if isinstance(predicate, Interval):
            return np.array([[predicate.low, predicate.high]])
        if isinstance(predicate, SetMembership):
            if kind is ColumnKind.NUMERIC:
                try:
                    points = np.unique(
                        np.asarray([float(v) for v in predicate.values], dtype=float)
                    )
                except (TypeError, ValueError):
                    raise SchemaError(
                        "IN values on a numeric column must be numeric"
                    ) from None
                if np.any(np.isnan(points)):
                    raise SchemaError("IN values must not be NaN")
                return np.column_stack([points, points])
            dictionary = self._require_dictionary(column)
            wanted = np.unique(
                np.asarray([str(v) for v in predicate.values], dtype=str)
            )
            if dictionary.size == 0:
                return np.empty((0, 2))
            positions = np.searchsorted(dictionary, wanted)
            clipped = np.minimum(positions, dictionary.size - 1)
            codes = positions[
                (positions < dictionary.size) & (dictionary[clipped] == wanted)
            ]
            if codes.size == 0:
                return np.empty((0, 2))
            breaks = np.flatnonzero(np.diff(codes) > 1)
            starts = np.concatenate([[0], breaks + 1])
            ends = np.concatenate([breaks, [codes.size - 1]])
            return np.column_stack([codes[starts], codes[ends]]).astype(float)
        if isinstance(predicate, StringPrefix):
            if kind is not ColumnKind.STRING:
                raise SchemaError(
                    f"prefix predicates require a string column; {column!r} "
                    f"is {kind.value}"
                )
            dictionary = self._require_dictionary(column)
            if dictionary.size == 0:
                return np.empty((0, 2))
            matches = np.flatnonzero(np.char.startswith(dictionary, predicate.prefix))
            if matches.size == 0:
                return np.empty((0, 2))
            # The dictionary is sorted, so prefix matches are contiguous.
            return np.array([[float(matches[0]), float(matches[-1])]])
        raise SchemaError(f"unsupported predicate {predicate!r}")

    def predicate_runs_cached(self, column: str, predicate) -> tuple:
        """Memoised :meth:`predicate_runs`, as a tuple of ``(low, high)`` pairs.

        Lowering is pure in the dictionary, so runs are cached per
        ``(column, predicate)`` until the dictionary changes
        (:meth:`extend_dictionary` clears the cache).  The tuple form lets
        the hot lowering loop fill plan rows with scalar assignments.
        """
        key = (column, predicate)
        runs = self._runs_cache.get(key)
        if runs is None:
            array = np.asarray(self.predicate_runs(column, predicate), dtype=float)
            runs = tuple((float(lo), float(hi)) for lo, hi in array.reshape(-1, 2))
            if len(self._runs_cache) >= 65536:
                self._runs_cache.clear()
            self._runs_cache[key] = runs
        return runs

    # -- copying / comparison / serialisation ------------------------------
    def copy(self) -> "TableSchema":
        """Independent copy (dictionaries are immutable arrays, safely shared)."""
        clone = TableSchema.__new__(TableSchema)
        clone._runs_cache = {}
        clone._kinds = dict(self._kinds)
        clone._dicts = dict(self._dicts)
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TableSchema):
            return NotImplemented
        if self._kinds != other._kinds or self._dicts.keys() != other._dicts.keys():
            return False
        return all(
            np.array_equal(self._dicts[name], other._dicts[name]) for name in self._dicts
        )

    def __hash__(self) -> int:
        return hash(
            (
                tuple(sorted((n, k.value) for n, k in self._kinds.items())),
                tuple(sorted((n, tuple(d)) for n, d in self._dicts.items())),
            )
        )

    def to_json(self) -> dict:
        """JSON-serialisable payload (travels in snapshot/manifest envelopes)."""
        return {
            "schema_version": SCHEMA_FORMAT_VERSION,
            "kinds": {name: kind.value for name, kind in sorted(self._kinds.items())},
            "dictionaries": {
                name: self._dicts[name].tolist() for name in sorted(self._dicts)
            },
        }

    @classmethod
    def from_json(cls, payload: Mapping) -> "TableSchema":
        """Rebuild a schema from :meth:`to_json` output (forward-version safe)."""
        try:
            version = int(payload.get("schema_version", 1))
        except (TypeError, ValueError, AttributeError):
            raise SchemaError(f"malformed schema payload: {payload!r}") from None
        if version > SCHEMA_FORMAT_VERSION:
            raise SchemaError(
                f"schema payload version {version} is newer than supported "
                f"version {SCHEMA_FORMAT_VERSION}"
            )
        return cls(payload.get("kinds") or {}, payload.get("dictionaries") or {})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{name}:{kind.value}"
            + (f"[{self._dicts[name].size}]" if name in self._dicts else "")
            for name, kind in sorted(self._kinds.items())
        )
        return f"TableSchema({parts})"


class Table:
    """A named, append-only, column-oriented table of numeric attributes.

    Parameters
    ----------
    name:
        Table name used by the catalog and the optimizer.
    columns:
        Mapping from column name to a 1-D array-like.  All columns must have
        equal length.  Columns the schema declares categorical/string accept
        string values (dictionary-encoded on ingest) or pre-encoded float
        codes; every other column must be numeric.
    schema:
        Optional :class:`TableSchema`.  Omitted, every column is numeric and
        the table behaves exactly as before the typed surface existed.  The
        schema is copied, so the table owns its dictionaries.

    Notes
    -----
    The table is deliberately simple: float column storage, no indexes, no
    deletes.  That is all the selectivity-estimation experiments need, and
    exact answers are computed by full scans (`true_count`).
    """

    def __init__(
        self,
        name: str,
        columns: Mapping[str, Sequence[float] | np.ndarray],
        schema: TableSchema | None = None,
    ):
        if not columns:
            raise InvalidParameterError("a table needs at least one column")
        self.name = name
        self._schema = schema.copy() if schema is not None else None
        self._columns: dict[str, np.ndarray] = {}
        self._stats: dict[str, ColumnStats] = {}
        length: int | None = None
        for column_name, values in columns.items():
            array = self._ingest_column(column_name, values)
            if length is None:
                length = array.size
            elif array.size != length:
                raise InvalidParameterError(
                    f"column {column_name!r} has {array.size} rows, expected {length}"
                )
            self._columns[column_name] = array
        self._row_count = int(length or 0)

    def _ingest_column(
        self, column_name: str, values: Sequence[float] | np.ndarray
    ) -> np.ndarray:
        """Coerce one incoming column to float storage, encoding if declared."""
        array = np.asarray(values)
        if self._schema is not None and self._schema.is_encoded(column_name):
            if array.dtype.kind in "USO":
                words = np.asarray(array, dtype=str).ravel()
                self._schema.extend_dictionary(column_name, words)
                return self._schema.encode(column_name, words)
            codes = np.asarray(values, dtype=float).ravel()
            self._schema.validate_codes(column_name, codes)
            return codes
        if array.dtype.kind in "US":
            raise InvalidParameterError(
                f"column {column_name!r} holds string values; declare it "
                "categorical/string in a TableSchema to dictionary-encode it"
            )
        try:
            return np.asarray(values, dtype=float).ravel()
        except (TypeError, ValueError) as err:
            raise InvalidParameterError(
                f"column {column_name!r} is not numeric ({err}); non-numeric "
                "columns need a TableSchema declaring their kind"
            ) from None

    # -- construction helpers ----------------------------------------------
    @classmethod
    def from_array(
        cls, name: str, data: np.ndarray, column_names: Sequence[str] | None = None
    ) -> "Table":
        """Build a table from a 2-D array of shape ``(rows, attributes)``."""
        data = np.atleast_2d(np.asarray(data, dtype=float))
        if data.ndim != 2:
            raise InvalidParameterError("data must be a 2-D array of shape (rows, attributes)")
        if column_names is None:
            column_names = [f"x{i}" for i in range(data.shape[1])]
        if len(column_names) != data.shape[1]:
            raise InvalidParameterError(
                f"{len(column_names)} column names for {data.shape[1]} attributes"
            )
        return cls(name, {c: data[:, i] for i, c in enumerate(column_names)})

    # -- basic accessors -----------------------------------------------------
    @property
    def row_count(self) -> int:
        """Number of rows currently in the table."""
        return self._row_count

    @property
    def schema(self) -> TableSchema | None:
        """The table's :class:`TableSchema`, or ``None`` for all-numeric tables."""
        return self._schema

    def _effective_schema(self) -> TableSchema:
        """The declared schema, or an empty (all-numeric) one."""
        return self._schema if self._schema is not None else TableSchema()

    def decoded(self, name: str) -> np.ndarray:
        """An encoded column's values decoded back to their strings."""
        schema = self._schema
        if schema is None or not schema.is_encoded(name):
            raise SchemaError(
                f"column {name!r} of table {self.name!r} is not dictionary-encoded"
            )
        return schema.decode(name, self.column(name))

    @property
    def column_names(self) -> tuple[str, ...]:
        """Column names in insertion order."""
        return tuple(self._columns)

    def __len__(self) -> int:
        return self._row_count

    def __contains__(self, column: str) -> bool:
        return column in self._columns

    def column(self, name: str) -> np.ndarray:
        """Return the (read-only view of the) values of a column."""
        try:
            return self._columns[name]
        except KeyError:
            raise CatalogError(f"table {self.name!r} has no column {name!r}") from None

    def columns(self, names: Sequence[str]) -> np.ndarray:
        """Return a ``(rows, len(names))`` matrix of the requested columns."""
        arrays = [self.column(n) for n in names]
        if not arrays:
            return np.empty((self._row_count, 0))
        return np.column_stack(arrays)

    def as_matrix(self) -> np.ndarray:
        """Return all columns as a ``(rows, attributes)`` matrix."""
        return self.columns(self.column_names)

    def stats(self, column: str) -> ColumnStats:
        """:class:`ColumnStats` for one column (cached until the next append).

        Computing distinct counts sorts the column, so results are memoised
        per column and invalidated by :meth:`append_rows` — streaming callers
        that interleave appends and stats lookups pay the sort once per
        append batch instead of once per lookup.
        """
        cached = self._stats.get(column)
        if cached is None:
            cached = ColumnStats(column, self.column(column))
            self._stats[column] = cached
        return cached

    def domain(self, columns: Sequence[str] | None = None) -> dict[str, tuple[float, float]]:
        """Return ``{column: (min, max)}`` for the requested columns."""
        names = list(columns) if columns is not None else list(self.column_names)
        result: dict[str, tuple[float, float]] = {}
        for name in names:
            stats = self.stats(name)
            if stats.count == 0:
                result[name] = (0.0, 0.0)
            else:
                result[name] = (stats.minimum, stats.maximum)
        return result

    # -- mutation -------------------------------------------------------------
    def append_rows(self, rows: Mapping[str, Sequence[float] | np.ndarray]) -> int:
        """Append a batch of rows given as ``{column: values}``.

        Every existing column must be present in ``rows``.  Encoded columns
        accept strings (novel values extend the dictionary, which re-sorts it
        and vectorised-recodes the stored column — any fitted synopsis over
        that column must then be refreshed) or pre-encoded codes.  Returns
        the number of rows appended.
        """
        missing = set(self._columns) - set(rows)
        if missing:
            raise DimensionMismatchError(f"append is missing columns: {sorted(missing)}")
        raw = {name: np.asarray(rows[name]) for name in self._columns}
        sizes = {a.ravel().size for a in raw.values()}
        if len(sizes) != 1:
            raise DimensionMismatchError("all appended columns must have the same length")
        added = sizes.pop()
        arrays: dict[str, np.ndarray] = {}
        for name, array in raw.items():
            if self._schema is not None and self._schema.is_encoded(name):
                if array.dtype.kind in "USO":
                    words = np.asarray(array, dtype=str).ravel()
                    remap = self._schema.extend_dictionary(name, words)
                    if remap is not None:
                        stored = self._columns[name].astype(np.int64)
                        self._columns[name] = remap[stored].astype(float)
                    arrays[name] = self._schema.encode(name, words)
                else:
                    codes = np.asarray(array, dtype=float).ravel()
                    self._schema.validate_codes(name, codes)
                    arrays[name] = codes
            else:
                arrays[name] = np.asarray(array, dtype=float).ravel()
        for name, values in arrays.items():
            self._columns[name] = np.concatenate([self._columns[name], values])
        self._row_count += int(added)
        self._stats.clear()
        return int(added)

    def append_matrix(self, data: np.ndarray, column_names: Sequence[str] | None = None) -> int:
        """Append rows given as a ``(rows, attributes)`` matrix."""
        data = np.atleast_2d(np.asarray(data, dtype=float))
        names = list(column_names) if column_names is not None else list(self.column_names)
        if data.shape[1] != len(names):
            raise DimensionMismatchError(
                f"matrix has {data.shape[1]} columns but {len(names)} names were given"
            )
        return self.append_rows({name: data[:, i] for i, name in enumerate(names)})

    # -- exact query evaluation -----------------------------------------------
    def selection_mask(self, query: "RangeQuery | TypedQuery") -> np.ndarray:
        """Boolean mask of rows satisfying ``query`` (full scan).

        Typed predicates are evaluated *brute force* on decoded values
        (``np.isin`` over strings, ``startswith`` per row) — deliberately
        independent of the dictionary-code lowering path, so the two can be
        tested against each other.
        """
        mask = np.ones(self._row_count, dtype=bool)
        for attribute in query.attributes:
            predicate = query[attribute]
            values = self.column(attribute)
            if isinstance(predicate, Interval):
                mask &= (values >= predicate.low) & (values <= predicate.high)
            elif isinstance(predicate, SetMembership):
                if self._schema is not None and self._schema.is_encoded(attribute):
                    wanted = np.asarray(
                        [str(v) for v in predicate.values], dtype=str
                    )
                    mask &= np.isin(self.decoded(attribute), wanted)
                else:
                    wanted = np.asarray(
                        [float(v) for v in predicate.values], dtype=float
                    )
                    mask &= np.isin(values, wanted)
            elif isinstance(predicate, StringPrefix):
                schema = self._effective_schema()
                if schema.kind(attribute) is not ColumnKind.STRING:
                    raise SchemaError(
                        f"prefix predicates require a string column; "
                        f"{attribute!r} is {schema.kind(attribute).value}"
                    )
                mask &= np.char.startswith(self.decoded(attribute), predicate.prefix)
            else:
                raise SchemaError(
                    f"unsupported predicate {predicate!r} on {attribute!r}"
                )
        return mask

    def true_count(self, query: "RangeQuery | TypedQuery") -> int:
        """Exact number of rows satisfying ``query``."""
        return int(np.count_nonzero(self.selection_mask(query)))

    def true_selectivity(self, query: "RangeQuery | TypedQuery") -> float:
        """Exact fraction of rows satisfying ``query`` (0.0 for empty tables)."""
        if self._row_count == 0:
            return 0.0
        return self.true_count(query) / self._row_count

    def true_counts(
        self,
        queries: "Sequence[RangeQuery | TypedQuery] | CompiledQueries | LoweredQueries",
    ) -> np.ndarray:
        """Exact row counts for a whole workload (vectorized full scans).

        Accepts a sequence of queries (typed queries are lowered against the
        table's schema), a pre-compiled plan whose columns are a subset of
        the table's columns, or an already-lowered plan.  The
        ``(block, rows)`` containment mask is chunked over queries so memory
        stays bounded.
        """
        if isinstance(queries, LoweredQueries):
            per_box = self._plan_counts(queries.plan).astype(float)
            return np.round(queries.reduce(per_box)).astype(np.int64)
        if isinstance(queries, CompiledQueries):
            compiled = queries
        else:
            query_list = list(queries)
            if any(isinstance(q, TypedQuery) for q in query_list):
                lowered = compile_queries(
                    query_list, self.column_names, schema=self._effective_schema()
                )
                return self.true_counts(lowered)
            compiled = compile_queries(query_list, self.column_names)
        return self._plan_counts(compiled)

    def _plan_counts(self, compiled: CompiledQueries) -> np.ndarray:
        """Chunked containment counts of one compiled (box) plan."""
        missing = [c for c in compiled.columns if c not in self._columns]
        if missing:
            raise CatalogError(
                f"table {self.name!r} has no columns {missing}"
            )
        n = len(compiled)
        out = np.zeros(n, dtype=np.int64)
        if n == 0 or self._row_count == 0:
            return out
        # Columns no query constrains are all (-inf, +inf) and filter nothing.
        active = [
            d
            for d in range(len(compiled.columns))
            if not (
                np.isneginf(compiled.lows[:, d]).all()
                and np.isposinf(compiled.highs[:, d]).all()
            )
        ]
        if not active:
            out[:] = self._row_count
            return out
        values = {d: self.column(compiled.columns[d]) for d in active}
        block = max((1 << 22) // self._row_count, 1)
        for start in range(0, n, block):
            stop = min(start + block, n)
            mask = np.ones((stop - start, self._row_count), dtype=bool)
            for d, column_values in values.items():
                mask &= (column_values[None, :] >= compiled.lows[start:stop, d, None]) & (
                    column_values[None, :] <= compiled.highs[start:stop, d, None]
                )
            out[start:stop] = np.count_nonzero(mask, axis=1)
        return out

    def true_selectivities(
        self,
        queries: "Sequence[RangeQuery | TypedQuery] | CompiledQueries | LoweredQueries",
    ) -> np.ndarray:
        """Exact selectivity of every query (zeros for empty tables)."""
        counts = self.true_counts(queries)
        if self._row_count == 0:
            return np.zeros(counts.shape[0])
        return counts / self._row_count

    def select(self, query: "RangeQuery | TypedQuery") -> "Table":
        """Return a new table containing only the rows matching ``query``."""
        mask = self.selection_mask(query)
        return Table(
            self.name,
            {name: values[mask] for name, values in self._columns.items()},
            schema=self._schema,
        )

    def sample(self, size: int, rng: np.random.Generator | None = None) -> "Table":
        """Return a uniform random sample (without replacement) of ``size`` rows."""
        rng = rng or np.random.default_rng()
        if size >= self._row_count:
            return Table(self.name, dict(self._columns), schema=self._schema)
        index = rng.choice(self._row_count, size=size, replace=False)
        return Table(
            self.name,
            {name: values[index] for name, values in self._columns.items()},
            schema=self._schema,
        )

    def iter_rows(self, columns: Sequence[str] | None = None) -> Iterator[tuple[float, ...]]:
        """Iterate rows as tuples over the requested columns."""
        names = list(columns) if columns is not None else list(self.column_names)
        matrix = self.columns(names)
        for row in matrix:
            yield tuple(float(v) for v in row)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.name!r}, rows={self._row_count}, columns={list(self._columns)})"
