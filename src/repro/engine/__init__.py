"""Execution engine: tables, schema, catalog, exact executor and toy optimizer."""

from repro.engine.catalog import Catalog
from repro.engine.executor import EvaluationResult, Executor, QueryResult, evaluate_estimator
from repro.engine.optimizer import (
    JoinSpec,
    Optimizer,
    Plan,
    estimate_join_selectivity,
    exact_join_selectivity,
    plan_regret,
)
from repro.engine.table import ColumnKind, ColumnStats, Table, TableSchema

__all__ = [
    "Table",
    "TableSchema",
    "ColumnKind",
    "ColumnStats",
    "Catalog",
    "Executor",
    "QueryResult",
    "EvaluationResult",
    "evaluate_estimator",
    "Optimizer",
    "JoinSpec",
    "Plan",
    "plan_regret",
    "estimate_join_selectivity",
    "exact_join_selectivity",
]
