"""Execution engine: tables, catalog, exact executor and toy optimizer."""

from repro.engine.catalog import Catalog
from repro.engine.executor import EvaluationResult, Executor, QueryResult, evaluate_estimator
from repro.engine.optimizer import JoinSpec, Optimizer, Plan, plan_regret
from repro.engine.table import ColumnStats, Table

__all__ = [
    "Table",
    "ColumnStats",
    "Catalog",
    "Executor",
    "QueryResult",
    "EvaluationResult",
    "evaluate_estimator",
    "Optimizer",
    "JoinSpec",
    "Plan",
    "plan_regret",
]
