"""Catalog of tables and their statistics synopses.

The :class:`Catalog` plays the role the system catalog plays in a DBMS: it
owns the tables, remembers which synopsis (estimator) is attached to which
table, and serves selectivity estimates to the executor and the optimizer.
Attaching an estimator fits it immediately; estimates for tables without a
synopsis fall back to the exact answer (a full scan), which is what a test
harness wants when the synopsis under study only covers some tables.

The catalog also fronts the persistence layer: :meth:`Catalog.save`
publishes every attached synopsis into a
:class:`~repro.persist.store.ModelStore` (one named, versioned model per
table) and :meth:`Catalog.restore` re-attaches the latest published versions
without refitting — the statistics of a whole database survive a restart.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.core.errors import CatalogError
from repro.core.estimator import SelectivityEstimator, StreamingEstimator
from repro.engine.table import Table, TableSchema
from repro.workload.queries import (
    CompiledQueries,
    LoweredQueries,
    RangeQuery,
    TypedQuery,
    compile_queries,
)

if TYPE_CHECKING:  # imported for type annotations only (avoids a package cycle)
    from repro.persist.store import ModelStore

__all__ = ["Catalog"]


class Catalog:
    """Registry of tables and per-table statistics synopses."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._estimators: dict[str, SelectivityEstimator] = {}

    # -- tables -----------------------------------------------------------
    def add_table(self, table: Table) -> None:
        """Register a table (replacing any previous table of the same name)."""
        self._tables[table.name] = table

    def table(self, name: str) -> Table:
        """Look up a table by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def table_names(self) -> list[str]:
        """Names of all registered tables."""
        return sorted(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __len__(self) -> int:
        return len(self._tables)

    # -- statistics -----------------------------------------------------------
    def attach_estimator(
        self,
        table_name: str,
        estimator: SelectivityEstimator,
        columns: Sequence[str] | None = None,
    ) -> SelectivityEstimator:
        """Fit ``estimator`` on the named table and attach it as its synopsis."""
        table = self.table(table_name)
        estimator.fit(table, columns)
        self._estimators[table_name] = estimator
        return estimator

    def attach_sharded(
        self,
        table_name: str,
        base: "SelectivityEstimator | Mapping | str",
        shards: int = 4,
        partitioner: str | Mapping = "hash",
        columns: Sequence[str] | None = None,
        **options,
    ) -> "ShardedEstimator":
        """Fit a partition-wise synopsis on the named table and attach it.

        Builds a :class:`~repro.shard.sharded.ShardedEstimator` over ``base``
        (an estimator instance, registry name or config mapping) with the
        given shard count and routing policy; extra keyword ``options``
        (``combine``, ``parallel``, ``max_workers``) are forwarded.  The
        per-shard refresh path is :meth:`refresh` with a ``shard`` id.
        """
        from repro.shard.sharded import ShardedEstimator  # lazy: avoids a cycle

        estimator = ShardedEstimator(
            base, shards=shards, partitioner=partitioner, **options
        )
        self.attach_estimator(table_name, estimator, columns)
        return estimator

    def attach_fitted(
        self, table_name: str, estimator: SelectivityEstimator
    ) -> SelectivityEstimator:
        """Attach an already-fitted synopsis (e.g. restored from a store).

        The estimator's columns must exist on the table; it is attached as-is,
        without refitting.
        """
        table = self.table(table_name)
        if not estimator.is_fitted:
            raise CatalogError(
                f"cannot attach unfitted {type(estimator).__name__} to {table_name!r}"
            )
        missing = [c for c in estimator.columns if c not in table]
        if missing:
            raise CatalogError(
                f"estimator covers columns {missing} that table {table_name!r} lacks"
            )
        self._estimators[table_name] = estimator
        return estimator

    def estimator(self, table_name: str) -> SelectivityEstimator | None:
        """The synopsis attached to ``table_name``, if any."""
        self.table(table_name)
        return self._estimators.get(table_name)

    def detach_estimator(self, table_name: str) -> None:
        """Remove the synopsis of a table (estimates fall back to exact scans)."""
        self._estimators.pop(table_name, None)

    # -- estimation -----------------------------------------------------------
    def estimate_selectivity(
        self, table_name: str, query: "RangeQuery | TypedQuery"
    ) -> float:
        """Selectivity estimate from the attached synopsis (exact if none)."""
        table = self.table(table_name)
        estimator = self._estimators.get(table_name)
        if estimator is None:
            return table.true_selectivity(query)
        if isinstance(query, TypedQuery):
            return float(self.estimate_batch(table_name, [query])[0])
        return estimator.estimate(query)

    def estimate_batch(
        self,
        table_name: str,
        queries: "Sequence[RangeQuery | TypedQuery] | CompiledQueries | LoweredQueries",
    ) -> np.ndarray:
        """Vector of selectivity estimates for a workload (exact if no synopsis).

        Typed predicates are lowered against the table's schema onto disjoint
        numeric boxes here — estimators only ever see ordinary compiled
        plans, so no synopsis implementation knows about dictionaries.
        """
        table = self.table(table_name)
        estimator = self._estimators.get(table_name)
        if estimator is None:
            return table.true_selectivities(queries)
        lowered: LoweredQueries | None = None
        if isinstance(queries, LoweredQueries):
            lowered = queries
        elif not isinstance(queries, CompiledQueries):
            query_list = list(queries)
            if any(isinstance(q, TypedQuery) for q in query_list):
                lowered = compile_queries(
                    query_list, estimator.columns, schema=table._effective_schema()
                )
            else:
                queries = query_list
        if lowered is not None:
            per_box = estimator.estimate_batch(lowered.plan)
            return np.clip(lowered.reduce(per_box), 0.0, 1.0)
        return estimator.estimate_batch(queries)

    def estimate_cardinality(self, table_name: str, query: RangeQuery) -> float:
        """Cardinality estimate: selectivity times the table's true row count."""
        table = self.table(table_name)
        return self.estimate_selectivity(table_name, query) * table.row_count

    def estimate_cardinality_batch(
        self, table_name: str, queries: Sequence[RangeQuery] | CompiledQueries
    ) -> np.ndarray:
        """Vector of cardinality estimates for a workload."""
        table = self.table(table_name)
        return self.estimate_batch(table_name, queries) * table.row_count

    def true_selectivity(self, table_name: str, query: RangeQuery) -> float:
        """Exact selectivity (full scan) for evaluation purposes."""
        return self.table(table_name).true_selectivity(query)

    def true_selectivities(
        self, table_name: str, queries: Sequence[RangeQuery] | CompiledQueries
    ) -> np.ndarray:
        """Exact selectivities (vectorized full scans) for evaluation purposes."""
        return self.table(table_name).true_selectivities(queries)

    def refresh(self, table_name: str, shard: int | None = None) -> None:
        """Refit the attached synopsis after the table changed.

        With ``shard=None`` the whole synopsis is rebuilt.  For a sharded
        synopsis, passing a shard id refits only that partition's synopsis
        (the frozen routing selects its rows) — the cheap path when only one
        partition's data changed.
        """
        estimator = self._estimators.get(table_name)
        if estimator is None:
            if shard is not None:
                raise CatalogError(
                    f"table {table_name!r} has no synopsis to refresh a shard of"
                )
            return
        if shard is not None:
            from repro.shard.sharded import ShardedEstimator  # lazy: avoids a cycle

            if not isinstance(estimator, ShardedEstimator):
                raise CatalogError(
                    f"synopsis of {table_name!r} is not sharded; refresh() "
                    "without a shard id rebuilds it"
                )
            estimator.refit_shard(shard, self.table(table_name))
            return
        if isinstance(estimator, StreamingEstimator):
            # Apply any buffered inserts before refitting.  The streaming
            # contract does not require fit() to rebuild from scratch
            # (incremental implementations are legal), so half-applied
            # inserts must never be left in the buffer across a refresh;
            # and if fit() raises, the estimator is left in a fully
            # flushed state rather than with silently pending rows.
            estimator.flush()
        estimator.fit(self.table(table_name), list(estimator.columns) or None)

    # -- persistence -----------------------------------------------------------
    def save(self, store: "ModelStore", prefix: str = "") -> dict[str, int]:
        """Publish every attached synopsis into ``store``.

        Each synopsis becomes one named model (``prefix + table name``); the
        snapshot path flushes streaming estimators, so buffered stream rows
        are part of the persisted model.  Returns ``{table name: version}``.
        """
        published: dict[str, int] = {}
        for table_name in sorted(self._estimators):
            table = self._tables.get(table_name)
            schema = table.schema if table is not None else None
            version = store.publish(
                prefix + table_name,
                self._estimators[table_name],
                schema=schema.to_json() if schema is not None else None,
            )
            published[table_name] = version.version
        return published

    def restore(
        self,
        store: "ModelStore",
        tables: Sequence[str] | None = None,
        prefix: str = "",
        version: int | None = None,
    ) -> list[str]:
        """Re-attach synopses published by :meth:`save`, without refitting.

        Restores the latest (or a pinned) published version for each named
        table (default: every registered table with a model in the store).
        Returns the table names that were restored.
        """
        names = list(tables) if tables is not None else self.table_names()
        available = set(store.model_names())
        restored: list[str] = []
        for table_name in names:
            if prefix + table_name not in available:
                if tables is not None:
                    raise CatalogError(
                        f"store has no model {prefix + table_name!r} to restore"
                    )
                continue
            header = store.describe(prefix + table_name, version)
            payload = header.get("schema")
            if payload is not None:
                saved_schema = TableSchema.from_json(payload)
                table_schema = self.table(table_name).schema
                if table_schema != saved_schema:
                    raise CatalogError(
                        f"snapshot of {table_name!r} was built against a "
                        "different schema (dictionary drift); refit instead "
                        "of restoring"
                    )
            estimator = store.load(prefix + table_name, version)
            self.attach_fitted(table_name, estimator)
            restored.append(table_name)
        return restored

    def describe(self) -> Mapping[str, dict]:
        """Structured description of every table and its synopsis."""
        result = {}
        for name, table in sorted(self._tables.items()):
            estimator = self._estimators.get(name)
            result[name] = {
                "rows": table.row_count,
                "columns": list(table.column_names),
                "schema": table.schema.to_json() if table.schema is not None else None,
                "estimator": estimator.describe() if estimator else None,
            }
        return result
