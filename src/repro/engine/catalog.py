"""Catalog of tables and their statistics synopses.

The :class:`Catalog` plays the role the system catalog plays in a DBMS: it
owns the tables, remembers which synopsis (estimator) is attached to which
table, and serves selectivity estimates to the executor and the optimizer.
Attaching an estimator fits it immediately; estimates for tables without a
synopsis fall back to the exact answer (a full scan), which is what a test
harness wants when the synopsis under study only covers some tables.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.errors import CatalogError
from repro.core.estimator import SelectivityEstimator
from repro.engine.table import Table
from repro.workload.queries import CompiledQueries, RangeQuery

__all__ = ["Catalog"]


class Catalog:
    """Registry of tables and per-table statistics synopses."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._estimators: dict[str, SelectivityEstimator] = {}

    # -- tables -----------------------------------------------------------
    def add_table(self, table: Table) -> None:
        """Register a table (replacing any previous table of the same name)."""
        self._tables[table.name] = table

    def table(self, name: str) -> Table:
        """Look up a table by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def table_names(self) -> list[str]:
        """Names of all registered tables."""
        return sorted(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __len__(self) -> int:
        return len(self._tables)

    # -- statistics -----------------------------------------------------------
    def attach_estimator(
        self,
        table_name: str,
        estimator: SelectivityEstimator,
        columns: Sequence[str] | None = None,
    ) -> SelectivityEstimator:
        """Fit ``estimator`` on the named table and attach it as its synopsis."""
        table = self.table(table_name)
        estimator.fit(table, columns)
        self._estimators[table_name] = estimator
        return estimator

    def estimator(self, table_name: str) -> SelectivityEstimator | None:
        """The synopsis attached to ``table_name``, if any."""
        self.table(table_name)
        return self._estimators.get(table_name)

    def detach_estimator(self, table_name: str) -> None:
        """Remove the synopsis of a table (estimates fall back to exact scans)."""
        self._estimators.pop(table_name, None)

    # -- estimation -----------------------------------------------------------
    def estimate_selectivity(self, table_name: str, query: RangeQuery) -> float:
        """Selectivity estimate from the attached synopsis (exact if none)."""
        table = self.table(table_name)
        estimator = self._estimators.get(table_name)
        if estimator is None:
            return table.true_selectivity(query)
        return estimator.estimate(query)

    def estimate_batch(
        self, table_name: str, queries: Sequence[RangeQuery] | CompiledQueries
    ) -> np.ndarray:
        """Vector of selectivity estimates for a workload (exact if no synopsis)."""
        table = self.table(table_name)
        estimator = self._estimators.get(table_name)
        if estimator is None:
            return table.true_selectivities(queries)
        return estimator.estimate_batch(queries)

    def estimate_cardinality(self, table_name: str, query: RangeQuery) -> float:
        """Cardinality estimate: selectivity times the table's true row count."""
        table = self.table(table_name)
        return self.estimate_selectivity(table_name, query) * table.row_count

    def estimate_cardinality_batch(
        self, table_name: str, queries: Sequence[RangeQuery] | CompiledQueries
    ) -> np.ndarray:
        """Vector of cardinality estimates for a workload."""
        table = self.table(table_name)
        return self.estimate_batch(table_name, queries) * table.row_count

    def true_selectivity(self, table_name: str, query: RangeQuery) -> float:
        """Exact selectivity (full scan) for evaluation purposes."""
        return self.table(table_name).true_selectivity(query)

    def true_selectivities(
        self, table_name: str, queries: Sequence[RangeQuery] | CompiledQueries
    ) -> np.ndarray:
        """Exact selectivities (vectorized full scans) for evaluation purposes."""
        return self.table(table_name).true_selectivities(queries)

    def refresh(self, table_name: str) -> None:
        """Refit the attached synopsis after the table changed (bulk rebuild)."""
        estimator = self._estimators.get(table_name)
        if estimator is not None:
            estimator.fit(self.table(table_name), list(estimator.columns) or None)

    def describe(self) -> Mapping[str, dict]:
        """Structured description of every table and its synopsis."""
        result = {}
        for name, table in sorted(self._tables.items()):
            estimator = self._estimators.get(name)
            result[name] = {
                "rows": table.row_count,
                "columns": list(table.column_names),
                "estimator": estimator.describe() if estimator else None,
            }
        return result
