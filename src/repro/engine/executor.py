"""Query executor: ground truth, feedback loop and workload evaluation.

The executor runs range queries against the exact tables, which gives the
ground-truth cardinalities every experiment compares against.  It also closes
the *feedback loop*: after executing a query it can hand the observed true
selectivity back to a feedback-capable synopsis, exactly the way a DBMS with
"learning optimizer" machinery would.

:func:`evaluate_estimator` is the workhorse of the benchmark harness: given a
table, a fitted estimator and a workload it returns paired vectors of
estimates and truths, plus timing, from which the metrics module computes the
numbers printed in the tables.  Both the executor and the evaluator run on
the batch path: the workload is compiled once
(:func:`~repro.workload.queries.compile_queries`) and ground truth and
estimates are produced as whole vectors.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.errors import NotFittedError
from repro.core.estimator import (
    FeedbackEstimator,
    SelectivityEstimator,
    StreamingEstimator,
)
from repro.engine.table import Table
from repro.metrics.errors import ErrorSummary, evaluate_estimates
from repro.workload.queries import CompiledQueries, RangeQuery, compile_queries

__all__ = ["QueryResult", "EvaluationResult", "Executor", "evaluate_estimator"]


@dataclass(frozen=True)
class QueryResult:
    """Outcome of executing one query against the exact table."""

    query: RangeQuery
    true_count: int
    true_fraction: float
    table_rows: int
    estimated_fraction: float | None = None

    @property
    def estimated_count(self) -> float | None:
        """Estimated cardinality, if an estimate was recorded."""
        if self.estimated_fraction is None:
            return None
        return self.estimated_fraction * self.table_rows


@dataclass
class EvaluationResult:
    """Paired estimates and truths for a whole workload, plus timing."""

    estimator_name: str
    estimates: np.ndarray
    truths: np.ndarray
    estimate_seconds: float
    memory_bytes: int
    queries: list[RangeQuery] = field(default_factory=list)

    @property
    def query_count(self) -> int:
        """Number of queries evaluated."""
        return int(self.truths.size)

    @property
    def queries_per_second(self) -> float:
        """Estimation throughput."""
        if self.estimate_seconds <= 0:
            return float("inf")
        return self.query_count / self.estimate_seconds

    def summaries(self, floor: float = 1e-4) -> dict[str, ErrorSummary]:
        """Absolute / relative / q-error summaries of the workload."""
        return dict(evaluate_estimates(self.estimates, self.truths, floor))

    def mean_relative_error(self, floor: float = 1e-4) -> float:
        """Mean relative error (the headline number of the accuracy tables)."""
        return self.summaries(floor)["relative"].mean

    def mean_q_error(self, floor: float = 1e-4) -> float:
        """Mean q-error."""
        return self.summaries(floor)["q"].mean


class Executor:
    """Runs queries exactly and optionally feeds results back to a synopsis."""

    def __init__(self, table: Table):
        self.table = table
        self.executed = 0

    def execute(self, query: RangeQuery, estimator: SelectivityEstimator | None = None) -> QueryResult:
        """Execute one query exactly; record the synopsis estimate if given."""
        estimate = estimator.estimate(query) if estimator is not None else None
        count = self.table.true_count(query)
        fraction = count / self.table.row_count if self.table.row_count else 0.0
        self.executed += 1
        return QueryResult(query, count, fraction, self.table.row_count, estimate)

    def execute_with_feedback(self, query: RangeQuery, estimator: FeedbackEstimator) -> QueryResult:
        """Execute a query and immediately feed the truth back to the synopsis."""
        result = self.execute(query, estimator)
        estimator.feedback(query, result.true_fraction)
        return result

    def run_workload(
        self,
        queries: Sequence[RangeQuery],
        estimator: SelectivityEstimator | None = None,
        feedback: bool = False,
    ) -> list[QueryResult]:
        """Execute a workload, optionally with the feedback loop closed.

        Ground truth is always computed on the vectorized batch path.  Without
        feedback the synopsis estimates are batched too; with feedback the
        estimates stay sequential by necessity (each estimate must be taken
        before its own query's truth is fed back).
        """
        queries = list(queries)
        rows = self.table.row_count
        if isinstance(estimator, StreamingEstimator):
            # Apply any buffered ingestion work up front so every estimate in
            # the workload sees the same synopsis state.
            estimator.flush()
        # Compile once against the table's columns; the estimator restricts
        # the same plan to its own columns instead of re-compiling.
        plan = compile_queries(queries, self.table.column_names)
        counts = self.table.true_counts(plan)
        fractions = counts / rows if rows else np.zeros(len(queries))
        results: list[QueryResult] = []
        if feedback and isinstance(estimator, FeedbackEstimator):
            for query, count, fraction in zip(queries, counts, fractions):
                estimate = estimator.estimate(query)
                estimator.feedback(query, float(fraction))
                results.append(
                    QueryResult(query, int(count), float(fraction), rows, estimate)
                )
        else:
            estimates = estimator.estimate_batch(plan) if estimator is not None else None
            for i, query in enumerate(queries):
                estimate = float(estimates[i]) if estimates is not None else None
                results.append(
                    QueryResult(query, int(counts[i]), float(fractions[i]), rows, estimate)
                )
        self.executed += len(queries)
        return results


def evaluate_estimator(
    table: Table,
    estimator: SelectivityEstimator,
    queries: Sequence[RangeQuery] | CompiledQueries,
    name: str | None = None,
) -> EvaluationResult:
    """Evaluate a fitted estimator on a workload against exact answers.

    The workload is compiled once against the estimator's columns; the timed
    section covers only the batched estimation itself, so
    ``EvaluationResult.queries_per_second`` measures estimation throughput,
    not query-plan construction.
    """
    if not estimator.is_fitted:
        raise NotFittedError(
            f"{type(estimator).__name__} must be fitted before evaluation"
        )
    if isinstance(estimator, StreamingEstimator):
        # Buffered ingestion work belongs to maintenance, not to the timed
        # estimation section below.
        estimator.flush()
    compiled = compile_queries(queries, estimator.columns)
    truths = table.true_selectivities(compiled)
    start = time.perf_counter()
    estimates = estimator.estimate_batch(compiled)
    elapsed = time.perf_counter() - start
    return EvaluationResult(
        estimator_name=name or estimator.name,
        estimates=estimates,
        truths=truths,
        estimate_seconds=elapsed,
        memory_bytes=estimator.memory_bytes(),
        queries=list(queries) if not isinstance(queries, CompiledQueries) else [],
    )
