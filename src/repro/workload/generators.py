"""Query workload generators.

Selectivity-estimation accuracy depends as much on the workload as on the
data, so the harness controls query generation explicitly:

* :class:`UniformWorkload` — query centres uniform over the attribute
  domains; query widths are a fixed fraction of the domain (the "volume"
  knob of Fig. 3).
* :class:`DataCenteredWorkload` — query centres drawn from the data itself,
  so most queries land where tuples are (the realistic OLAP case).
* :class:`SkewedWorkload` — query centres concentrated in a hot region of
  the domain (models a dashboard repeatedly querying the same slice; drives
  the feedback experiment, Fig. 6).

Every generator yields :class:`~repro.workload.queries.RangeQuery` objects
over a configurable subset of attributes and takes an explicit seed.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator, Sequence

import numpy as np

from repro.core.errors import InvalidParameterError
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imported for type annotations only (avoids a package cycle)
    from repro.engine.table import Table
from repro.workload.queries import (
    Interval,
    RangeQuery,
    SetMembership,
    StringPrefix,
    TypedQuery,
)

__all__ = [
    "WorkloadGenerator",
    "UniformWorkload",
    "DataCenteredWorkload",
    "SkewedWorkload",
    "TypedWorkload",
    "generate_workload",
]


class WorkloadGenerator(ABC):
    """Base class of all workload generators.

    Parameters
    ----------
    table:
        The relation the queries target; used for attribute domains and (for
        data-centred workloads) for drawing query centres.
    attributes:
        Attributes the queries may constrain (default: all table columns).
    query_dimensions:
        Number of attributes each query constrains.  ``None`` constrains all
        of ``attributes``; an integer selects a random subset per query.
    volume_fraction:
        Width of each per-attribute interval as a fraction of the attribute's
        domain width.
    seed:
        Seed of the generator.
    """

    def __init__(
        self,
        table: Table,
        attributes: Sequence[str] | None = None,
        query_dimensions: int | None = None,
        volume_fraction: float = 0.1,
        seed: int | None = 0,
    ) -> None:
        self.table = table
        self.attributes = list(attributes) if attributes is not None else list(table.column_names)
        if not self.attributes:
            raise InvalidParameterError("workload needs at least one attribute")
        for attribute in self.attributes:
            if attribute not in table:
                raise InvalidParameterError(
                    f"table {table.name!r} has no column {attribute!r}"
                )
        if query_dimensions is not None and not 1 <= query_dimensions <= len(self.attributes):
            raise InvalidParameterError(
                "query_dimensions must lie between 1 and the number of attributes"
            )
        if not 0.0 < volume_fraction <= 1.0:
            raise InvalidParameterError("volume_fraction must lie in (0, 1]")
        self.query_dimensions = query_dimensions
        self.volume_fraction = float(volume_fraction)
        self.seed = seed
        self._domain = table.domain(self.attributes)

    # -- generation -----------------------------------------------------------
    def generate(self, count: int) -> list[RangeQuery]:
        """Generate ``count`` queries."""
        if count < 0:
            raise InvalidParameterError("count must be non-negative")
        rng = np.random.default_rng(self.seed)
        return [self._one_query(rng) for _ in range(count)]

    def __iter__(self) -> Iterator[RangeQuery]:
        rng = np.random.default_rng(self.seed)
        while True:
            yield self._one_query(rng)

    def _one_query(self, rng: np.random.Generator) -> RangeQuery:
        attributes = self._pick_attributes(rng)
        constraints: dict[str, Interval] = {}
        for attribute in attributes:
            low, high = self._domain[attribute]
            width = (high - low) * self.volume_fraction
            if width <= 0:
                width = max(abs(low), 1.0) * 1e-6
            center = self._pick_center(attribute, rng)
            constraints[attribute] = Interval(center - width / 2.0, center + width / 2.0)
        return RangeQuery(constraints)

    def _pick_attributes(self, rng: np.random.Generator) -> list[str]:
        if self.query_dimensions is None or self.query_dimensions >= len(self.attributes):
            return list(self.attributes)
        chosen = rng.choice(len(self.attributes), size=self.query_dimensions, replace=False)
        return [self.attributes[i] for i in sorted(chosen)]

    @abstractmethod
    def _pick_center(self, attribute: str, rng: np.random.Generator) -> float:
        """Pick the centre of the query interval on ``attribute``."""


class UniformWorkload(WorkloadGenerator):
    """Query centres uniform over each attribute's domain."""

    def _pick_center(self, attribute: str, rng: np.random.Generator) -> float:
        low, high = self._domain[attribute]
        if high <= low:
            return low
        return float(rng.uniform(low, high))


class DataCenteredWorkload(WorkloadGenerator):
    """Query centres drawn from actual data values (plus a small jitter)."""

    def __init__(
        self,
        table: Table,
        attributes: Sequence[str] | None = None,
        query_dimensions: int | None = None,
        volume_fraction: float = 0.1,
        jitter_fraction: float = 0.01,
        seed: int | None = 0,
    ) -> None:
        super().__init__(table, attributes, query_dimensions, volume_fraction, seed)
        if jitter_fraction < 0:
            raise InvalidParameterError("jitter_fraction must be non-negative")
        self.jitter_fraction = float(jitter_fraction)
        self._center_row = 0

    def _one_query(self, rng: np.random.Generator) -> RangeQuery:
        # Centre every attribute of one query on the SAME data record: on
        # correlated or clustered data, drawing each attribute's centre
        # independently would produce boxes between the clusters that no
        # realistic workload would ask.
        if self.table.row_count == 0:
            return super()._one_query(rng)
        self._center_row = int(rng.integers(0, self.table.row_count))
        return super()._one_query(rng)

    def _pick_center(self, attribute: str, rng: np.random.Generator) -> float:
        values = self.table.column(attribute)
        low, high = self._domain[attribute]
        if values.size == 0:
            return low
        center = float(values[self._center_row])
        jitter = (high - low) * self.jitter_fraction
        if jitter > 0:
            center += float(rng.uniform(-jitter, jitter))
        return center


class SkewedWorkload(WorkloadGenerator):
    """Query centres concentrated in a hot sub-region of every attribute.

    Parameters
    ----------
    hot_fraction:
        Width of the hot region as a fraction of the domain.
    hot_probability:
        Probability that a query centre falls in the hot region.
    hot_position:
        Relative position of the hot region's centre inside the domain.
    """

    def __init__(
        self,
        table: Table,
        attributes: Sequence[str] | None = None,
        query_dimensions: int | None = None,
        volume_fraction: float = 0.1,
        hot_fraction: float = 0.2,
        hot_probability: float = 0.9,
        hot_position: float = 0.5,
        seed: int | None = 0,
    ) -> None:
        super().__init__(table, attributes, query_dimensions, volume_fraction, seed)
        if not 0.0 < hot_fraction <= 1.0:
            raise InvalidParameterError("hot_fraction must lie in (0, 1]")
        if not 0.0 <= hot_probability <= 1.0:
            raise InvalidParameterError("hot_probability must lie in [0, 1]")
        if not 0.0 <= hot_position <= 1.0:
            raise InvalidParameterError("hot_position must lie in [0, 1]")
        self.hot_fraction = float(hot_fraction)
        self.hot_probability = float(hot_probability)
        self.hot_position = float(hot_position)

    def _pick_center(self, attribute: str, rng: np.random.Generator) -> float:
        low, high = self._domain[attribute]
        if high <= low:
            return low
        width = high - low
        if rng.random() < self.hot_probability:
            hot_center = low + self.hot_position * width
            hot_width = width * self.hot_fraction
            return float(rng.uniform(hot_center - hot_width / 2.0, hot_center + hot_width / 2.0))
        return float(rng.uniform(low, high))


class TypedWorkload(UniformWorkload):
    """Typed predicates matching the schema of a mixed-type table.

    Numeric attributes get uniform-centred intervals exactly like
    :class:`UniformWorkload`.  Categorical attributes get IN sets of up to
    ``max_in_size`` dictionary values; string attributes get a prefix cut
    from a randomly drawn dictionary entry (``max_prefix_length`` caps its
    length).  Tables without a schema degrade to all-numeric behaviour, just
    wrapped in :class:`~repro.workload.queries.TypedQuery` nodes.
    """

    def __init__(
        self,
        table: Table,
        attributes: Sequence[str] | None = None,
        query_dimensions: int | None = None,
        volume_fraction: float = 0.1,
        max_in_size: int = 4,
        max_prefix_length: int | None = None,
        seed: int | None = 0,
    ) -> None:
        super().__init__(table, attributes, query_dimensions, volume_fraction, seed)
        if max_in_size < 1:
            raise InvalidParameterError("max_in_size must be positive")
        if max_prefix_length is not None and max_prefix_length < 1:
            raise InvalidParameterError("max_prefix_length must be positive")
        self.max_in_size = int(max_in_size)
        self.max_prefix_length = max_prefix_length

    def _one_query(self, rng: np.random.Generator) -> TypedQuery:
        schema = self.table.schema
        constraints: dict[str, object] = {}
        for attribute in self._pick_attributes(rng):
            if schema is None or not schema.is_encoded(attribute):
                low, high = self._domain[attribute]
                width = (high - low) * self.volume_fraction
                if width <= 0:
                    width = max(abs(low), 1.0) * 1e-6
                center = self._pick_center(attribute, rng)
                constraints[attribute] = Interval(
                    center - width / 2.0, center + width / 2.0
                )
                continue
            dictionary = schema.dictionary(attribute)
            from repro.engine.table import ColumnKind  # lazy: avoids a cycle

            if schema.kind(attribute) is ColumnKind.STRING:
                word = dictionary[int(rng.integers(0, len(dictionary)))]
                cap = self.max_prefix_length or len(word)
                length = int(rng.integers(1, max(min(cap, len(word)), 1) + 1))
                constraints[attribute] = StringPrefix(word[:length])
            else:
                size = int(rng.integers(1, min(self.max_in_size, len(dictionary)) + 1))
                chosen = rng.choice(len(dictionary), size=size, replace=False)
                constraints[attribute] = SetMembership(
                    [dictionary[int(i)] for i in chosen]
                )
        return TypedQuery(constraints)


_WORKLOADS = {
    "uniform": UniformWorkload,
    "data_centered": DataCenteredWorkload,
    "skewed": SkewedWorkload,
    "typed": TypedWorkload,
}


def generate_workload(
    kind: str,
    table: Table,
    count: int,
    **kwargs: object,
) -> list[RangeQuery]:
    """Generate ``count`` queries of the named workload kind.

    ``kind`` is ``"uniform"``, ``"data_centered"`` or ``"skewed"``; extra
    keyword arguments are forwarded to the generator constructor.
    """
    try:
        generator_type = _WORKLOADS[kind]
    except KeyError:
        raise InvalidParameterError(
            f"unknown workload kind {kind!r}; available: {sorted(_WORKLOADS)}"
        ) from None
    generator = generator_type(table, **kwargs)  # type: ignore[arg-type]
    return generator.generate(count)
