"""Query model for selectivity estimation.

Selectivity estimation work is expressed over *conjunctive range predicates*:
a query constrains a subset of numeric attributes, each to a closed interval
``[low, high]``.  Point predicates are intervals with ``low == high`` and
one-sided predicates use ``-inf`` / ``+inf`` bounds.  This is the canonical
query class used by histogram, sampling, wavelet and kernel-based estimators.

The central type is :class:`RangeQuery`.  It is immutable, hashable and keeps
its constraints in a normalised, sorted form so that two queries expressing
the same predicate compare equal regardless of construction order.

For high-throughput estimation a workload is *compiled* once into a
:class:`CompiledQueries` plan (via :func:`compile_queries`): a pair of
``(n, d)`` bound matrices aligned with a fixed column tuple, the unit every
estimator's ``estimate_batch`` consumes without touching per-query Python
objects again.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.core.errors import DimensionMismatchError, InvalidQueryError, SchemaError

__all__ = [
    "Interval",
    "SetMembership",
    "StringPrefix",
    "RangeQuery",
    "TypedQuery",
    "QueryRegion",
    "CompiledQueries",
    "LoweredQueries",
    "compile_queries",
]


@dataclass(frozen=True, order=True)
class Interval:
    """A closed numeric interval ``[low, high]``.

    ``low`` may be ``-inf`` and ``high`` may be ``+inf`` to express one-sided
    predicates such as ``x <= 10``.
    """

    low: float
    high: float

    def __post_init__(self) -> None:
        low = float(self.low)
        high = float(self.high)
        if math.isnan(low) or math.isnan(high):
            raise InvalidQueryError("interval bounds must not be NaN")
        if low > high:
            raise InvalidQueryError(f"interval lower bound {low} exceeds upper bound {high}")
        object.__setattr__(self, "low", low)
        object.__setattr__(self, "high", high)

    @property
    def width(self) -> float:
        """Length of the interval (may be ``inf`` for one-sided intervals)."""
        return self.high - self.low

    @property
    def is_point(self) -> bool:
        """True when the interval contains a single value."""
        return self.low == self.high

    @property
    def is_bounded(self) -> bool:
        """True when both endpoints are finite."""
        return math.isfinite(self.low) and math.isfinite(self.high)

    def contains(self, value: float) -> bool:
        """Return whether ``value`` lies inside the closed interval."""
        return self.low <= value <= self.high

    def intersect(self, other: "Interval") -> "Interval | None":
        """Return the intersection with ``other`` or ``None`` if disjoint."""
        low = max(self.low, other.low)
        high = min(self.high, other.high)
        if low > high:
            return None
        return Interval(low, high)

    def clip(self, low: float, high: float) -> "Interval":
        """Clip the interval to ``[low, high]``; empty results collapse to a point at ``low``."""
        new_low = min(max(self.low, low), high)
        new_high = max(min(self.high, high), low)
        if new_low > new_high:
            new_low = new_high
        return Interval(new_low, new_high)

    def overlap_fraction(self, low: float, high: float) -> float:
        """Fraction of ``[low, high]`` covered by this interval.

        Used by histogram estimators under the uniform-spread assumption.
        Returns 0.0 when ``[low, high]`` is degenerate and not contained.
        """
        if high <= low:
            return 1.0 if self.contains(low) else 0.0
        covered = min(self.high, high) - max(self.low, low)
        if covered <= 0:
            return 0.0
        return covered / (high - low)


class SetMembership:
    """An IN predicate: the attribute takes one of a finite set of values.

    Values may be strings (for dictionary-encoded categorical/string columns)
    or numbers (for numeric columns).  The set is normalised to a frozenset so
    two predicates over the same values compare equal.
    """

    __slots__ = ("values", "_hash")

    def __init__(self, values: Iterable[object]):
        if isinstance(values, (str, bytes)):
            raise InvalidQueryError(
                "SetMembership takes an iterable of values; wrap a single "
                "value in a list (or use SetMembership.equals)"
            )
        normalised = frozenset(values)
        if not normalised:
            raise InvalidQueryError("SetMembership needs at least one value")
        object.__setattr__(self, "values", normalised)
        object.__setattr__(self, "_hash", hash(("SetMembership", normalised)))

    @classmethod
    def equals(cls, value: object) -> "SetMembership":
        """Equality predicate sugar: ``column = value``."""
        return cls([value])

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("SetMembership is immutable")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SetMembership):
            return NotImplemented
        return self.values == other.values

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        shown = sorted(map(repr, self.values))
        return f"SetMembership({{{', '.join(shown)}}})"


class StringPrefix:
    """A string-prefix predicate: the attribute starts with ``prefix``.

    Valid only on string-kind columns, whose sorted dictionary makes every
    prefix a single contiguous code range.  The empty prefix matches all rows.
    """

    __slots__ = ("prefix", "_hash")

    def __init__(self, prefix: str):
        if not isinstance(prefix, str):
            raise InvalidQueryError(
                f"StringPrefix needs a str prefix, got {type(prefix).__name__}"
            )
        object.__setattr__(self, "prefix", prefix)
        object.__setattr__(self, "_hash", hash(("StringPrefix", prefix)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("StringPrefix is immutable")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StringPrefix):
            return NotImplemented
        return self.prefix == other.prefix

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"StringPrefix({self.prefix!r})"


#: Predicate node types a TypedQuery may hold per attribute.
Predicate = Interval | SetMembership | StringPrefix


class RangeQuery(Mapping[str, Interval]):
    """A conjunctive range predicate over named numeric attributes.

    Parameters
    ----------
    constraints:
        Mapping from attribute name to :class:`Interval` (or a ``(low, high)``
        pair, which is converted).

    Examples
    --------
    >>> q = RangeQuery({"age": (30, 40), "salary": (50_000, math.inf)})
    >>> q.attributes
    ('age', 'salary')
    >>> q["age"].low
    30.0
    """

    __slots__ = ("_constraints", "_hash")

    def __init__(self, constraints: Mapping[str, Interval | tuple[float, float]]):
        if not constraints:
            raise InvalidQueryError("a RangeQuery needs at least one attribute constraint")
        normalised: dict[str, Interval] = {}
        for name in sorted(constraints):
            value = constraints[name]
            if isinstance(value, Interval):
                normalised[name] = value
            else:
                low, high = value
                normalised[name] = Interval(float(low), float(high))
        self._constraints: dict[str, Interval] = normalised
        self._hash: int | None = None

    # -- Mapping protocol -------------------------------------------------
    def __getitem__(self, attribute: str) -> Interval:
        return self._constraints[attribute]

    def __iter__(self) -> Iterator[str]:
        return iter(self._constraints)

    def __len__(self) -> int:
        return len(self._constraints)

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(tuple(self._constraints.items()))
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RangeQuery):
            return NotImplemented
        return self._constraints == other._constraints

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}∈[{iv.low:g}, {iv.high:g}]" for name, iv in self._constraints.items()
        )
        return f"RangeQuery({parts})"

    # -- accessors ---------------------------------------------------------
    @property
    def attributes(self) -> tuple[str, ...]:
        """Constrained attribute names, in sorted order."""
        return tuple(self._constraints)

    @property
    def dimensionality(self) -> int:
        """Number of constrained attributes."""
        return len(self._constraints)

    def interval(self, attribute: str) -> Interval:
        """Return the interval for ``attribute`` (``KeyError`` if unconstrained)."""
        return self._constraints[attribute]

    def bounds(self, attributes: Sequence[str]) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(lows, highs)`` arrays aligned with ``attributes``.

        Attributes not constrained by the query get ``(-inf, +inf)``.
        """
        lows = np.full(len(attributes), -np.inf)
        highs = np.full(len(attributes), np.inf)
        for i, name in enumerate(attributes):
            interval = self._constraints.get(name)
            if interval is not None:
                lows[i] = interval.low
                highs[i] = interval.high
        return lows, highs

    def restrict(self, attributes: Iterable[str]) -> "RangeQuery | None":
        """Project the query onto ``attributes``; ``None`` if nothing remains."""
        keep = {name: iv for name, iv in self._constraints.items() if name in set(attributes)}
        if not keep:
            return None
        return RangeQuery(keep)

    def volume(self, domain: Mapping[str, tuple[float, float]]) -> float:
        """Fraction of the (axis-aligned) domain covered by the query box.

        ``domain`` maps attribute name to ``(low, high)`` bounds of the data
        domain.  Attributes of the domain not constrained by the query
        contribute a factor of 1.
        """
        fraction = 1.0
        for name, (dlow, dhigh) in domain.items():
            interval = self._constraints.get(name)
            if interval is None:
                continue
            width = dhigh - dlow
            if width <= 0:
                continue
            clipped = interval.clip(dlow, dhigh)
            fraction *= clipped.width / width
        return fraction

    def intersect(self, other: "RangeQuery") -> "RangeQuery | None":
        """Conjunction of two queries; ``None`` if the result is empty."""
        merged: dict[str, Interval] = dict(self._constraints)
        for name, interval in other.items():
            if name in merged:
                joint = merged[name].intersect(interval)
                if joint is None:
                    return None
                merged[name] = joint
            else:
                merged[name] = interval
        return RangeQuery(merged)

    def contains_point(self, point: Mapping[str, float]) -> bool:
        """True when ``point`` (attribute → value) satisfies every constraint."""
        for name, interval in self._constraints.items():
            value = point.get(name)
            if value is None or not interval.contains(float(value)):
                return False
        return True


class TypedQuery(Mapping[str, object]):
    """A conjunctive predicate mixing typed nodes over named attributes.

    The schema-aware sibling of :class:`RangeQuery`: each attribute is
    constrained by an :class:`Interval` (numeric range), a
    :class:`SetMembership` (IN over categorical/string/numeric values) or a
    :class:`StringPrefix` (prefix over a string column).  Convenience
    conversions mirror :class:`RangeQuery`: a ``(low, high)`` tuple becomes
    an :class:`Interval`, and a ``list``/``set``/``frozenset`` becomes a
    :class:`SetMembership`.

    A TypedQuery cannot be evaluated against bare numeric columns — it is
    *lowered* onto the numeric plan layer via :func:`compile_queries` with a
    schema (see :class:`~repro.engine.table.TableSchema`), producing a
    :class:`LoweredQueries` of disjoint numeric boxes.
    """

    __slots__ = ("_constraints", "_hash")

    def __init__(self, constraints: Mapping[str, object]):
        if not constraints:
            raise InvalidQueryError("a TypedQuery needs at least one attribute constraint")
        normalised: dict[str, object] = {}
        for name in sorted(constraints):
            value = constraints[name]
            if isinstance(value, (Interval, SetMembership, StringPrefix)):
                normalised[name] = value
            elif isinstance(value, tuple) and len(value) == 2:
                normalised[name] = Interval(float(value[0]), float(value[1]))
            elif isinstance(value, (list, set, frozenset)):
                normalised[name] = SetMembership(value)
            else:
                raise InvalidQueryError(
                    f"attribute {name!r}: unsupported predicate {value!r}; use "
                    "Interval, SetMembership, StringPrefix, a (low, high) tuple "
                    "or a list/set of values"
                )
        self._constraints: dict[str, object] = normalised
        self._hash: int | None = None

    # -- Mapping protocol -------------------------------------------------
    def __getitem__(self, attribute: str) -> object:
        return self._constraints[attribute]

    def __iter__(self) -> Iterator[str]:
        return iter(self._constraints)

    def __len__(self) -> int:
        return len(self._constraints)

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(tuple(self._constraints.items()))
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TypedQuery):
            return NotImplemented
        return self._constraints == other._constraints

    def __repr__(self) -> str:
        parts = ", ".join(f"{name}: {pred!r}" for name, pred in self._constraints.items())
        return f"TypedQuery({parts})"

    # -- accessors ---------------------------------------------------------
    @property
    def attributes(self) -> tuple[str, ...]:
        """Constrained attribute names, in sorted order."""
        return tuple(self._constraints)

    @property
    def dimensionality(self) -> int:
        """Number of constrained attributes."""
        return len(self._constraints)

    def restrict(self, attributes: Iterable[str]) -> "TypedQuery | None":
        """Project the query onto ``attributes``; ``None`` if nothing remains."""
        keep = {n: p for n, p in self._constraints.items() if n in set(attributes)}
        if not keep:
            return None
        return TypedQuery(keep)


class CompiledQueries:
    """A workload compiled into bound matrices aligned with a column tuple.

    This is the *query plan* of the estimation layer: ``lows`` and ``highs``
    are ``(n, d)`` float matrices whose column ``j`` holds the bounds each of
    the ``n`` queries places on ``columns[j]`` (``-inf`` / ``+inf`` where a
    query leaves the attribute unconstrained).  Estimators consume these
    matrices directly, so a workload is translated from Python objects into
    numpy exactly once per (workload, column tuple) pair.

    Instances are immutable: the bound matrices are marked read-only.
    """

    __slots__ = ("columns", "lows", "highs")

    def __init__(
        self,
        columns: Sequence[str],
        lows: np.ndarray,
        highs: np.ndarray,
    ) -> None:
        columns = tuple(columns)
        lows = np.array(lows, dtype=float, order="C")
        highs = np.array(highs, dtype=float, order="C")
        if lows.ndim != 2 or highs.ndim != 2:
            raise InvalidQueryError("compiled bounds must be (n, d) matrices")
        if lows.shape != highs.shape:
            raise InvalidQueryError(
                f"lows shape {lows.shape} does not match highs shape {highs.shape}"
            )
        if lows.shape[1] != len(columns):
            raise InvalidQueryError(
                f"bound matrices have {lows.shape[1]} columns for {len(columns)} attributes"
            )
        if np.any(np.isnan(lows)) or np.any(np.isnan(highs)):
            raise InvalidQueryError("compiled bounds must not contain NaN")
        if np.any(lows > highs):
            raise InvalidQueryError("compiled lower bounds must not exceed upper bounds")
        lows.setflags(write=False)
        highs.setflags(write=False)
        object.__setattr__(self, "columns", columns)
        object.__setattr__(self, "lows", lows)
        object.__setattr__(self, "highs", highs)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("CompiledQueries is immutable")

    def __len__(self) -> int:
        return int(self.lows.shape[0])

    @property
    def query_count(self) -> int:
        """Number of compiled queries."""
        return int(self.lows.shape[0])

    @property
    def dimensionality(self) -> int:
        """Number of attributes in the plan's column tuple."""
        return len(self.columns)

    def restrict(self, columns: Sequence[str]) -> "CompiledQueries":
        """Project the plan onto a subset (or reordering) of its columns.

        Dropping a column is only allowed when no query constrains it —
        otherwise the projected plan would silently ignore a predicate.
        """
        columns = tuple(columns)
        missing = [c for c in columns if c not in self.columns]
        if missing:
            raise DimensionMismatchError(
                f"compiled plan over {list(self.columns)} has no columns {missing}"
            )
        dropped = [d for d, c in enumerate(self.columns) if c not in columns]
        for d in dropped:
            if np.any(np.isfinite(self.lows[:, d])) or np.any(np.isfinite(self.highs[:, d])):
                raise DimensionMismatchError(
                    f"cannot drop constrained column {self.columns[d]!r} from a compiled plan"
                )
        index = [self.columns.index(c) for c in columns]
        return CompiledQueries(columns, self.lows[:, index], self.highs[:, index])

    def to_queries(self) -> list[RangeQuery]:
        """Reconstruct one :class:`RangeQuery` per row (loop fallbacks only)."""
        return [
            RangeQuery(
                {
                    column: Interval(self.lows[i, d], self.highs[i, d])
                    for d, column in enumerate(self.columns)
                }
            )
            for i in range(self.lows.shape[0])
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompiledQueries(n={len(self)}, columns={list(self.columns)})"


class LoweredQueries:
    """A typed workload lowered into disjoint numeric boxes plus a grouping.

    ``plan`` is an ordinary :class:`CompiledQueries` whose rows are the
    disjoint boxes produced by predicate lowering (an IN over k runs of codes
    times a second IN over m runs expands into ``k*m`` boxes).  ``group[b]``
    names the source query of box ``b``; because the boxes of one query are
    pairwise disjoint, the query's selectivity is the plain *sum* of its box
    selectivities — no inclusion–exclusion is ever needed.  :meth:`reduce`
    performs that sum for a whole per-box result vector.

    A query whose predicate matches nothing (e.g. an IN over values absent
    from the dictionary) contributes zero boxes and reduces to 0.
    """

    __slots__ = ("plan", "group", "query_count")

    def __init__(self, plan: CompiledQueries, group: np.ndarray, query_count: int) -> None:
        group = np.asarray(group, dtype=np.int64)
        if group.ndim != 1 or group.size != len(plan):
            raise InvalidQueryError("group must assign one source query per plan row")
        if group.size and (group.min() < 0 or group.max() >= int(query_count)):
            raise InvalidQueryError("group indices must lie in [0, query_count)")
        group.setflags(write=False)
        object.__setattr__(self, "plan", plan)
        object.__setattr__(self, "group", group)
        object.__setattr__(self, "query_count", int(query_count))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("LoweredQueries is immutable")

    def __len__(self) -> int:
        return self.query_count

    @property
    def box_count(self) -> int:
        """Number of disjoint boxes in the lowered plan."""
        return len(self.plan)

    def reduce(self, per_box: np.ndarray) -> np.ndarray:
        """Sum a per-box result vector back to one value per source query."""
        per_box = np.asarray(per_box, dtype=float).ravel()
        if per_box.size != len(self.plan):
            raise DimensionMismatchError(
                f"expected {len(self.plan)} per-box values, got {per_box.size}"
            )
        if per_box.size == 0:
            return np.zeros(self.query_count)
        return np.bincount(self.group, weights=per_box, minlength=self.query_count)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LoweredQueries(queries={self.query_count}, boxes={self.box_count}, "
            f"columns={list(self.plan.columns)})"
        )


#: Safety cap on the disjoint-box expansion of one typed query.
MAX_BOXES_PER_QUERY = 4096


def _contains_typed(queries: Sequence[object]) -> bool:
    return any(isinstance(q, TypedQuery) for q in queries)


def _lower_workload(
    query_list: Sequence["RangeQuery | TypedQuery"],
    columns: tuple[str, ...],
    schema,
) -> LoweredQueries:
    """Lower a mixed RangeQuery/TypedQuery workload onto disjoint numeric boxes.

    ``schema`` provides ``predicate_runs(column, predicate) -> (r, 2)`` arrays
    of closed code/value ranges per predicate (duck-typed so this module does
    not import the engine layer).  Each query's per-column runs are expanded
    into their cross product of disjoint boxes.
    """
    index_of = {c: d for d, c in enumerate(columns)}
    # Memoised tuple-of-pairs runs when the schema offers them (TableSchema
    # does); the duck-typed fallback keeps any predicate_runs provider valid.
    # Hits read the memo dict directly — the method call only pays on a miss.
    runs_of = getattr(schema, "predicate_runs_cached", None)
    runs_cache = getattr(schema, "_runs_cache", None) if runs_of is not None else None
    cache_get = runs_cache.get if runs_cache is not None else None
    index_get = index_of.get
    dimensions = len(columns)
    query_count = len(query_list)
    counts: list[int] = []
    base = 0
    # Single-box queries (the dominant case) scatter through one fancy
    # assignment; multi-box queries take the stride fill below.
    flat_rows: list[int] = []
    flat_cols: list[int] = []
    flat_lows: list[float] = []
    flat_highs: list[float] = []
    multi: list[tuple[int, int, list[tuple[int, tuple]]]] = []
    for i, query in enumerate(query_list):
        # Both query classes live in this module; reading the constraint dict
        # directly keeps the hot loop free of Mapping-protocol dispatch.
        constraints = getattr(query, "_constraints", None)
        if constraints is None:
            constraints = dict(query)
        per_column: list[tuple[int, tuple]] = []
        total = 1
        for name, predicate in constraints.items():
            d = index_get(name)
            if d is None:
                unknown = sorted(set(constraints) - set(columns))
                raise DimensionMismatchError(
                    f"query {i} constrains {unknown} which are not covered by "
                    f"the plan columns {list(columns)}"
                )
            if predicate.__class__ is Interval:
                # Intervals lower to themselves; skip the schema round trip.
                runs: tuple = ((predicate.low, predicate.high),)
            else:
                runs = cache_get((name, predicate)) if cache_get is not None else None
                if runs is None:
                    try:
                        if runs_of is not None:
                            runs = runs_of(name, predicate)
                        else:
                            array = np.asarray(
                                schema.predicate_runs(name, predicate), dtype=float
                            ).reshape(-1, 2)
                            runs = tuple((float(lo), float(hi)) for lo, hi in array)
                    except SchemaError as err:
                        raise InvalidQueryError(
                            f"query {i}, column {name!r}: {err}"
                        ) from err
                if not runs:
                    total = 0
                    break
            per_column.append((d, runs))
            total *= len(runs)
        if total > MAX_BOXES_PER_QUERY:
            raise InvalidQueryError(
                f"query {i} expands into {total} disjoint boxes, above the "
                f"per-query cap of {MAX_BOXES_PER_QUERY}; shrink its IN sets"
            )
        counts.append(total)
        if total == 1:
            for d, runs in per_column:
                lo, hi = runs[0]
                flat_rows.append(base)
                flat_cols.append(d)
                flat_lows.append(lo)
                flat_highs.append(hi)
        elif total > 1:
            multi.append((base, total, per_column))
        base += total
    total_boxes = base
    lows = np.full((total_boxes, dimensions), -np.inf)
    highs = np.full((total_boxes, dimensions), np.inf)
    group = np.repeat(
        np.arange(query_count, dtype=np.int64), np.asarray(counts, dtype=np.int64)
    )
    if flat_rows:
        rows_index = np.asarray(flat_rows, dtype=np.int64)
        cols_index = np.asarray(flat_cols, dtype=np.int64)
        lows[rows_index, cols_index] = flat_lows
        highs[rows_index, cols_index] = flat_highs
    for box_base, boxes, per_column in multi:
        # Cross product of runs: column d cycles through its runs with a
        # stride equal to the product of the run counts before it.
        stride = 1
        for d, runs in per_column:
            run_count = len(runs)
            if run_count == 1:
                lows[box_base : box_base + boxes, d] = runs[0][0]
                highs[box_base : box_base + boxes, d] = runs[0][1]
                continue
            pattern = np.asarray(runs, dtype=float)
            choice = (np.arange(boxes) // stride) % run_count
            lows[box_base : box_base + boxes, d] = pattern[choice, 0]
            highs[box_base : box_base + boxes, d] = pattern[choice, 1]
            stride *= run_count
    plan = CompiledQueries(columns, lows, highs)
    return LoweredQueries(plan, group, query_count)


def compile_queries(
    queries: "Sequence[RangeQuery | TypedQuery] | Iterable[RangeQuery] | CompiledQueries",
    columns: Sequence[str],
    schema=None,
) -> "CompiledQueries | LoweredQueries":
    """Compile a workload into a plan over ``columns``.

    Without ``schema`` (the numeric path, unchanged): a sequence of
    :class:`RangeQuery` compiles into a :class:`CompiledQueries`; an
    already-compiled plan is passed through when its column tuple matches
    (and re-projected via :meth:`CompiledQueries.restrict` when ``columns``
    is a subset), so callers can compile once and hand the same plan to every
    layer.

    With ``schema`` (a :class:`~repro.engine.table.TableSchema` or anything
    providing ``predicate_runs``): typed predicates are *lowered* — IN sets
    become runs of dictionary-code ranges, prefixes become one code interval —
    and the result is a :class:`LoweredQueries` of disjoint boxes whose
    ``.plan`` is consumable by any ``estimate_batch`` unchanged.

    A query constraining an attribute outside ``columns`` raises
    :class:`~repro.core.errors.DimensionMismatchError` naming the query index
    and the offending columns — that estimate would silently ignore a
    predicate otherwise.
    """
    columns = tuple(columns)
    if not columns:
        raise InvalidQueryError("compile_queries needs at least one column")
    if isinstance(queries, LoweredQueries):
        raise InvalidQueryError(
            "pass LoweredQueries.plan to estimators and reduce() the per-box "
            "results, or go through Catalog.estimate_batch / Table.true_counts"
        )
    if isinstance(queries, CompiledQueries):
        if queries.columns == columns:
            return queries
        return queries.restrict(columns)
    query_list = list(queries)
    if schema is not None:
        return _lower_workload(query_list, columns, schema)
    known = set(columns)
    lows = np.full((len(query_list), len(columns)), -np.inf)
    highs = np.full((len(query_list), len(columns)), np.inf)
    for i, query in enumerate(query_list):
        if isinstance(query, TypedQuery):
            raise InvalidQueryError(
                f"query {i} uses typed predicates; compile it with a schema "
                "(compile_queries(..., schema=table.schema))"
            )
        unknown = set(query.attributes) - known
        if unknown:
            raise DimensionMismatchError(
                f"query {i} constrains {sorted(unknown)} which are not covered "
                f"by the plan columns {list(columns)}"
            )
        lows[i], highs[i] = query.bounds(columns)
    return CompiledQueries(columns, lows, highs)


@dataclass(frozen=True)
class QueryRegion:
    """A query together with bookkeeping used by feedback-driven estimators.

    Attributes
    ----------
    query:
        The range predicate.
    true_fraction:
        Observed true selectivity in ``[0, 1]`` (from executing the query).
    estimated_fraction:
        The estimate the synopsis produced at observation time, if recorded.
    """

    query: RangeQuery
    true_fraction: float
    estimated_fraction: float | None = None
    weight: float = field(default=1.0)

    def __post_init__(self) -> None:
        if not 0.0 <= self.true_fraction <= 1.0:
            raise InvalidQueryError(
                f"true_fraction must be in [0, 1], got {self.true_fraction}"
            )
        if self.weight <= 0:
            raise InvalidQueryError("feedback weight must be positive")
