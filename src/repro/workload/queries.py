"""Query model for selectivity estimation.

Selectivity estimation work is expressed over *conjunctive range predicates*:
a query constrains a subset of numeric attributes, each to a closed interval
``[low, high]``.  Point predicates are intervals with ``low == high`` and
one-sided predicates use ``-inf`` / ``+inf`` bounds.  This is the canonical
query class used by histogram, sampling, wavelet and kernel-based estimators.

The central type is :class:`RangeQuery`.  It is immutable, hashable and keeps
its constraints in a normalised, sorted form so that two queries expressing
the same predicate compare equal regardless of construction order.

For high-throughput estimation a workload is *compiled* once into a
:class:`CompiledQueries` plan (via :func:`compile_queries`): a pair of
``(n, d)`` bound matrices aligned with a fixed column tuple, the unit every
estimator's ``estimate_batch`` consumes without touching per-query Python
objects again.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.core.errors import DimensionMismatchError, InvalidQueryError

__all__ = ["Interval", "RangeQuery", "QueryRegion", "CompiledQueries", "compile_queries"]


@dataclass(frozen=True, order=True)
class Interval:
    """A closed numeric interval ``[low, high]``.

    ``low`` may be ``-inf`` and ``high`` may be ``+inf`` to express one-sided
    predicates such as ``x <= 10``.
    """

    low: float
    high: float

    def __post_init__(self) -> None:
        low = float(self.low)
        high = float(self.high)
        if math.isnan(low) or math.isnan(high):
            raise InvalidQueryError("interval bounds must not be NaN")
        if low > high:
            raise InvalidQueryError(f"interval lower bound {low} exceeds upper bound {high}")
        object.__setattr__(self, "low", low)
        object.__setattr__(self, "high", high)

    @property
    def width(self) -> float:
        """Length of the interval (may be ``inf`` for one-sided intervals)."""
        return self.high - self.low

    @property
    def is_point(self) -> bool:
        """True when the interval contains a single value."""
        return self.low == self.high

    @property
    def is_bounded(self) -> bool:
        """True when both endpoints are finite."""
        return math.isfinite(self.low) and math.isfinite(self.high)

    def contains(self, value: float) -> bool:
        """Return whether ``value`` lies inside the closed interval."""
        return self.low <= value <= self.high

    def intersect(self, other: "Interval") -> "Interval | None":
        """Return the intersection with ``other`` or ``None`` if disjoint."""
        low = max(self.low, other.low)
        high = min(self.high, other.high)
        if low > high:
            return None
        return Interval(low, high)

    def clip(self, low: float, high: float) -> "Interval":
        """Clip the interval to ``[low, high]``; empty results collapse to a point at ``low``."""
        new_low = min(max(self.low, low), high)
        new_high = max(min(self.high, high), low)
        if new_low > new_high:
            new_low = new_high
        return Interval(new_low, new_high)

    def overlap_fraction(self, low: float, high: float) -> float:
        """Fraction of ``[low, high]`` covered by this interval.

        Used by histogram estimators under the uniform-spread assumption.
        Returns 0.0 when ``[low, high]`` is degenerate and not contained.
        """
        if high <= low:
            return 1.0 if self.contains(low) else 0.0
        covered = min(self.high, high) - max(self.low, low)
        if covered <= 0:
            return 0.0
        return covered / (high - low)


class RangeQuery(Mapping[str, Interval]):
    """A conjunctive range predicate over named numeric attributes.

    Parameters
    ----------
    constraints:
        Mapping from attribute name to :class:`Interval` (or a ``(low, high)``
        pair, which is converted).

    Examples
    --------
    >>> q = RangeQuery({"age": (30, 40), "salary": (50_000, math.inf)})
    >>> q.attributes
    ('age', 'salary')
    >>> q["age"].low
    30.0
    """

    __slots__ = ("_constraints", "_hash")

    def __init__(self, constraints: Mapping[str, Interval | tuple[float, float]]):
        if not constraints:
            raise InvalidQueryError("a RangeQuery needs at least one attribute constraint")
        normalised: dict[str, Interval] = {}
        for name in sorted(constraints):
            value = constraints[name]
            if isinstance(value, Interval):
                normalised[name] = value
            else:
                low, high = value
                normalised[name] = Interval(float(low), float(high))
        self._constraints: dict[str, Interval] = normalised
        self._hash: int | None = None

    # -- Mapping protocol -------------------------------------------------
    def __getitem__(self, attribute: str) -> Interval:
        return self._constraints[attribute]

    def __iter__(self) -> Iterator[str]:
        return iter(self._constraints)

    def __len__(self) -> int:
        return len(self._constraints)

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(tuple(self._constraints.items()))
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RangeQuery):
            return NotImplemented
        return self._constraints == other._constraints

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}∈[{iv.low:g}, {iv.high:g}]" for name, iv in self._constraints.items()
        )
        return f"RangeQuery({parts})"

    # -- accessors ---------------------------------------------------------
    @property
    def attributes(self) -> tuple[str, ...]:
        """Constrained attribute names, in sorted order."""
        return tuple(self._constraints)

    @property
    def dimensionality(self) -> int:
        """Number of constrained attributes."""
        return len(self._constraints)

    def interval(self, attribute: str) -> Interval:
        """Return the interval for ``attribute`` (``KeyError`` if unconstrained)."""
        return self._constraints[attribute]

    def bounds(self, attributes: Sequence[str]) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(lows, highs)`` arrays aligned with ``attributes``.

        Attributes not constrained by the query get ``(-inf, +inf)``.
        """
        lows = np.full(len(attributes), -np.inf)
        highs = np.full(len(attributes), np.inf)
        for i, name in enumerate(attributes):
            interval = self._constraints.get(name)
            if interval is not None:
                lows[i] = interval.low
                highs[i] = interval.high
        return lows, highs

    def restrict(self, attributes: Iterable[str]) -> "RangeQuery | None":
        """Project the query onto ``attributes``; ``None`` if nothing remains."""
        keep = {name: iv for name, iv in self._constraints.items() if name in set(attributes)}
        if not keep:
            return None
        return RangeQuery(keep)

    def volume(self, domain: Mapping[str, tuple[float, float]]) -> float:
        """Fraction of the (axis-aligned) domain covered by the query box.

        ``domain`` maps attribute name to ``(low, high)`` bounds of the data
        domain.  Attributes of the domain not constrained by the query
        contribute a factor of 1.
        """
        fraction = 1.0
        for name, (dlow, dhigh) in domain.items():
            interval = self._constraints.get(name)
            if interval is None:
                continue
            width = dhigh - dlow
            if width <= 0:
                continue
            clipped = interval.clip(dlow, dhigh)
            fraction *= clipped.width / width
        return fraction

    def intersect(self, other: "RangeQuery") -> "RangeQuery | None":
        """Conjunction of two queries; ``None`` if the result is empty."""
        merged: dict[str, Interval] = dict(self._constraints)
        for name, interval in other.items():
            if name in merged:
                joint = merged[name].intersect(interval)
                if joint is None:
                    return None
                merged[name] = joint
            else:
                merged[name] = interval
        return RangeQuery(merged)

    def contains_point(self, point: Mapping[str, float]) -> bool:
        """True when ``point`` (attribute → value) satisfies every constraint."""
        for name, interval in self._constraints.items():
            value = point.get(name)
            if value is None or not interval.contains(float(value)):
                return False
        return True


class CompiledQueries:
    """A workload compiled into bound matrices aligned with a column tuple.

    This is the *query plan* of the estimation layer: ``lows`` and ``highs``
    are ``(n, d)`` float matrices whose column ``j`` holds the bounds each of
    the ``n`` queries places on ``columns[j]`` (``-inf`` / ``+inf`` where a
    query leaves the attribute unconstrained).  Estimators consume these
    matrices directly, so a workload is translated from Python objects into
    numpy exactly once per (workload, column tuple) pair.

    Instances are immutable: the bound matrices are marked read-only.
    """

    __slots__ = ("columns", "lows", "highs")

    def __init__(
        self,
        columns: Sequence[str],
        lows: np.ndarray,
        highs: np.ndarray,
    ) -> None:
        columns = tuple(columns)
        lows = np.array(lows, dtype=float, order="C")
        highs = np.array(highs, dtype=float, order="C")
        if lows.ndim != 2 or highs.ndim != 2:
            raise InvalidQueryError("compiled bounds must be (n, d) matrices")
        if lows.shape != highs.shape:
            raise InvalidQueryError(
                f"lows shape {lows.shape} does not match highs shape {highs.shape}"
            )
        if lows.shape[1] != len(columns):
            raise InvalidQueryError(
                f"bound matrices have {lows.shape[1]} columns for {len(columns)} attributes"
            )
        if np.any(np.isnan(lows)) or np.any(np.isnan(highs)):
            raise InvalidQueryError("compiled bounds must not contain NaN")
        if np.any(lows > highs):
            raise InvalidQueryError("compiled lower bounds must not exceed upper bounds")
        lows.setflags(write=False)
        highs.setflags(write=False)
        object.__setattr__(self, "columns", columns)
        object.__setattr__(self, "lows", lows)
        object.__setattr__(self, "highs", highs)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("CompiledQueries is immutable")

    def __len__(self) -> int:
        return int(self.lows.shape[0])

    @property
    def query_count(self) -> int:
        """Number of compiled queries."""
        return int(self.lows.shape[0])

    @property
    def dimensionality(self) -> int:
        """Number of attributes in the plan's column tuple."""
        return len(self.columns)

    def restrict(self, columns: Sequence[str]) -> "CompiledQueries":
        """Project the plan onto a subset (or reordering) of its columns.

        Dropping a column is only allowed when no query constrains it —
        otherwise the projected plan would silently ignore a predicate.
        """
        columns = tuple(columns)
        missing = [c for c in columns if c not in self.columns]
        if missing:
            raise DimensionMismatchError(
                f"compiled plan over {list(self.columns)} has no columns {missing}"
            )
        dropped = [d for d, c in enumerate(self.columns) if c not in columns]
        for d in dropped:
            if np.any(np.isfinite(self.lows[:, d])) or np.any(np.isfinite(self.highs[:, d])):
                raise DimensionMismatchError(
                    f"cannot drop constrained column {self.columns[d]!r} from a compiled plan"
                )
        index = [self.columns.index(c) for c in columns]
        return CompiledQueries(columns, self.lows[:, index], self.highs[:, index])

    def to_queries(self) -> list[RangeQuery]:
        """Reconstruct one :class:`RangeQuery` per row (loop fallbacks only)."""
        return [
            RangeQuery(
                {
                    column: Interval(self.lows[i, d], self.highs[i, d])
                    for d, column in enumerate(self.columns)
                }
            )
            for i in range(self.lows.shape[0])
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompiledQueries(n={len(self)}, columns={list(self.columns)})"


def compile_queries(
    queries: "Sequence[RangeQuery] | Iterable[RangeQuery] | CompiledQueries",
    columns: Sequence[str],
) -> CompiledQueries:
    """Compile a workload into a :class:`CompiledQueries` plan over ``columns``.

    An already-compiled plan is passed through when its column tuple matches
    (and re-projected via :meth:`CompiledQueries.restrict` when ``columns`` is
    a subset), so callers can compile once and hand the same plan to every
    layer.  A query constraining an attribute outside ``columns`` raises
    :class:`~repro.core.errors.DimensionMismatchError` — that estimate would
    silently ignore a predicate otherwise.
    """
    columns = tuple(columns)
    if not columns:
        raise InvalidQueryError("compile_queries needs at least one column")
    if isinstance(queries, CompiledQueries):
        if queries.columns == columns:
            return queries
        return queries.restrict(columns)
    query_list = list(queries)
    known = set(columns)
    lows = np.full((len(query_list), len(columns)), -np.inf)
    highs = np.full((len(query_list), len(columns)), np.inf)
    for i, query in enumerate(query_list):
        unknown = set(query.attributes) - known
        if unknown:
            raise DimensionMismatchError(
                f"query constrains {sorted(unknown)} which are not covered by the plan "
                f"columns {list(columns)}"
            )
        lows[i], highs[i] = query.bounds(columns)
    return CompiledQueries(columns, lows, highs)


@dataclass(frozen=True)
class QueryRegion:
    """A query together with bookkeeping used by feedback-driven estimators.

    Attributes
    ----------
    query:
        The range predicate.
    true_fraction:
        Observed true selectivity in ``[0, 1]`` (from executing the query).
    estimated_fraction:
        The estimate the synopsis produced at observation time, if recorded.
    """

    query: RangeQuery
    true_fraction: float
    estimated_fraction: float | None = None
    weight: float = field(default=1.0)

    def __post_init__(self) -> None:
        if not 0.0 <= self.true_fraction <= 1.0:
            raise InvalidQueryError(
                f"true_fraction must be in [0, 1], got {self.true_fraction}"
            )
        if self.weight <= 0:
            raise InvalidQueryError("feedback weight must be positive")
