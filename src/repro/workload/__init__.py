"""Query model and workload generators."""

from repro.workload.generators import (
    DataCenteredWorkload,
    SkewedWorkload,
    UniformWorkload,
    WorkloadGenerator,
    generate_workload,
)
from repro.workload.queries import (
    CompiledQueries,
    Interval,
    QueryRegion,
    RangeQuery,
    compile_queries,
)

__all__ = [
    "Interval",
    "RangeQuery",
    "QueryRegion",
    "CompiledQueries",
    "compile_queries",
    "WorkloadGenerator",
    "UniformWorkload",
    "DataCenteredWorkload",
    "SkewedWorkload",
    "generate_workload",
]
