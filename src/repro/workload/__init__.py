"""Query model and workload generators."""

from repro.workload.generators import (
    DataCenteredWorkload,
    SkewedWorkload,
    UniformWorkload,
    WorkloadGenerator,
    generate_workload,
)
from repro.workload.queries import Interval, QueryRegion, RangeQuery

__all__ = [
    "Interval",
    "RangeQuery",
    "QueryRegion",
    "WorkloadGenerator",
    "UniformWorkload",
    "DataCenteredWorkload",
    "SkewedWorkload",
    "generate_workload",
]
