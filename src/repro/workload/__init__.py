"""Query model and workload generators."""

from repro.workload.generators import (
    DataCenteredWorkload,
    SkewedWorkload,
    TypedWorkload,
    UniformWorkload,
    WorkloadGenerator,
    generate_workload,
)
from repro.workload.queries import (
    CompiledQueries,
    Interval,
    LoweredQueries,
    QueryRegion,
    RangeQuery,
    SetMembership,
    StringPrefix,
    TypedQuery,
    compile_queries,
)

__all__ = [
    "Interval",
    "SetMembership",
    "StringPrefix",
    "RangeQuery",
    "TypedQuery",
    "QueryRegion",
    "CompiledQueries",
    "LoweredQueries",
    "compile_queries",
    "WorkloadGenerator",
    "UniformWorkload",
    "DataCenteredWorkload",
    "SkewedWorkload",
    "TypedWorkload",
    "generate_workload",
]
