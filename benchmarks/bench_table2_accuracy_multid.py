"""Table 2 — multi-dimensional accuracy at equal space budget."""

from repro.experiments.suite import table2_accuracy_multid


def test_table2_accuracy_multid(report):
    result = report(
        table2_accuracy_multid, rows=20_000, queries=150, budget_bytes=8192, dimensions=(2, 3, 4)
    )
    # Shape check: on correlated multi-dimensional data the kernel-based ADE
    # must beat the attribute-value-independence histograms at every d >= 2.
    by_dim: dict[int, dict[str, float]] = {}
    for row in result.rows:
        by_dim.setdefault(row[0], {})[row[1]] = row[2]
    for d, errors in by_dim.items():
        assert errors["ade_streaming"] < errors["equidepth"], d
        assert errors["ade_adaptive"] < errors["independence"], d
