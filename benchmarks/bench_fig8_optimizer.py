"""Fig. 8 — optimizer impact (plan regret of the chosen join orders)."""

from repro.experiments.suite import fig8_optimizer_impact


def test_fig8_optimizer_impact(report):
    result = report(fig8_optimizer_impact, fact_rows=40_000, dimension_rows=5_000, trials=20)
    regrets = {row[0]: row[1] for row in result.rows}
    # Shape check: exact selectivities give no regret, and the ADE-driven
    # optimizer is at least as good as the independence-assumption optimizer.
    assert regrets["true_selectivity"] == 1.0
    assert regrets["ade_adaptive"] <= regrets["independence"] + 1e-9
