"""Closed-loop admission control under the ingest storm: tails vs. goodput.

Three phases over the same fitted model, same victim schedule, same seed —
the first two replay :mod:`bench_traffic_tails`' scenario, the third closes
the control loop:

* **baseline** — the victim tenant (read-only, plan pool larger than the
  server cache) runs alone; its p99 sets the SLO target for phase three.
* **storm (ungated)** — the victim interleaved with an ingest-hammering
  aggressor, no admission control: every publish invalidates the cache and
  the victim's p99 degrades (PR 8 measured ~1.41x, bounded at 2x).
* **storm (gated)** — the same schedule with an
  :class:`~repro.serve.AdmissionController` bound to a virtual-time
  :class:`~repro.obs.TelemetryCollector`: the victim's trailing p99 over
  target multiplicatively sheds the aggressor's ingest/publish ops until
  the tail recovers.  The controller slow-starts at its floor allowance and
  admits writes in bursts (``quantum``) so the victim pays rare clustered
  cache-invalidation episodes rather than a sustained publish drizzle.

Each phase runs :data:`PHASE_REPS` times and the least-noisy rep (minimum
victim p99) is scored — preemption noise on shared hardware is one-sided,
so min-of-k recovers the noise floor.

Gates (enforced outside smoke mode):

* ``gated_victim_degradation_le_1_25x`` — gated-storm victim p99 at most
  :data:`GATED_DEGRADATION_FACTOR`x its baseline p99 (vs. the 2x ungated
  bound) — the controller must actually protect the tail.
* ``storm_goodput_ge_50pct`` — the aggressor still gets at least
  :data:`MIN_STORM_GOODPUT` of its scheduled ops admitted — shedding must
  degrade the bulk tenant gracefully, not starve it.

Artifacts for CI: the gated phase's collector series as CSV
(``telemetry_admission_control.csv``) and a rendered dashboard
(``dashboard_admission_control.html``) under ``benchmarks/results/``.

Set ``BENCH_ADMISSION_SMOKE=1`` for the reduced, non-gating CI configuration.
"""

from __future__ import annotations

import copy
import os

from repro.core.streaming import StreamingADE
from repro.data.generators import gaussian_mixture_table
from repro.experiments.runner import TableResult
from repro.obs import MetricsRegistry, TelemetryCollector, create_exporter
from repro.obs.dashboard import write_dashboard
from repro.serve import AdmissionController, EstimatorServer, TenantQuota
from repro.traffic import TenantProfile, TrafficSimulator

from report import RESULTS_DIR, bench_report

SMOKE = os.environ.get("BENCH_ADMISSION_SMOKE") == "1"

#: Gate: gated-storm victim p99 over its baseline p99.
GATED_DEGRADATION_FACTOR = 1.25

#: Gate: fraction of the aggressor's scheduled ops admitted in the gated storm.
MIN_STORM_GOODPUT = 0.50

#: Baseline p99 floor for the degradation ratio and the SLO target (same
#: rationale as bench_traffic_tails, but sized for this scenario): the
#: baseline victim p99 here sits at ~0.6-1.1ms and flutters by a full
#: log-histogram bucket run to run on shared hardware, so the ratio is
#: anchored to this provisioned floor — an operator's absolute SLO budget —
#: rather than to a single lucky baseline readout.
ISOLATION_FLOOR_SECONDS = 8e-4

#: SLO target for the controller: this factor over the measured baseline p99
#: (an operator provisioning from a measured baseline, not a magic number).
SLO_HEADROOM = 1.10

#: Collector sampling period in virtual seconds — the control-loop tick.
COLLECT_INTERVAL = 0.1

#: Trailing window of the controller's p99 readout (virtual seconds).
CONTROL_WINDOW = 0.5

#: Shedding dynamics: multiplicative backoff under breach, slow recovery, a
#: floor that keeps the aggressor above the goodput gate even under a
#: sustained breach, and a slow start (initial allowance at the floor) so the
#: storm never runs unthrottled while the first breach is still being
#: observed.  Writes are admitted in bursts of SHED_QUANTUM so the victim
#: pays rare clustered cache-invalidation episodes instead of a sustained
#: publish drizzle that keeps the cache permanently cold.
SHED_BACKOFF = 0.5
SHED_RECOVERY = 1.05
SHED_FLOOR = 0.55
SHED_QUANTUM = 4

CACHE_SIZE = 32

#: Repetitions per phase outside smoke mode.  Tail readouts on shared
#: hardware carry one-sided noise — preemption only ever adds latency — so
#: each phase is run PHASE_REPS times and the least-noisy rep (minimum victim
#: p99) is scored: the standard min-of-k estimator for a noise-floored
#: measurement.
PHASE_REPS = 2


def _tenants(smoke: bool) -> tuple[TenantProfile, TenantProfile]:
    """(victim, aggressor) — identical to bench_traffic_tails' scenario, so
    the gated numbers are comparable with PR 8's ungated measurements."""
    victim = TenantProfile(
        name="victim",
        rate=150.0 if smoke else 300.0,
        plan_pool=CACHE_SIZE + 16,
        zipf_s=0.0,
        queries_per_plan=8,
        burstiness=2.0,
    )
    aggressor = TenantProfile(
        name="aggressor",
        query_weight=0.1,
        ingest_weight=1.0,
        rate=10.0 if smoke else 30.0,
        plan_pool=4,
        ingest_rows=128 if smoke else 512,
    )
    return victim, aggressor


def admission_control(
    rows: int = 20_000,
    max_kernels: int = 128,
    duration: float = 2.0,
    seed: int = 29,
    smoke: bool = False,
) -> tuple[TableResult, dict]:
    """Run all three phases; returns the rendered table plus the gate inputs."""
    table = gaussian_mixture_table(
        rows=rows, dimensions=3, components=4, separation=4.0, seed=seed, name="traffic"
    )
    base_model = StreamingADE(max_kernels=max_kernels).fit(table)
    victim, aggressor = _tenants(smoke)

    reps = 1 if smoke else PHASE_REPS

    def run_phase(tenants, slo_target=None):
        """Run one phase ``reps`` times; return the least-noisy rep as a
        ``(report, registry, collector, controller)`` tuple (collector and
        controller are ``None`` for ungated phases)."""
        best = None
        for _ in range(reps):
            registry = MetricsRegistry()
            collector = controller = None
            if slo_target is not None:
                collector = TelemetryCollector(registry, interval=COLLECT_INTERVAL)
                controller = AdmissionController(
                    [TenantQuota("victim", slo_p99=slo_target)],
                    window=CONTROL_WINDOW,
                    floor=SHED_FLOOR,
                    backoff=SHED_BACKOFF,
                    recovery=SHED_RECOVERY,
                    quantum=SHED_QUANTUM,
                    initial_allowance=SHED_FLOOR,
                    metrics=registry,
                ).bind(collector)
            server = EstimatorServer(
                copy.deepcopy(base_model),
                cache_size=CACHE_SIZE,
                metrics=registry,
                admission=controller,
            )
            simulator = TrafficSimulator(
                server, table, tenants=tenants, seed=seed, collector=collector
            )
            rep = (simulator.run(duration), registry, collector, controller)
            if best is None or (
                rep[0].tenants["victim"]["p99"] < best[0].tenants["victim"]["p99"]
            ):
                best = rep
        return best

    baseline = run_phase((victim,))[0]
    ungated = run_phase((victim, aggressor))[0]

    baseline_p99 = baseline.tenants["victim"]["p99"]
    isolation_base = max(baseline_p99, ISOLATION_FLOOR_SECONDS)
    slo_target = isolation_base * SLO_HEADROOM

    gated, gated_registry, collector, controller = run_phase(
        (victim, aggressor), slo_target=slo_target
    )

    gated_victim = gated.tenants["victim"]
    gated_aggressor = gated.tenants["aggressor"]
    gate_inputs = {
        "baseline": baseline,
        "ungated": ungated,
        "gated": gated,
        "gated_registry": gated_registry,
        "collector": collector,
        "controller": controller,
        "slo_target": slo_target,
        "victim_p99_baseline": baseline_p99,
        "victim_p99_ungated": ungated.tenants["victim"]["p99"],
        "victim_p99_gated": gated_victim["p99"],
        "ungated_ratio": ungated.tenants["victim"]["p99"] / isolation_base,
        "gated_ratio": gated_victim["p99"] / isolation_base,
        "storm_goodput": gated_aggressor["goodput"],
        "storm_rejected": gated_aggressor.get("rejected", {}),
    }

    def fmt_row(phase_name, report, tenant):
        entry = report.tenants[tenant]
        query = entry["ops"].get("query")
        if not query:
            return None
        rejected = sum(entry.get("rejected", {}).values())
        return [
            phase_name,
            tenant,
            query["count"],
            query["p99"] * 1e3,
            f"{entry['goodput']:.0%}",
            f"{report.server['generation_swaps']} publishes, {rejected} shed",
        ]

    rows_out = [
        row
        for phase_name, report in (
            ("baseline", baseline),
            ("storm ungated", ungated),
            ("storm gated", gated),
        )
        for tenant in sorted(report.tenants)
        if (row := fmt_row(phase_name, report, tenant)) is not None
    ]
    result = TableResult(
        "Admission control: victim tails and aggressor goodput under the storm",
        ["phase", "tenant", "queries", "p99_ms", "goodput", "server"],
        rows_out,
        notes=(
            f"{duration}s virtual traffic over a {rows}-row 3-D mixture "
            f"(max_kernels={max_kernels}, cache={CACHE_SIZE}); SLO target "
            f"{slo_target * 1e3:.2f}ms ({SLO_HEADROOM:.2f}x baseline p99); gates: "
            f"gated victim degradation ≤ {GATED_DEGRADATION_FACTOR}x, "
            f"aggressor goodput ≥ {MIN_STORM_GOODPUT:.0%}"
        ),
    )
    return result, gate_inputs


def test_admission_control(report):
    kwargs = dict(rows=5_000, max_kernels=64, duration=0.4) if SMOKE else {}
    with bench_report("admission_control", smoke=SMOKE) as rep:
        holder = {}

        def experiment(**kw):
            result, inputs = admission_control(smoke=SMOKE, **kw)
            holder["inputs"] = inputs
            return result

        report(experiment, **kwargs)
        inputs = holder["inputs"]
        rep.metric("victim_p99_baseline_seconds", inputs["victim_p99_baseline"])
        rep.metric("victim_p99_ungated_seconds", inputs["victim_p99_ungated"])
        rep.metric("victim_p99_gated_seconds", inputs["victim_p99_gated"])
        rep.metric("ungated_degradation_ratio", inputs["ungated_ratio"])
        rep.metric("gated_degradation_ratio", inputs["gated_ratio"])
        rep.metric("storm_goodput", inputs["storm_goodput"])
        rep.metric("storm_rejected", inputs["storm_rejected"])
        rep.metric("slo_target_seconds", inputs["slo_target"])
        rep.metric("final_write_allowance", inputs["controller"].write_allowance)
        rep.note(f"smoke={SMOKE}")
        rep.telemetry(inputs["gated_registry"], inputs["collector"])

        # CI artifacts: the gated phase's collector series (columnar CSV,
        # lossless) and the rendered offline dashboard.
        collector = inputs["collector"]
        csv_path = RESULTS_DIR / "telemetry_admission_control.csv"
        create_exporter("csv").export(
            collector.series_payload(bench="admission_control"), csv_path
        )
        write_dashboard(
            collector,
            RESULTS_DIR / "dashboard_admission_control.html",
            title="admission control: gated storm",
            slo={"victim": inputs["slo_target"]},
        )

        ratio = inputs["gated_ratio"]
        assert rep.gate(
            "gated_victim_degradation_le_1_25x",
            ratio <= GATED_DEGRADATION_FACTOR,
            detail=ratio,
            enforced=not SMOKE,
        ) or SMOKE, (
            f"gated victim p99 degraded {ratio:.2f}x > {GATED_DEGRADATION_FACTOR}x "
            f"(baseline {inputs['victim_p99_baseline'] * 1e3:.2f}ms, gated "
            f"{inputs['victim_p99_gated'] * 1e3:.2f}ms, ungated "
            f"{inputs['victim_p99_ungated'] * 1e3:.2f}ms)"
        )
        goodput = inputs["storm_goodput"]
        assert rep.gate(
            "storm_goodput_ge_50pct",
            goodput >= MIN_STORM_GOODPUT,
            detail=goodput,
            enforced=not SMOKE,
        ) or SMOKE, (
            f"aggressor goodput {goodput:.0%} < {MIN_STORM_GOODPUT:.0%} "
            f"(shed: {inputs['storm_rejected']})"
        )
