"""Tail latency under mixed multi-tenant traffic + cross-tenant isolation.

Two phases over the same fitted model, same victim tenant, same seed:

* **baseline** — the victim tenant (read-only, plan pool larger than the
  server cache so its p99 already reflects the miss path) runs alone.
* **storm** — the same victim schedule interleaved with an aggressor tenant
  hammering ingest (checkout + insert + flush + publish), each publish
  bumping the generation and invalidating every cached plan.

Gates:

* ``mixed_p99_slo`` — every tenant's query p99 under the mixed read/write
  storm stays within :data:`SLO_P99_SECONDS`.
* ``isolation_p99_le_2x`` — the victim's storm-phase p99 degrades at most
  :data:`ISOLATION_FACTOR`x over its baseline p99 (with a small floor so a
  microsecond-scale baseline cannot make the ratio meaningless).  This holds
  because the synopsis budget (``max_kernels``) bounds the miss-path cost no
  matter how much the aggressor ingests — the property the gate pins.

The run's full telemetry (per-tenant latency histograms, server counters,
traffic op counts) is archived as ``BENCH_traffic_tails.json`` plus a JSONL
export under ``benchmarks/results/`` for CI to collect.

Set ``BENCH_TRAFFIC_SMOKE=1`` for the reduced, non-gating CI configuration.
"""

from __future__ import annotations

import copy
import os

from repro.core.streaming import StreamingADE
from repro.data.generators import gaussian_mixture_table
from repro.experiments.runner import TableResult
from repro.obs import JSONLExporter, MetricsRegistry
from repro.serve import EstimatorServer
from repro.traffic import TenantProfile, TrafficSimulator

from report import RESULTS_DIR, bench_report

SMOKE = os.environ.get("BENCH_TRAFFIC_SMOKE") == "1"

#: Gate: per-tenant query p99 under the mixed read/write storm phase.
SLO_P99_SECONDS = 0.05

#: Gate: victim p99 degradation factor, storm over baseline.
ISOLATION_FACTOR = 2.0

#: Baseline p99 floor for the isolation ratio: below this the baseline is
#: timer-granularity noise and a ratio over it measures nothing.
ISOLATION_FLOOR_SECONDS = 5e-4

CACHE_SIZE = 32


def _tenants(smoke: bool) -> tuple[TenantProfile, TenantProfile]:
    """(victim, aggressor) — the victim's draws depend only on its index (0),
    so its schedule is identical whether or not the aggressor runs."""
    victim = TenantProfile(
        name="victim",
        rate=150.0 if smoke else 300.0,
        # Pool > cache: the victim's baseline p99 is already a miss-path
        # latency, so the isolation ratio compares eval cost to eval cost
        # instead of dict-lookup to eval cost.
        plan_pool=CACHE_SIZE + 16,
        zipf_s=0.0,
        queries_per_plan=8,
        burstiness=2.0,
    )
    aggressor = TenantProfile(
        name="aggressor",
        query_weight=0.1,
        ingest_weight=1.0,
        rate=10.0 if smoke else 30.0,
        plan_pool=4,
        ingest_rows=128 if smoke else 512,
    )
    return victim, aggressor


def traffic_tails(
    rows: int = 20_000,
    max_kernels: int = 128,
    duration: float = 2.0,
    seed: int = 29,
    smoke: bool = False,
) -> tuple[TableResult, dict]:
    """Run both phases; returns the rendered table plus the gate inputs."""
    table = gaussian_mixture_table(
        rows=rows, dimensions=3, components=4, separation=4.0, seed=seed, name="traffic"
    )
    base_model = StreamingADE(max_kernels=max_kernels).fit(table)
    victim, aggressor = _tenants(smoke)

    def run_phase(tenants, registry):
        server = EstimatorServer(
            copy.deepcopy(base_model), cache_size=CACHE_SIZE, metrics=registry
        )
        return TrafficSimulator(server, table, tenants=tenants, seed=seed).run(duration)

    baseline_registry = MetricsRegistry()
    baseline = run_phase((victim,), baseline_registry)
    storm_registry = MetricsRegistry()
    storm = run_phase((victim, aggressor), storm_registry)

    base_victim = baseline.tenants["victim"]
    storm_victim = storm.tenants["victim"]
    isolation_base = max(base_victim["p99"], ISOLATION_FLOOR_SECONDS)
    gate_inputs = {
        "baseline": baseline,
        "storm": storm,
        "storm_registry": storm_registry,
        "victim_p99_baseline": base_victim["p99"],
        "victim_p99_storm": storm_victim["p99"],
        "isolation_ratio": storm_victim["p99"] / isolation_base,
        "worst_p99_storm": max(
            t["p99"] for t in storm.tenants.values() if "p99" in t
        ),
    }

    def fmt_rows(phase_name, report):
        out = []
        for name, tenant in sorted(report.tenants.items()):
            query = tenant["ops"].get("query")
            if not query:
                continue
            out.append([
                phase_name,
                name,
                query["count"],
                query["p50"] * 1e3,
                query["p99"] * 1e3,
                f"{report.server['generation_swaps']} publishes, "
                f"hit rate {report.server['hit_rate']:.0%}",
            ])
        return out

    result = TableResult(
        "Multi-tenant traffic: per-tenant query tails, baseline vs. ingest storm",
        ["phase", "tenant", "queries", "p50_ms", "p99_ms", "server"],
        fmt_rows("baseline", baseline) + fmt_rows("storm", storm),
        notes=(
            f"{duration}s virtual open-loop traffic over a {rows}-row 3-D mixture "
            f"(max_kernels={max_kernels}, cache={CACHE_SIZE}); gates: storm p99 ≤ "
            f"{SLO_P99_SECONDS * 1e3:.0f}ms, victim degradation ≤ {ISOLATION_FACTOR}x"
        ),
    )
    return result, gate_inputs


def test_traffic_tails(report):
    kwargs = (
        dict(rows=5_000, max_kernels=64, duration=0.4) if SMOKE else {}
    )
    with bench_report("traffic_tails", smoke=SMOKE) as rep:
        holder = {}

        def experiment(**kw):
            result, inputs = traffic_tails(smoke=SMOKE, **kw)
            holder["inputs"] = inputs
            return result

        report(experiment, **kwargs)
        inputs = holder["inputs"]
        baseline, storm = inputs["baseline"], inputs["storm"]
        for phase_name, phase in (("baseline", baseline), ("storm", storm)):
            for tenant, entry in phase.tenants.items():
                if "p99" in entry:
                    rep.metric(f"{phase_name}_{tenant}_p50_seconds", entry["p50"])
                    rep.metric(f"{phase_name}_{tenant}_p99_seconds", entry["p99"])
        rep.metric("storm_events", storm.events)
        rep.metric("storm_checksum", storm.checksum)
        rep.metric("storm_generation_swaps", storm.server["generation_swaps"])
        rep.metric("isolation_ratio", inputs["isolation_ratio"])
        rep.note(f"smoke={SMOKE}")
        rep.telemetry(inputs["storm_registry"])

        # Archive the storm phase's raw telemetry as JSONL for CI to collect.
        jsonl_path = RESULTS_DIR / "telemetry_traffic_tails.jsonl"
        storm.export(jsonl_path, JSONLExporter(), metrics=inputs["storm_registry"])

        worst = inputs["worst_p99_storm"]
        assert rep.gate(
            "mixed_p99_slo",
            worst <= SLO_P99_SECONDS,
            detail=worst,
            enforced=not SMOKE,
        ) or SMOKE, f"storm-phase p99 {worst * 1e3:.1f}ms > {SLO_P99_SECONDS * 1e3:.0f}ms"
        ratio = inputs["isolation_ratio"]
        assert rep.gate(
            "isolation_p99_le_2x",
            ratio <= ISOLATION_FACTOR,
            detail=ratio,
            enforced=not SMOKE,
        ) or SMOKE, (
            f"victim p99 degraded {ratio:.2f}x under the ingest storm "
            f"(baseline {inputs['victim_p99_baseline'] * 1e3:.2f}ms, "
            f"storm {inputs['victim_p99_storm'] * 1e3:.2f}ms)"
        )
