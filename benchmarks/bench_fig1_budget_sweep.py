"""Fig. 1 — error vs. space budget."""

from repro.experiments.suite import fig1_budget_sweep


def test_fig1_budget_sweep(report):
    result = report(
        fig1_budget_sweep,
        rows=20_000,
        queries=150,
        budgets=(1024, 2048, 4096, 8192, 16384),
    )
    # Shape check: the streaming ADE dominates the fixed-bandwidth KDE and the
    # AVI histograms at every budget on 2-D multimodal data.
    for index in range(len(result.x_values)):
        assert result.series["ade_streaming"][index] <= result.series["kde_fixed"][index]
        assert result.series["ade_streaming"][index] <= result.series["equidepth"][index]
