"""Fig. 4 — error vs. data skew (Zipf exponent)."""

from repro.experiments.suite import fig4_skew


def test_fig4_skew(report):
    result = report(
        fig4_skew, rows=20_000, queries=200, thetas=(0.0, 0.5, 1.0, 1.5, 2.0)
    )
    # Shape check: the adaptive streaming estimator tracks skew much better
    # than the fixed-bandwidth KDE as theta grows.
    assert result.series["ade_streaming"][-1] <= result.series["kde_fixed"][-1]
    # And everything is easy at theta = 0 (uniform data).
    for series in result.series.values():
        assert series[0] < 2.0
