"""Sharded scaling: fit + estimate_batch at 1 / 2 / 4 shards.

One adaptive-KDE configuration is fitted monolithically (= 1 shard) and as a
hash-partitioned :class:`~repro.shard.sharded.ShardedEstimator` at 2 and 4
shards with parallel per-shard fits, then both paths answer the same
compiled workload.  The **total synopsis budget is held constant** — each of
``k`` shards gets ``sample_size / k`` sample points, the same equal-space
discipline the accuracy experiments use — so the table isolates what
sharding buys at fixed budget.  Reported per shard count:

* **fit seconds** and the fit speedup over 1 shard — the acceptance gate
  requires ≥ 1.5x at 4 shards.  Sharding wins twice: per-shard bandwidth
  selection is superlinear in the per-shard sample (so ``k`` samples of
  ``m/k`` points are much cheaper than one of ``m``), and the shards fit
  concurrently on the thread pool.
* **estimate throughput** (queries/sec) through the weighted-combine path.
* **mean relative deviation vs. monolithic** (0.05 selectivity floor) — the
  accuracy cost of sharding, which the acceptance criteria bound at the 5 %
  documented in :mod:`repro.shard`.

Set ``BENCH_SHARD_SMOKE=1`` for the reduced CI smoke configuration (the
speedup gate is skipped — shared CI hardware cannot guarantee parallel
speedups — but the table is still produced and archived).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core.adaptive import AdaptiveKDEEstimator
from repro.data.generators import gaussian_mixture_table
from repro.experiments.runner import TableResult
from repro.shard.sharded import ShardedEstimator
from repro.workload.generators import UniformWorkload
from repro.workload.queries import compile_queries

from report import bench_report

SMOKE = os.environ.get("BENCH_SHARD_SMOKE") == "1"

#: Acceptance gate: parallel 4-shard fit speedup over the monolithic fit.
MIN_FIT_SPEEDUP_4_SHARDS = 1.5

#: Documented accuracy bound: mean relative deviation (0.05 floor) vs. the
#: monolithic estimator on the benchmark workload.
MAX_MEAN_RELATIVE_DEVIATION = 0.05


def sharded_scaling(
    rows: int = 60_000,
    queries: int = 400,
    sample_size: int = 1200,
    estimate_repeats: int = 5,
    seed: int = 7,
) -> TableResult:
    """Fit/estimate scaling table over shard counts 1, 2 and 4."""
    table = gaussian_mixture_table(
        rows=rows, dimensions=2, components=4, separation=4.0, seed=seed, name="bench"
    )
    workload = UniformWorkload(table, volume_fraction=0.15, seed=seed + 1).generate(
        queries
    )
    plan = compile_queries(workload, table.column_names)

    def build(shards: int):
        if shards == 1:
            return AdaptiveKDEEstimator(
                sample_size=sample_size, bandwidth_rule="lscv"
            )
        # Equal total budget: k shards share the monolithic sample size.
        return ShardedEstimator(
            {
                "name": "adaptive_kde",
                "sample_size": max(sample_size // shards, 8),
                "bandwidth_rule": "lscv",
            },
            shards=shards,
            partitioner="hash",
            parallel="thread",
        )

    rows_out = []
    baseline_fit = None
    monolithic_estimates = None
    for shards in (1, 2, 4):
        estimator = build(shards)
        start = time.perf_counter()
        estimator.fit(table)
        fit_seconds = time.perf_counter() - start

        estimator.estimate_batch(plan)  # warm-up
        start = time.perf_counter()
        for _ in range(estimate_repeats):
            estimates = estimator.estimate_batch(plan)
        estimate_seconds = (time.perf_counter() - start) / estimate_repeats
        qps = len(plan) / max(estimate_seconds, 1e-9)

        if shards == 1:
            baseline_fit = fit_seconds
            monolithic_estimates = estimates
            deviation = 0.0
        else:
            deviation = float(
                (
                    np.abs(estimates - monolithic_estimates)
                    / np.maximum(monolithic_estimates, 0.05)
                ).mean()
            )
        rows_out.append(
            [
                shards,
                fit_seconds,
                baseline_fit / max(fit_seconds, 1e-9),
                qps,
                deviation,
            ]
        )

    return TableResult(
        "Sharded scaling: parallel fit + estimate_batch vs. shard count",
        ["shards", "fit_sec", "fit_speedup", "estimate_qps", "mean_rel_dev"],
        rows_out,
        notes=(
            f"{rows}-row 2-D mixture, {queries}-query compiled plan, "
            f"adaptive KDE (lscv, {sample_size} sample points); gate: "
            f"4-shard fit ≥ {MIN_FIT_SPEEDUP_4_SHARDS}x the monolithic fit, "
            f"mean relative deviation ≤ {MAX_MEAN_RELATIVE_DEVIATION:.0%}"
        ),
    )


def test_sharded_scaling(report):
    kwargs = (
        dict(rows=12_000, queries=80, sample_size=1024, estimate_repeats=2)
        if SMOKE
        else {}
    )
    with bench_report("sharded_scaling") as rep:
        result = report(sharded_scaling, **kwargs)
        by_shards = {row[0]: row for row in result.rows}
        for shards, row in by_shards.items():
            rep.metric(f"shards_{shards}_fit_speedup", row[2])
            rep.metric(f"shards_{shards}_estimate_qps", row[3])
            rep.metric(f"shards_{shards}_mean_rel_dev", row[4])
        rep.note(f"smoke={SMOKE}")
        # Accuracy gate holds at every scale (deviation is data-, not
        # hardware-dependent).
        for shards in (2, 4):
            assert rep.gate(
                f"shards_{shards}_accuracy_le_5pct",
                by_shards[shards][4] <= MAX_MEAN_RELATIVE_DEVIATION,
                detail=by_shards[shards][4],
            ), (
                f"{shards}-shard estimates deviate "
                f"{by_shards[shards][4]:.4f} from monolithic"
            )
        speedup = by_shards[4][2]
        ok = rep.gate(
            "fit_speedup_4_shards_ge_1_5x",
            speedup >= MIN_FIT_SPEEDUP_4_SHARDS,
            detail=speedup,
            enforced=not SMOKE,
        )
        if not SMOKE:
            assert ok, (
                f"4-shard parallel fit speedup {speedup:.2f}x < "
                f"{MIN_FIT_SPEEDUP_4_SHARDS}x"
            )
