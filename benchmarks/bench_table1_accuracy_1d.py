"""Table 1 — 1-D accuracy of every estimator at equal space budget."""

from repro.experiments.suite import table1_accuracy_1d


def test_table1_accuracy_1d(report):
    result = report(table1_accuracy_1d, rows=20_000, queries=200, budget_bytes=4096)
    # Shape check: the streaming ADE must be competitive with the best
    # histogram on every 1-D dataset (within a factor of 3 of its error).
    by_dataset: dict[str, dict[str, float]] = {}
    for row in result.rows:
        by_dataset.setdefault(row[0], {})[row[1]] = row[2]
    for dataset, errors in by_dataset.items():
        best_histogram = min(errors["equiwidth"], errors["equidepth"])
        assert errors["ade_streaming"] <= best_histogram * 3 + 0.05, dataset
