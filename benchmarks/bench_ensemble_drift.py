"""Ensemble drift: the AddExp expert pool vs. every individual expert.

A fig5-style stream mixes *gradual* drift (the mixture centres orbit
continuously) with *sudden* jumps at two breakpoints — the regime where no
single synopsis wins: fast-decaying models track the rotation but waste data
in calm stretches, slow-decaying models win between jumps but lag badly after
one, and the samplers are noisy but unbiased.  Every expert configuration is
run standalone AND inside an :class:`~repro.ensemble.EnsembleEstimator`; at
each evaluation point all of them are scored against the same
recent-window ground truth first, and only then does the ensemble receive
that workload's true selectivities as feedback (no leakage into the score).

Acceptance gates (full configuration):

* ensemble mean relative error ≤ ``0.95 ×`` the best single expert, and
* strictly better than *every* expert overall.

The ensemble clears the bar three ways: AddExp reweighting follows whichever
expert the current drift phase favours, a small fixed-share term keeps
out-of-favour experts warm enough to take over within a few rounds of a
phase change, and the spawn lifecycle adds a fresh expert (warm-started from
the recent-row buffer) whenever the pool's own loss stays high — which is
exactly what happens right after a sudden jump.

Set ``BENCH_ENSEMBLE_SMOKE=1`` for the reduced CI smoke configuration (the
gates are recorded but not enforced — the tiny stream is too short for the
weights to converge reliably on shared hardware).
"""

from __future__ import annotations

import copy
import os

from repro.core.estimator import estimator_from_config
from repro.data.streams import rotating_drift_stream
from repro.engine.executor import evaluate_estimator
from repro.engine.table import Table
from repro.ensemble import EnsembleEstimator
from repro.ensemble.policy import AddExpPolicy
from repro.experiments.runner import TableResult
from repro.workload.generators import UniformWorkload

import numpy as np

from report import bench_report

SMOKE = os.environ.get("BENCH_ENSEMBLE_SMOKE") == "1"

#: Acceptance gate: ensemble error relative to the best single expert.
MAX_ERROR_VS_BEST_EXPERT = 0.95


def ensemble_drift(
    batches: int = 80,
    batch_size: int = 600,
    queries: int = 80,
    budget: int = 256,
    reference_window: int = 4000,
    evaluate_every: int = 1,
    seed: int = 11,
) -> TableResult:
    """Mean relative error of each expert and of the ensemble on mixed drift."""
    stream = rotating_drift_stream(
        dimensions=1,
        batch_size=batch_size,
        batches=batches,
        radius=1.0,
        revolutions=1.0,
        drift_at=(0.33, 0.66),
        shift=6.0,
        seed=seed,
    )
    columns = stream.column_names

    # Phase-complementary pool: a very-fast-decay ADE (half-life 400 rows)
    # that tracks rotation and recovers quickly after a jump but is noisy in
    # calm stretches, a slow ADE (half-life 8000 rows) that wins the calm
    # phases, and one decayed plus one uniform reservoir as unbiased (noisy)
    # counterweights.  No member dominates every round, which is what gives
    # the weighted mixture room to beat all of them.
    fast_decay = 0.5 ** (1.0 / 400)
    slow_decay = 0.5 ** (1.0 / 8000)
    expert_specs = [
        {"name": "streaming_ade", "max_kernels": budget, "decay": fast_decay, "seed": seed},
        {"name": "streaming_ade", "max_kernels": budget, "decay": slow_decay, "seed": seed + 1},
        {"name": "reservoir_sampling", "sample_size": budget, "decay": True, "seed": seed + 2},
        {"name": "reservoir_sampling", "sample_size": budget, "decay": False, "seed": seed + 3},
    ]
    expert_labels = ["ade_fast", "ade_slow", "reservoir_decayed", "reservoir_uniform"]

    standalone = [estimator_from_config(copy.deepcopy(s)) for s in expert_specs]
    ensemble = EnsembleEstimator(
        experts=copy.deepcopy(expert_specs),
        policy=AddExpPolicy(share=0.02),
        beta=0.1,
        spawn_threshold=0.25,
        max_experts=6,
        seed=seed,
    )
    for estimator in (*standalone, ensemble):
        estimator.start(columns)

    errors: dict[str, list[float]] = {label: [] for label in (*expert_labels, "ensemble")}
    window_rows: list[np.ndarray] = []
    rng = np.random.default_rng(seed + 7)
    evaluations = 0

    for index, batch in enumerate(stream):
        for estimator in (*standalone, ensemble):
            estimator.insert(batch)
        window_rows.append(batch)
        recent = np.vstack(window_rows)[-reference_window:]
        if index % evaluate_every != 0 or (index + 1) * batch_size < reference_window:
            continue
        evaluations += 1
        reference = Table.from_array("reference", recent, columns)
        workload = UniformWorkload(
            reference, volume_fraction=0.1, seed=int(rng.integers(0, 2**31))
        ).generate(queries)
        for label, estimator in zip((*expert_labels, "ensemble"), (*standalone, ensemble)):
            evaluation = evaluate_estimator(reference, estimator, workload, name=label)
            errors[label].append(evaluation.mean_relative_error())
        # Feedback strictly after scoring: the ensemble learns from this
        # workload only for *future* evaluation points.
        ensemble.observe(workload, reference.true_selectivities(workload))

    rows = [
        [label, float(np.mean(errors[label])), float(errors[label][-1]), int(est.memory_bytes())]
        for label, est in zip((*expert_labels, "ensemble"), (*standalone, ensemble))
    ]
    return TableResult(
        "Ensemble drift: AddExp expert pool vs. standalone experts",
        ["estimator", "rel_err_mean", "rel_err_final", "bytes"],
        rows,
        notes=(
            f"{batches} batches of {batch_size} tuples; rotation (1 rev, radius 1) "
            f"+ sudden jumps at 33%/66%; {evaluations} evaluation points of {queries} "
            f"queries against the last {reference_window} tuples; feedback after "
            f"scoring; {len(ensemble.spawn_history)} spawns "
            f"({len(ensemble.experts)} experts at end)"
        ),
    )


def test_ensemble_drift(report):
    kwargs = (
        dict(batches=24, batch_size=250, queries=30, budget=128, reference_window=1500)
        if SMOKE
        else {}
    )
    with bench_report("ensemble_drift", smoke=SMOKE) as rep:
        result = report(ensemble_drift, **kwargs)
        by_label = {row[0]: row for row in result.rows}
        expert_errors = {
            label: row[1] for label, row in by_label.items() if label != "ensemble"
        }
        ensemble_error = by_label["ensemble"][1]
        for label, row in by_label.items():
            rep.metric(f"{label}_rel_err_mean", row[1])
        best_label = min(expert_errors, key=expert_errors.get)
        best_error = expert_errors[best_label]
        rep.metric("best_expert", best_label)
        rep.metric("ensemble_vs_best_ratio", ensemble_error / max(best_error, 1e-12))
        rep.note(f"smoke={SMOKE}")

        ok_best = rep.gate(
            "ensemble_le_0_95x_best_expert",
            ensemble_error <= MAX_ERROR_VS_BEST_EXPERT * best_error,
            detail={"ensemble": ensemble_error, "best": best_error, "expert": best_label},
            enforced=not SMOKE,
        )
        ok_all = rep.gate(
            "ensemble_beats_every_expert",
            all(ensemble_error < err for err in expert_errors.values()),
            detail=expert_errors,
            enforced=not SMOKE,
        )
        if not SMOKE:
            assert ok_best, (
                f"ensemble {ensemble_error:.4f} not ≤ "
                f"{MAX_ERROR_VS_BEST_EXPERT} × best expert "
                f"{best_label}={best_error:.4f}"
            )
            assert ok_all, (
                f"ensemble {ensemble_error:.4f} does not beat every expert: "
                f"{expert_errors}"
            )
