"""Batch-path throughput: vectorized ``estimate_batch`` vs. the scalar loop.

For every estimator of the standard line-up this benchmark measures
queries/sec of the compiled batch path against a per-query ``estimate()``
loop on the same 10k-query workload, and records the ``queries_per_second``
reported by :class:`~repro.engine.executor.EvaluationResult` (which times the
batch path).  The KDE estimator — the paper's synopsis, at its Fig. 3 space
budget — must gain at least 5× from batching.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.histogram import EquiDepthHistogram
from repro.baselines.independence import IndependenceEstimator
from repro.baselines.multidim import GridHistogram
from repro.baselines.sampling import SamplingEstimator
from repro.baselines.wavelet import WaveletHistogram
from repro.core.adaptive import AdaptiveKDEEstimator
from repro.core.kde import KDESelectivityEstimator
from repro.core.streaming import StreamingADE
from repro.data.generators import gaussian_mixture_table
from repro.engine.executor import evaluate_estimator
from repro.experiments.runner import TableResult
from repro.workload.generators import UniformWorkload
from repro.workload.queries import compile_queries

from report import bench_report


def batch_throughput(
    rows: int = 40_000,
    queries: int = 10_000,
    scalar_sample: int = 500,
    seed: int = 0,
) -> TableResult:
    """Queries/sec of the batch path vs. the scalar loop, per estimator.

    The scalar loop is timed on ``scalar_sample`` queries and extrapolated —
    at 10k queries the full loop would dominate the benchmark's runtime,
    which is exactly the point of the batch API.
    """
    table = gaussian_mixture_table(rows, dimensions=2, components=4, separation=4.0, seed=seed)
    workload = UniformWorkload(table, volume_fraction=0.1, seed=seed + 1).generate(queries)

    # KDE-family synopses at the Fig. 3 space budget (4096 bytes, d=2).
    estimators = [
        ("kde", KDESelectivityEstimator(sample_size=128)),
        ("adaptive_kde", AdaptiveKDEEstimator(sample_size=128)),
        ("streaming_ade", StreamingADE(max_kernels=128)),
        ("equidepth", EquiDepthHistogram(buckets=64)),
        ("wavelet", WaveletHistogram(resolution=256, coefficients=32)),
        ("sampling", SamplingEstimator(sample_size=512)),
        ("grid", GridHistogram(cells_per_dim=16)),
        ("independence", IndependenceEstimator()),
    ]

    result = TableResult(
        "Batch throughput: estimate_batch vs. scalar estimate() loop",
        ["estimator", "batch_qps", "scalar_qps", "speedup", "eval_qps"],
        [],
        notes=(
            f"{rows} rows, d=2, {queries} compiled queries; scalar loop timed on "
            f"{scalar_sample} queries and extrapolated; eval_qps is "
            "EvaluationResult.queries_per_second"
        ),
    )
    for label, estimator in estimators:
        estimator.fit(table)
        plan = compile_queries(workload, estimator.columns)
        estimator.estimate_batch(plan)  # warm-up (first call pays lazy setup)

        start = time.perf_counter()
        batch = estimator.estimate_batch(plan)
        batch_seconds = time.perf_counter() - start

        start = time.perf_counter()
        scalar = np.array([estimator.estimate(q) for q in workload[:scalar_sample]])
        scalar_seconds = (time.perf_counter() - start) * (queries / scalar_sample)

        np.testing.assert_allclose(batch[:scalar_sample], scalar, rtol=0.0, atol=1e-12)
        evaluation = evaluate_estimator(table, estimator, plan, name=label)
        result.rows.append(
            [
                label,
                queries / batch_seconds,
                queries / scalar_seconds,
                scalar_seconds / batch_seconds,
                evaluation.queries_per_second,
            ]
        )
    return result


def test_batch_throughput(report):
    with bench_report("batch_throughput") as rep:
        result = report(batch_throughput)
        speedups = dict(zip(result.column("estimator"), result.column("speedup")))
        batch_qps = dict(zip(result.column("estimator"), result.column("batch_qps")))
        for label in speedups:
            rep.metric(f"{label}_batch_qps", batch_qps[label])
            rep.metric(f"{label}_speedup_vs_scalar", speedups[label])
        # Every estimator must gain from batching; the KDE synopsis (the
        # paper's estimator, at its Fig. 3 budget) must gain at least 5x.
        for label, speedup in speedups.items():
            assert rep.gate(
                f"{label}_gains_from_batching", speedup > 1.0, detail=speedup
            ), f"{label} lost throughput on the batch path"
        assert rep.gate(
            "kde_speedup_ge_5x", speedups["kde"] >= 5.0, detail=speedups["kde"]
        ), f"kde speedup {speedups['kde']:.1f}x < 5x"
        # The recorded EvaluationResult throughput is the batch path.
        eval_qps = dict(zip(result.column("estimator"), result.column("eval_qps")))
        for label, qps in eval_qps.items():
            assert qps > 0, label
