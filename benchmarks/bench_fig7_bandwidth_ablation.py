"""Fig. 7 — bandwidth-selection ablation."""

from repro.experiments.suite import fig7_bandwidth_ablation


def test_fig7_bandwidth_ablation(report):
    result = report(fig7_bandwidth_ablation, rows=20_000, queries=200, sample_size=512)
    errors = {row[0]: row[2] for row in result.rows}
    # Shape check: on multimodal data cross-validated bandwidths beat the
    # rules of thumb, which over-smooth.
    assert errors["lscv"] <= errors["scott"]
    assert errors["mlcv"] <= errors["silverman"]
