"""Table 4 — streaming maintenance cost vs. model budget."""

from repro.experiments.suite import table4_stream_cost


def test_table4_stream_cost(report):
    result = report(
        table4_stream_cost,
        stream_rows=30_000,
        batch_size=1000,
        budgets=(64, 128, 256),
        queries=100,
    )
    # The streaming ADE must sustain thousands of inserts per second at every
    # budget and its memory must grow with the budget.
    ade_rows = [row for row in result.rows if row[0] == "ade_streaming"]
    assert all(row[2] > 1000 for row in ade_rows)
    memories = [row[3] for row in ade_rows]
    assert memories == sorted(memories)
