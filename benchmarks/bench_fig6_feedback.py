"""Fig. 6 — query-feedback convergence."""

from repro.experiments.suite import fig6_feedback


def test_fig6_feedback(report):
    result = report(
        fig6_feedback,
        rows=20_000,
        feedback_steps=(0, 25, 50, 100, 200, 400),
        holdout_queries=120,
    )
    # Shape check: feedback reduces the hot-region error of the feedback ADE
    # relative to its own starting point, while the static baseline stays flat.
    feedback_series = result.series["feedback_ade"]
    static_series = result.series["static_kde"]
    assert feedback_series[-1] <= feedback_series[0]
    assert abs(static_series[-1] - static_series[0]) < 1e-9
