"""Fig. 3 — error vs. query volume (selectivity class)."""

from repro.experiments.suite import fig3_query_volume


def test_fig3_query_volume(report):
    result = report(
        fig3_query_volume,
        rows=20_000,
        queries=150,
        volumes=(0.001, 0.005, 0.02, 0.05, 0.1, 0.2),
    )
    # Shape check: the streaming ADE stays flat across selectivity classes
    # and never loses to the sampling or AVI-histogram baselines, whose
    # q-error grows with the queried volume on multimodal 2-D data.
    ade = result.series["ade_streaming"]
    sampling = result.series["sampling"]
    equidepth = result.series["equidepth"]
    for index in range(len(result.x_values)):
        assert ade[index] <= sampling[index] + 1e-9
        assert ade[index] <= equidepth[index] + 1e-9
    assert max(ade) < 2.0
