"""Query fast path: support-culled ``estimate_batch`` vs. the dense path.

The query-side fast path (:mod:`repro.core.fastpath`) must answer a
*selective* workload — small boxes over a fine-grained synopsis, the regime
the paper's cheap-synopsis promise lives in — at least **5x** faster than
the dense reference path, while deviating from it by at most **1e-9**
(the design budget is 1e-12; measured deviations are ~1e-16).  The dense
path stays reachable through :func:`repro.core.fastpath.fastpath_disabled`,
which is exactly how this benchmark times it.

Covered estimators: fixed KDE (explicit fine bandwidths), adaptive KDE, and
the streaming ADE at a production-sized kernel budget.  A wide (full-domain)
workload is reported alongside to show the fast path degrades gracefully —
it must never be slower than 0.8x dense there.

Set ``BENCH_FASTPATH_SMOKE=1`` for the reduced CI smoke configuration; the
speedup gates are skipped there (shared CI hardware) but the deviation gate
— pure numerics — must hold anywhere.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core.adaptive import AdaptiveKDEEstimator
from repro.core.fastpath import fastpath_disabled
from repro.core.kde import KDESelectivityEstimator
from repro.core.streaming import StreamingADE
from repro.data.generators import uniform_table
from repro.experiments.runner import TableResult
from repro.workload.generators import UniformWorkload
from repro.workload.queries import compile_queries

from report import bench_report

SMOKE = os.environ.get("BENCH_FASTPATH_SMOKE") == "1"


def _best_of(callable_, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def fastpath_speedup(
    rows: int = 30_000,
    kernels: int = 2_048,
    queries: int = 4_000,
    volume_fraction: float = 0.001,
    repeats: int = 3,
    seed: int = 0,
) -> TableResult:
    """Fast vs. dense `estimate_batch` wall time and max deviation per estimator.

    The selective workload draws ``queries`` boxes of ``volume_fraction`` of
    the domain volume; the KDE estimators use explicit fine bandwidths (1% of
    the domain width) so the synopsis actually resolves structure at the
    query scale — the regime support culling exists for.
    """
    table = uniform_table(rows=rows, dimensions=2, seed=seed)
    selective = UniformWorkload(
        table, volume_fraction=volume_fraction, seed=seed + 1
    ).generate(queries)
    selective_plan = compile_queries(selective, table.column_names)
    wide = UniformWorkload(table, volume_fraction=0.9, seed=seed + 2).generate(
        max(queries // 8, 16)
    )
    wide_plan = compile_queries(wide, table.column_names)

    bandwidths = [0.01, 0.01]
    estimators = [
        ("kde", KDESelectivityEstimator(sample_size=kernels, bandwidths=bandwidths)),
        (
            "adaptive_kde",
            AdaptiveKDEEstimator(sample_size=kernels, bandwidths=bandwidths),
        ),
        ("streaming_ade", StreamingADE(max_kernels=max(kernels // 2, 64))),
    ]

    result = TableResult(
        "Query fast path: support-culled vs. dense estimate_batch",
        [
            "estimator",
            "workload",
            "fast_qps",
            "dense_qps",
            "speedup",
            "max_abs_deviation",
        ],
        [],
        notes=(
            f"{rows} rows, d=2, {kernels}-kernel synopses; selective workload: "
            f"{queries} boxes at volume fraction {volume_fraction}; wide workload: "
            f"{len(wide_plan)} near-full-domain boxes; best of {repeats} runs"
        ),
    )
    for label, estimator in estimators:
        estimator.fit(table)
        for workload_label, plan in (("selective", selective_plan), ("wide", wide_plan)):
            estimator.estimate_batch(plan)  # warm-up: builds the support index
            fast_seconds = _best_of(lambda: estimator.estimate_batch(plan), repeats)
            fast = estimator.estimate_batch(plan)
            with fastpath_disabled():
                estimator.estimate_batch(plan)
                dense_seconds = _best_of(
                    lambda: estimator.estimate_batch(plan), repeats
                )
                dense = estimator.estimate_batch(plan)
            deviation = float(np.abs(fast - dense).max())
            result.rows.append(
                [
                    label,
                    workload_label,
                    len(plan) / fast_seconds,
                    len(plan) / dense_seconds,
                    dense_seconds / fast_seconds,
                    deviation,
                ]
            )
    return result


def test_fastpath_speedup(report):
    kwargs = (
        dict(rows=4_000, kernels=256, queries=400, repeats=1) if SMOKE else {}
    )
    with bench_report("estimate_fastpath") as rep:
        result = report(fastpath_speedup, **kwargs)
        rows = {(r[0], r[1]): r for r in result.rows}
        for (label, workload), row in rows.items():
            rep.metric(f"{label}_{workload}_speedup", row[4])
            rep.metric(f"{label}_{workload}_max_abs_deviation", row[5])
        rep.note(f"smoke={SMOKE}")
        # The deviation gate is pure numerics and holds on any hardware: the
        # fast path must match the dense path to 1e-9 (design budget 1e-12).
        for (label, workload), row in rows.items():
            assert rep.gate(
                f"{label}_{workload}_deviation_le_1e9", row[5] <= 1e-9, detail=row[5]
            ), f"{label}/{workload} deviates {row[5]:.2e} > 1e-9"
        # ≥5x on the selective workload for every kernel-family estimator;
        # skipped (recorded as non-enforced) in smoke mode.
        for label in ("kde", "adaptive_kde", "streaming_ade"):
            speedup = rows[(label, "selective")][4]
            ok = rep.gate(
                f"{label}_selective_speedup_ge_5x",
                speedup >= 5.0,
                detail=speedup,
                enforced=not SMOKE,
            )
            if not SMOKE:
                assert ok, f"{label} selective speedup {speedup:.1f}x < 5x"
        # Graceful degradation: wide boxes must not regress below 0.8x dense.
        for label in ("kde", "adaptive_kde", "streaming_ade"):
            speedup = rows[(label, "wide")][4]
            ok = rep.gate(
                f"{label}_wide_no_regression",
                speedup >= 0.8,
                detail=speedup,
                enforced=not SMOKE,
            )
            if not SMOKE:
                assert ok, f"{label} wide-workload slowdown {speedup:.2f}x < 0.8x"
