"""Snapshot round-trip: save + load cost and fidelity for every estimator.

Every registered estimator is fitted, saved to a single ``.npz`` snapshot,
loaded back, and compared: the loaded model's ``estimate_batch`` must match
the original to ``1e-12`` (the library's own round-trip tests assert bitwise
equality; the benchmark keeps the looser published gate), and the whole
save + load cycle must fit a fixed wall-clock budget per estimator.

The saved snapshot files are left under ``benchmarks/results/models/`` so CI
archives them alongside the rendered benchmark tables — a published artifact
of every estimator's on-disk format per build.

Set ``BENCH_SNAPSHOT_SMOKE=1`` for the reduced CI smoke configuration (the
time gate is skipped there; shared CI hardware says nothing about latency,
but fidelity must hold everywhere).
"""

from __future__ import annotations

import os
import pathlib
import time

import numpy as np

from repro.core.estimator import available_estimators, create_estimator
from repro.data.generators import gaussian_mixture_table
from repro.experiments.runner import TableResult
from repro.persist.snapshot import load_estimator
from repro.workload.generators import UniformWorkload
from repro.workload.queries import compile_queries

from report import bench_report

SMOKE = os.environ.get("BENCH_SNAPSHOT_SMOKE") == "1"

#: Wall-clock budget for one save + load cycle (generous: snapshots are a
#: few KB to a few MB of npz; regressions here mean accidental recompute).
TIME_BUDGET_SECONDS = 1.0

#: Estimate fidelity gate between the original and the loaded model.
ATOL = 1e-12

MODELS_DIR = pathlib.Path(__file__).parent / "results" / "models"

_FAST_KWARGS: dict[str, dict] = {
    "streaming_ade": {"max_kernels": 64},
    "grid": {"cells_per_dim": 8},
    "st_histogram": {"cells_per_dim": 8},
    "wavelet": {"resolution": 128, "coefficients": 24},
}


def snapshot_roundtrip(rows: int = 20_000, queries: int = 500, seed: int = 7) -> TableResult:
    """Save/load latency, snapshot size and estimate drift per estimator."""
    table = gaussian_mixture_table(
        rows=rows, dimensions=2, components=4, separation=4.0, seed=seed, name="bench"
    )
    workload = UniformWorkload(table, volume_fraction=0.15, seed=seed + 1).generate(queries)
    MODELS_DIR.mkdir(parents=True, exist_ok=True)

    result = TableResult(
        "Snapshot round-trip: save + load every registered estimator",
        ["estimator", "save_ms", "load_ms", "snapshot_bytes", "max_abs_diff"],
        [],
        notes=(
            f"{rows}-row 2-D mixture, {queries}-query workload; loaded-model "
            f"estimates must match the originals to {ATOL:g} and one save+load "
            f"cycle must finish within {TIME_BUDGET_SECONDS:.1f}s"
        ),
    )
    for name in available_estimators():
        estimator = create_estimator(name, **_FAST_KWARGS.get(name, {}))
        estimator.fit(table)
        plan = compile_queries(workload, estimator.columns)
        before = estimator.estimate_batch(plan)

        path = MODELS_DIR / f"{name}.npz"
        start = time.perf_counter()
        estimator.save(path)
        save_seconds = time.perf_counter() - start
        start = time.perf_counter()
        loaded = load_estimator(path)
        load_seconds = time.perf_counter() - start

        after = loaded.estimate_batch(plan)
        drift = float(np.max(np.abs(after - before))) if len(plan) else 0.0
        result.rows.append(
            [name, save_seconds * 1e3, load_seconds * 1e3, path.stat().st_size, drift]
        )
    return result


def test_snapshot_roundtrip(report):
    kwargs = dict(rows=4_000, queries=100) if SMOKE else {}
    with bench_report("snapshot_roundtrip") as rep:
        result = report(snapshot_roundtrip, **kwargs)
        rep.note(f"smoke={SMOKE}")
        for name, save_ms, load_ms, size, drift in result.rows:
            rep.metric(f"{name}_save_ms", save_ms)
            rep.metric(f"{name}_load_ms", load_ms)
            rep.metric(f"{name}_bytes", size)
            rep.metric(f"{name}_drift", drift)
        for name, save_ms, load_ms, _, drift in result.rows:
            assert rep.gate(f"{name}_fidelity_le_1e12", drift <= ATOL, detail=drift), (
                f"{name}: loaded estimates drift by {drift:g} > {ATOL:g}"
            )
            cycle = (save_ms + load_ms) / 1e3
            ok = rep.gate(
                f"{name}_cycle_within_budget",
                cycle <= TIME_BUDGET_SECONDS,
                detail=cycle,
                enforced=not SMOKE,
            )
            if not SMOKE:
                assert ok, (
                    f"{name}: save+load took {cycle:.2f}s > "
                    f"{TIME_BUDGET_SECONDS:.1f}s budget"
                )
