"""Table 3 — construction and estimation cost of every estimator."""

from repro.experiments.suite import table3_cost


def test_table3_cost(report):
    result = report(table3_cost, rows=50_000, queries=150, budget_bytes=8192, dimensions=3)
    # Every synopsis must answer well over a hundred queries per second and
    # build in bounded time.
    for row in result.rows:
        label, build_seconds, throughput, memory, _ = row
        assert throughput > 100, label
        assert build_seconds < 60, label
        assert memory > 0, label
