"""Ingestion throughput: chunked bulk insert vs. the per-tuple reference loop.

The bulk path of :class:`~repro.core.streaming.StreamingADE` must ingest a
100k-row sudden-drift stream at least 10x faster than the sequential
per-tuple loop (``insert_sequential``), while matching its accuracy on the
Fig. 5-style drift workload — mean relative error against the most recent
window of tuples, averaged over periodic checkpoints — within 5%.  The
streaming reservoir estimator is reported alongside as the
vectorized-vs-row-loop baseline of the sampling family.

Set ``BENCH_INGEST_SMOKE=1`` to run a tiny stream (CI smoke mode); the
throughput and accuracy gates are skipped there — a 5k-row stream on shared
CI hardware says nothing about either.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.baselines.sampling import ReservoirSamplingEstimator
from repro.core.streaming import StreamingADE
from repro.data.streams import sudden_drift_stream
from repro.engine.executor import evaluate_estimator
from repro.engine.table import Table
from repro.experiments.runner import TableResult
from repro.workload.generators import UniformWorkload

from report import bench_report

SMOKE = os.environ.get("BENCH_INGEST_SMOKE") == "1"


def ingest_throughput(
    rows: int = 100_000,
    batch_size: int = 1_000,
    max_kernels: int = 256,
    reference_window: int = 20_000,
    queries: int = 100,
    evaluate_every: int = 10,
    seed: int = 0,
) -> TableResult:
    """Rows/sec and Fig. 5-style drift accuracy of bulk vs. per-tuple ingestion.

    Only the ``insert`` calls (plus the closing ``flush``) are timed; the
    periodic evaluations against the most recent ``reference_window`` tuples
    are the accuracy probe, not maintenance work.
    """
    batches = max(rows // batch_size, 2)
    stream = sudden_drift_stream(
        dimensions=2, batch_size=batch_size, batches=batches, drift_at=(0.5,),
        shift=8.0, seed=seed,
    )
    columns = stream.column_names
    batches_list = list(stream)
    total_rows = sum(b.shape[0] for b in batches_list)
    decay = 0.5 ** (1.0 / reference_window)

    # Pre-build the per-checkpoint reference tables and workloads so every
    # driven estimator sees identical queries against identical truths.
    checkpoints: list[tuple[int, Table, list]] = []
    window: list[np.ndarray] = []
    rng = np.random.default_rng(seed + 7)
    for index, batch in enumerate(batches_list):
        window.append(batch)
        if index % evaluate_every != evaluate_every - 1:
            continue
        recent = np.vstack(window)[-reference_window:]
        reference = Table.from_array("recent", recent, columns)
        workload = UniformWorkload(
            reference, volume_fraction=0.15, seed=int(rng.integers(0, 2**31))
        ).generate(queries)
        checkpoints.append((index, reference, workload))

    result = TableResult(
        "Ingest throughput: chunked bulk insert vs. per-tuple loop",
        ["estimator", "path", "rows_per_second", "speedup_vs_sequential", "rel_err_mean"],
        [],
        notes=(
            f"{total_rows} streamed tuples, d=2, sudden drift at 50%; error is mean "
            f"relative error against the last {reference_window} tuples, averaged "
            f"over {len(checkpoints)} checkpoints"
        ),
    )

    def drive(estimator, insert) -> tuple[float, float]:
        estimator.start(columns)
        elapsed = 0.0
        errors: list[float] = []
        pending = iter(checkpoints)
        checkpoint = next(pending, None)
        for index, batch in enumerate(batches_list):
            start = time.perf_counter()
            insert(estimator, batch)
            elapsed += time.perf_counter() - start
            if checkpoint is not None and index == checkpoint[0]:
                start = time.perf_counter()
                estimator.flush()  # buffered maintenance bills to ingestion
                elapsed += time.perf_counter() - start
                _, reference, workload = checkpoint
                errors.append(
                    evaluate_estimator(reference, estimator, workload).mean_relative_error()
                )
                checkpoint = next(pending, None)
        return total_rows / max(elapsed, 1e-9), float(np.mean(errors))

    ade = lambda: StreamingADE(max_kernels=max_kernels, decay=decay)
    bulk_rps, bulk_err = drive(ade(), lambda e, b: e.insert(b))
    seq_rps, seq_err = drive(ade(), lambda e, b: e.insert_sequential(b))
    result.rows.append(["ade_streaming", "bulk", bulk_rps, bulk_rps / seq_rps, bulk_err])
    result.rows.append(["ade_streaming", "sequential", seq_rps, 1.0, seq_err])

    reservoir = lambda: ReservoirSamplingEstimator(sample_size=max_kernels, decay=True)
    res_bulk_rps, res_bulk_err = drive(reservoir(), lambda e, b: e.insert(b))

    def rowwise(estimator, batch) -> None:
        for row in batch:
            estimator.insert_row(row)

    res_row_rps, res_row_err = drive(reservoir(), rowwise)
    result.rows.append(
        ["reservoir_sampling", "bulk", res_bulk_rps, res_bulk_rps / res_row_rps, res_bulk_err]
    )
    result.rows.append(["reservoir_sampling", "row-loop", res_row_rps, 1.0, res_row_err])
    return result


def test_ingest_throughput(report):
    kwargs = (
        dict(rows=5_000, reference_window=2_000, queries=30, evaluate_every=2)
        if SMOKE
        else {}
    )
    with bench_report("ingest_throughput") as rep:
        result = report(ingest_throughput, **kwargs)
        rows = {(r[0], r[1]): r for r in result.rows}
        for (estimator, path), row in rows.items():
            rep.metric(f"{estimator}_{path.replace('-', '_')}_rows_per_second", row[2])
            rep.metric(f"{estimator}_{path.replace('-', '_')}_rel_err_mean", row[4])
        rep.note(f"smoke={SMOKE}")
        bulk = rows[("ade_streaming", "bulk")]
        sequential = rows[("ade_streaming", "sequential")]
        speedup = bulk[3]
        rep.gate("bulk_ingest_speedup_ge_10x", speedup >= 10.0, detail=speedup,
                 enforced=not SMOKE)
        accuracy_ok = bulk[4] <= sequential[4] * 1.05 + 1e-3
        rep.gate("bulk_accuracy_parity_5pct", accuracy_ok,
                 detail={"bulk": bulk[4], "sequential": sequential[4]},
                 enforced=not SMOKE)
        reservoir_ok = rows[("reservoir_sampling", "bulk")][3] >= 1.0
        rep.gate("reservoir_bulk_not_slower", reservoir_ok,
                 detail=rows[("reservoir_sampling", "bulk")][3], enforced=not SMOKE)
        if SMOKE:
            return
        assert speedup >= 10.0, f"bulk ingest speedup {speedup:.1f}x < 10x"
        # Accuracy parity: the bulk maintenance policy must not cost accuracy
        # on the drift workload (5% relative slack per acceptance criteria).
        assert accuracy_ok, (
            f"bulk rel err {bulk[4]:.4f} vs sequential {sequential[4]:.4f}"
        )
        # The vectorized reservoir must not be slower than its row loop.
        assert reservoir_ok
