"""Serving throughput: cached EstimatorServer vs. the bare estimator.

Two measurements on the same fitted model and compiled workload:

* **cached path** — repeated ``estimate_batch`` calls against an
  :class:`~repro.serve.EstimatorServer`, which answers warm repeats from the
  plan-keyed result cache.  The acceptance gate requires at least 2x the
  uncached throughput (in practice the gap is orders of magnitude — a cache
  hit is a dict lookup).
* **concurrent ingest-while-serve** — reader threads hammer the server while
  a writer thread keeps checking out a private copy, ingesting new rows and
  publishing fresh generations; reported as sustained reads/sec under live
  model swaps (no gate: thread scheduling on shared hardware is noisy).

Set ``BENCH_SERVE_SMOKE=1`` for the reduced CI smoke configuration.
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np

from repro.core.streaming import StreamingADE
from repro.data.generators import gaussian_mixture_table
from repro.experiments.runner import TableResult
from repro.serve import EstimatorServer
from repro.workload.generators import UniformWorkload
from repro.workload.queries import compile_queries

from report import bench_report

SMOKE = os.environ.get("BENCH_SERVE_SMOKE") == "1"

#: Acceptance gate: cached-batch throughput over the uncached path.
MIN_CACHED_SPEEDUP = 2.0


def serving_throughput(
    rows: int = 50_000,
    queries: int = 500,
    repeats: int = 50,
    readers: int = 4,
    serve_seconds: float = 1.0,
    seed: int = 7,
) -> TableResult:
    """Batch QPS of the cached server vs. the bare model, plus live-swap serving."""
    table = gaussian_mixture_table(
        rows=rows, dimensions=2, components=4, separation=4.0, seed=seed, name="bench"
    )
    model = StreamingADE(max_kernels=256).fit(table)
    workload = UniformWorkload(table, volume_fraction=0.15, seed=seed + 1).generate(queries)
    plan = compile_queries(workload, model.columns)

    # Uncached baseline: the bare estimator answers every repeat from scratch.
    model.estimate_batch(plan)  # warm-up (first call pays one-time setup)
    start = time.perf_counter()
    for _ in range(repeats):
        model.estimate_batch(plan)
    bare_seconds = time.perf_counter() - start
    bare_qps = repeats * len(plan) / max(bare_seconds, 1e-9)

    # Cached path: same repeats through the server (first call is the miss).
    server = EstimatorServer(model, cache_size=64)
    server.estimate_batch(plan)
    start = time.perf_counter()
    for _ in range(repeats):
        server.estimate_batch(plan)
    cached_seconds = time.perf_counter() - start
    cached_qps = repeats * len(plan) / max(cached_seconds, 1e-9)

    # Concurrent ingest-while-serve: readers vs. one publishing writer.
    stop = threading.Event()
    read_batches = [0] * readers
    publishes = [0]

    def reader(slot: int) -> None:
        while not stop.is_set():
            server.estimate_batch(plan)
            read_batches[slot] += 1

    def writer() -> None:
        rng = np.random.default_rng(seed + 2)
        while not stop.is_set():
            fresh = server.checkout()
            fresh.insert(rng.normal(0.0, 1.0, size=(1_000, 2)))
            fresh.flush()
            server.publish(fresh)
            publishes[0] += 1

    threads = [threading.Thread(target=reader, args=(i,)) for i in range(readers)] + [
        threading.Thread(target=writer)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    time.sleep(serve_seconds)
    stop.set()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    concurrent_qps = sum(read_batches) * len(plan) / max(elapsed, 1e-9)

    result = TableResult(
        "Serving throughput: cached server vs. bare estimator",
        ["path", "queries_per_sec", "speedup_vs_bare", "notes"],
        [
            ["bare estimate_batch", bare_qps, 1.0, f"{repeats} repeats"],
            ["server (warm cache)", cached_qps, cached_qps / bare_qps,
             f"hit rate {server.cache_info().hit_rate:.0%}"],
            ["server, concurrent", concurrent_qps, concurrent_qps / bare_qps,
             f"{readers} readers, {publishes[0]} live publishes"],
        ],
        notes=(
            f"{queries}-query compiled plan over a {rows}-row 2-D mixture; "
            f"gate: warm-cache throughput ≥ {MIN_CACHED_SPEEDUP:.0f}x bare"
        ),
    )
    return result


def test_serving_throughput(report):
    kwargs = (
        dict(rows=10_000, queries=100, repeats=10, readers=2, serve_seconds=0.3)
        if SMOKE
        else {}
    )
    with bench_report("serving_throughput") as rep:
        result = report(serving_throughput, **kwargs)
        rows = {r[0]: r for r in result.rows}
        for label, row in rows.items():
            slug = label.replace(" ", "_").replace("(", "").replace(")", "").replace(",", "")
            rep.metric(f"{slug}_qps", row[1])
        rep.note(f"smoke={SMOKE}")
        speedup = rows["server (warm cache)"][2]
        assert rep.gate(
            "warm_cache_speedup_ge_2x",
            speedup >= MIN_CACHED_SPEEDUP,
            detail=speedup,
        ), f"cached-batch speedup {speedup:.1f}x < {MIN_CACHED_SPEEDUP:.0f}x"
        # Liveness: the writer must have published while readers were served.
        assert rep.gate(
            "concurrent_reads_alive",
            rows["server, concurrent"][1] > 0,
            detail=rows["server, concurrent"][1],
        )
