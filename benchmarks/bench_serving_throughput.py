"""Serving throughput: cached EstimatorServer vs. the bare estimator.

Two measurements on the same fitted model and compiled workload:

* **cached path** — repeated ``estimate_batch`` calls against an
  :class:`~repro.serve.EstimatorServer`, which answers warm repeats from the
  plan-keyed result cache.  The acceptance gate requires at least 2x the
  uncached throughput (in practice the gap is orders of magnitude — a cache
  hit is a dict lookup).
* **concurrent ingest-while-serve** — reader threads hammer the server while
  a writer thread keeps checking out a private copy, ingesting new rows and
  publishing fresh generations; reported as sustained reads/sec under live
  model swaps (no gate: thread scheduling on shared hardware is noisy).

Set ``BENCH_SERVE_SMOKE=1`` for the reduced CI smoke configuration.
"""

from __future__ import annotations

import gc
import os
import statistics
import threading
import time

import numpy as np

from repro.core.streaming import StreamingADE
from repro.data.generators import gaussian_mixture_table
from repro.experiments.runner import TableResult
from repro.obs import MetricsRegistry, TelemetryCollector
from repro.serve import EstimatorServer
from repro.workload.generators import UniformWorkload
from repro.workload.queries import compile_queries

from report import bench_report

SMOKE = os.environ.get("BENCH_SERVE_SMOKE") == "1"

#: Acceptance gate: cached-batch throughput over the uncached path.
MIN_CACHED_SPEEDUP = 2.0

#: Acceptance gate: instrumented warm-cache throughput over uninstrumented.
MIN_TELEMETRY_RATIO = 0.95

#: Acceptance gate: instrumented throughput with a live background
#: TelemetryCollector sampling the registry, over uninstrumented.
MIN_COLLECTED_RATIO = 0.90

#: Sampling period of the collector during the overhead measurement — far
#: more aggressive than a production cadence, so the gate is conservative.
COLLECT_INTERVAL = 0.05


def telemetry_overhead(
    model: StreamingADE, plan, repeats: int, trials: int = 7
) -> tuple[float, float, float, float, float]:
    """Warm-cache QPS with and without an attached metrics registry.

    Interleaved paired trials: each trial times the same repeat loop on a
    plain server, an instrumented one (per-request latency histogram), an
    instrumented one also recording per-tenant labelled series, and the
    tenant-labelled loop again with a live background
    :class:`~repro.obs.TelemetryCollector` sampling the registry every
    ``COLLECT_INTERVAL`` seconds; the *minimum paired delta* between
    adjacent loops is taken as the instrumentation cost — the estimator that
    survives scheduler and frequency jitter far larger than the
    sub-microsecond delta under measurement.  Returns ``(plain_qps,
    instrumented_qps, instrumented/plain ratio, tenant-labelled ratio,
    collected ratio)``.
    """
    plain = EstimatorServer(model, cache_size=64)
    instrumented = EstimatorServer(model, cache_size=64, metrics=MetricsRegistry())
    plain.estimate_batch(plan)  # warm the cache on all variants
    instrumented.estimate_batch(plan)
    instrumented.estimate_batch(plan, tenant="bench")

    def loop(server: EstimatorServer, tenant: str | None = None) -> float:
        start = time.perf_counter()
        if tenant is None:
            for _ in range(repeats):
                server.estimate_batch(plan)
        else:
            for _ in range(repeats):
                server.estimate_batch(plan, tenant=tenant)
        return time.perf_counter() - start

    # Paired differencing: the instrumentation delta (sub-µs per call) is far
    # below this hardware's run-to-run jitter, so each trial compares
    # *adjacent* loops and the smallest non-negative paired delta is taken as
    # the intrinsic instrumentation cost — any scheduler preemption, gc pause
    # or frequency excursion only ever inflates a delta, never deflates all
    # of them, so the minimum is the estimate least polluted by interference.
    plain_times, deltas, tenant_deltas, collected_deltas = [], [], [], []
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(trials):
            t_plain = loop(plain)
            t_instrumented = loop(instrumented)
            t_tenant = loop(instrumented, tenant="bench")
            # Collector running only around its own loop: the paired delta
            # then includes the snapshot/diff work stealing cycles from the
            # request path, which is exactly the cost under test.
            collector = TelemetryCollector(
                instrumented.metrics, interval=COLLECT_INTERVAL
            ).start()
            try:
                t_collected = loop(instrumented, tenant="bench")
            finally:
                collector.stop(final_tick=False)
            plain_times.append(t_plain)
            deltas.append(t_instrumented - t_plain)
            tenant_deltas.append(t_tenant - t_plain)
            collected_deltas.append(t_collected - t_plain)
    finally:
        if gc_was_enabled:
            gc.enable()
    per_call_plain = statistics.median(plain_times) / repeats
    overhead = max(min(deltas) / repeats, 0.0)
    tenant_overhead = max(min(tenant_deltas) / repeats, 0.0)
    collected_overhead = max(min(collected_deltas) / repeats, 0.0)
    plain_qps = len(plan) / max(per_call_plain, 1e-12)
    instrumented_qps = len(plan) / max(per_call_plain + overhead, 1e-12)
    tenant_qps = len(plan) / max(per_call_plain + tenant_overhead, 1e-12)
    collected_qps = len(plan) / max(per_call_plain + collected_overhead, 1e-12)
    return (
        plain_qps,
        instrumented_qps,
        instrumented_qps / plain_qps,
        tenant_qps / plain_qps,
        collected_qps / plain_qps,
    )


def serving_throughput(
    rows: int = 50_000,
    queries: int = 500,
    repeats: int = 50,
    readers: int = 4,
    serve_seconds: float = 1.0,
    seed: int = 7,
) -> TableResult:
    """Batch QPS of the cached server vs. the bare model, plus live-swap serving."""
    table = gaussian_mixture_table(
        rows=rows, dimensions=2, components=4, separation=4.0, seed=seed, name="bench"
    )
    model = StreamingADE(max_kernels=256).fit(table)
    workload = UniformWorkload(table, volume_fraction=0.15, seed=seed + 1).generate(queries)
    plan = compile_queries(workload, model.columns)

    # Uncached baseline: the bare estimator answers every repeat from scratch.
    model.estimate_batch(plan)  # warm-up (first call pays one-time setup)
    start = time.perf_counter()
    for _ in range(repeats):
        model.estimate_batch(plan)
    bare_seconds = time.perf_counter() - start
    bare_qps = repeats * len(plan) / max(bare_seconds, 1e-9)

    # Cached path: same repeats through the server (first call is the miss).
    server = EstimatorServer(model, cache_size=64)
    server.estimate_batch(plan)
    start = time.perf_counter()
    for _ in range(repeats):
        server.estimate_batch(plan)
    cached_seconds = time.perf_counter() - start
    cached_qps = repeats * len(plan) / max(cached_seconds, 1e-9)

    # Telemetry overhead: the same warm-cache loop against an instrumented
    # server (per-request latency histogram; per-tenant series measured too).
    # More repeats than the headline loop: a sub-microsecond per-call delta
    # needs a longer window than cache-speedup measurement does.
    (
        plain_qps,
        instrumented_qps,
        telemetry_ratio,
        tenant_ratio,
        collected_ratio,
    ) = telemetry_overhead(model, plan, max(repeats, 200))

    # Concurrent ingest-while-serve: readers vs. one publishing writer.
    stop = threading.Event()
    read_batches = [0] * readers
    publishes = [0]

    def reader(slot: int) -> None:
        while not stop.is_set():
            server.estimate_batch(plan)
            read_batches[slot] += 1

    def writer() -> None:
        rng = np.random.default_rng(seed + 2)
        while not stop.is_set():
            fresh = server.checkout()
            fresh.insert(rng.normal(0.0, 1.0, size=(1_000, 2)))
            fresh.flush()
            server.publish(fresh)
            publishes[0] += 1

    threads = [threading.Thread(target=reader, args=(i,)) for i in range(readers)] + [
        threading.Thread(target=writer)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    time.sleep(serve_seconds)
    stop.set()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    concurrent_qps = sum(read_batches) * len(plan) / max(elapsed, 1e-9)

    result = TableResult(
        "Serving throughput: cached server vs. bare estimator",
        ["path", "queries_per_sec", "speedup_vs_bare", "notes"],
        [
            ["bare estimate_batch", bare_qps, 1.0, f"{repeats} repeats"],
            ["server (warm cache)", cached_qps, cached_qps / bare_qps,
             f"hit rate {server.cache_info().hit_rate:.0%}"],
            ["server, instrumented", instrumented_qps, telemetry_ratio,
             f"{telemetry_ratio:.3f}x of uninstrumented ({plain_qps:,.0f} qps); "
             f"{tenant_ratio:.3f}x with per-tenant labels"],
            ["server, instrumented+collected", plain_qps * collected_ratio,
             collected_ratio,
             f"{collected_ratio:.3f}x of uninstrumented with a live collector "
             f"sampling every {COLLECT_INTERVAL * 1000:.0f} ms"],
            ["server, concurrent", concurrent_qps, concurrent_qps / bare_qps,
             f"{readers} readers, {publishes[0]} live publishes"],
        ],
        notes=(
            f"{queries}-query compiled plan over a {rows}-row 2-D mixture; "
            f"gate: warm-cache throughput ≥ {MIN_CACHED_SPEEDUP:.0f}x bare"
        ),
    )
    return result


def test_serving_throughput(report):
    kwargs = (
        dict(rows=10_000, queries=100, repeats=10, readers=2, serve_seconds=0.3)
        if SMOKE
        else {}
    )
    with bench_report("serving_throughput") as rep:
        result = report(serving_throughput, **kwargs)
        rows = {r[0]: r for r in result.rows}
        for label, row in rows.items():
            slug = label.replace(" ", "_").replace("(", "").replace(")", "").replace(",", "")
            rep.metric(f"{slug}_qps", row[1])
        rep.note(f"smoke={SMOKE}")
        speedup = rows["server (warm cache)"][2]
        assert rep.gate(
            "warm_cache_speedup_ge_2x",
            speedup >= MIN_CACHED_SPEEDUP,
            detail=speedup,
        ), f"cached-batch speedup {speedup:.1f}x < {MIN_CACHED_SPEEDUP:.0f}x"
        # Telemetry must be near-free: instrumented warm-cache throughput
        # within 5% of the uninstrumented server (best-of-3, interleaved).
        ratio = rows["server, instrumented"][2]
        rep.metric("telemetry_overhead_ratio", ratio)
        assert rep.gate(
            "telemetry_overhead_ge_0_95",
            ratio >= MIN_TELEMETRY_RATIO,
            detail=ratio,
            enforced=not SMOKE,
        ) or SMOKE, f"instrumented/uninstrumented ratio {ratio:.3f} < {MIN_TELEMETRY_RATIO}"
        # A live collector sampling the registry must stay near-free too:
        # instrumented+collected throughput within 10% of uninstrumented.
        collected = rows["server, instrumented+collected"][2]
        rep.metric("collected_overhead_ratio", collected)
        assert rep.gate(
            "collected_overhead_ge_0_90",
            collected >= MIN_COLLECTED_RATIO,
            detail=collected,
            enforced=not SMOKE,
        ) or SMOKE, (
            f"instrumented+collected ratio {collected:.3f} < {MIN_COLLECTED_RATIO}"
        )
        # Liveness: the writer must have published while readers were served.
        assert rep.gate(
            "concurrent_reads_alive",
            rows["server, concurrent"][1] > 0,
            detail=rows["server, concurrent"][1],
        )
