"""Machine-readable benchmark reporting.

Every ``bench_*.py`` harness emits, alongside its rendered text table, one
``benchmarks/results/BENCH_<name>.json`` file holding the metrics it
measured and the pass/fail state of its acceptance gates — the
machine-readable perf trajectory that CI archives per run.  Usage::

    from report import bench_report

    def test_something(report):
        with bench_report("something") as rep:
            result = report(experiment)
            rep.metric("speedup", speedup)
            assert rep.gate("speedup_ge_5x", speedup >= 5.0), speedup

``gate`` records the outcome and returns it, so the test can still ``assert``
on it; the JSON file is written when the ``with`` block exits *even when the
assertion fails*, so a red gate is visible in the artifact, not just in the
pytest output.  Gates skipped in smoke mode should be recorded with
``enforced=False`` so the trajectory distinguishes "passed" from "not run".
"""

from __future__ import annotations

import json
import pathlib
import platform
import subprocess
from contextlib import contextmanager
from datetime import datetime, timezone
from time import perf_counter
from typing import Any, Iterator

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

__all__ = ["BenchReport", "bench_report", "RESULTS_DIR"]


def _numpy_version() -> str | None:
    """numpy's version string, or ``None`` when numpy is unavailable.

    Recorded in every report envelope: numeric drift between two archived
    runs is uninterpretable without knowing whether the kernel library
    changed underneath the benchmark.
    """
    try:
        import numpy
    except ImportError:  # pragma: no cover - numpy is a hard dep of the repo
        return None
    return numpy.__version__


def _git_sha() -> str | None:
    """The repo HEAD commit, or ``None`` outside a git checkout.

    Recorded in every envelope so an archived ``BENCH_*.json`` can be tied
    back to the exact code that produced it.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=pathlib.Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars and other numerics into plain JSON values."""
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)


class BenchReport:
    """Collects metrics and gate outcomes for one benchmark run."""

    def __init__(self, name: str, *, smoke: bool = False) -> None:
        self.name = str(name)
        self.smoke = bool(smoke)
        self.metrics: dict[str, Any] = {}
        self.gates: dict[str, dict[str, Any]] = {}
        self.notes: list[str] = []
        self.telemetry_snapshot: dict[str, Any] | None = None
        self.collector_info: dict[str, Any] | None = None
        self._started = perf_counter()

    def telemetry(self, registry: Any, collector: Any = None) -> None:
        """Attach a metrics-registry snapshot to the report envelope.

        ``registry`` is anything with a ``snapshot()`` method — a
        :class:`repro.obs.metrics.MetricsRegistry` — so a benchmark that
        instrumented its run ships the raw counter/histogram payload next to
        its derived metrics.  ``collector`` is an optional
        :class:`repro.obs.collector.TelemetryCollector` that sampled the
        run; its sampling ``interval`` and retained series/point counts are
        recorded under ``"collector"`` so the archived BENCH_*.json is
        self-describing about how its series were sampled.
        """
        self.telemetry_snapshot = registry.snapshot()
        if collector is not None:
            self.collector_info = {
                "interval_seconds": collector.interval,
                "series": len(collector.store.keys()),
                "points": len(collector.store),
                "capacity": collector.store.capacity,
            }

    def metric(self, key: str, value: Any) -> None:
        """Record one measured value (numbers, strings, flat lists/dicts)."""
        self.metrics[str(key)] = _jsonable(value)

    def note(self, text: str) -> None:
        """Attach a free-form annotation (configuration, smoke mode, ...)."""
        self.notes.append(str(text))

    def gate(
        self, key: str, passed: bool, *, detail: Any = None, enforced: bool = True
    ) -> bool:
        """Record an acceptance-gate outcome and return ``passed``.

        ``enforced=False`` marks a gate that was evaluated (or skipped) in a
        non-gating configuration — smoke mode on shared CI hardware — so the
        overall ``passed`` flag of the report ignores it.
        """
        self.gates[str(key)] = {
            "passed": bool(passed),
            "enforced": bool(enforced),
            "detail": _jsonable(detail),
        }
        return bool(passed)

    @property
    def passed(self) -> bool:
        """Whether every enforced gate passed (vacuously true without gates)."""
        return all(g["passed"] for g in self.gates.values() if g["enforced"])

    def write(self, directory: pathlib.Path | None = None) -> pathlib.Path:
        """Write ``BENCH_<name>.json`` under ``benchmarks/results/``."""
        directory = directory or RESULTS_DIR
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"BENCH_{self.name}.json"
        payload = {
            "name": self.name,
            "passed": self.passed,
            "smoke": self.smoke,
            "metrics": self.metrics,
            "gates": self.gates,
            "notes": self.notes,
            "python": platform.python_version(),
            "numpy": _numpy_version(),
            "git_sha": _git_sha(),
            "duration_seconds": round(perf_counter() - self._started, 6),
            "recorded_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        }
        if self.telemetry_snapshot is not None:
            payload["telemetry"] = self.telemetry_snapshot
        if self.collector_info is not None:
            payload["collector"] = self.collector_info
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return path


@contextmanager
def bench_report(name: str, *, smoke: bool = False) -> Iterator[BenchReport]:
    """Context manager: yield a :class:`BenchReport`, write it on exit.

    The file is written even when the block raises (a failed gate assertion
    must still leave its red record in the artifact).  ``smoke=True`` stamps
    the envelope so archived trajectories can filter out non-gating runs on
    shared CI hardware.
    """
    rep = BenchReport(name, smoke=smoke)
    try:
        yield rep
    finally:
        rep.write()
