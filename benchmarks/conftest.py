"""Shared fixtures for the benchmark harness.

Every benchmark module regenerates one table or figure of the evaluation by
calling the corresponding function in :mod:`repro.experiments.suite` through
pytest-benchmark.  Each experiment executes once per run (``rounds=1``) — the
interesting output is the experiment's table/series, not a timing
distribution of the whole experiment — and the rendered result is printed and
written to ``benchmarks/results/`` so that
``pytest benchmarks/ --benchmark-only`` leaves a complete, human-readable
record of every reproduced table and figure.

Scale note: the benchmark configurations are reduced relative to the
full-scale numbers recorded in EXPERIMENTS.md so the whole harness finishes
in a few minutes on a laptop; pass larger parameters to the suite functions
directly to reproduce the full-scale run.
"""

from __future__ import annotations

import pathlib
from typing import Callable

import pytest

from repro.experiments.runner import SeriesResult, TableResult

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture()
def report(benchmark, request) -> Callable[..., TableResult | SeriesResult]:
    """Run an experiment once under pytest-benchmark, print and persist its output."""

    def _run(experiment: Callable[..., TableResult | SeriesResult], **kwargs):
        result = benchmark.pedantic(lambda: experiment(**kwargs), rounds=1, iterations=1)
        rendered = result.render()
        print()
        print(rendered)
        RESULTS_DIR.mkdir(exist_ok=True)
        output_path = RESULTS_DIR / f"{request.node.name}.txt"
        output_path.write_text(rendered + "\n")
        return result

    return _run
