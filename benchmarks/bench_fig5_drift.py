"""Fig. 5 — streaming adaptivity under concept drift."""

from repro.experiments.suite import fig5_drift


def test_fig5_drift(report):
    result = report(
        fig5_drift,
        batches=60,
        batch_size=500,
        queries=60,
        budget=256,
        reference_window=4000,
        evaluate_every=5,
    )
    # Shape check: by the end of the stream (well after the drift point) the
    # decayed ADE has recovered and beats both the landmark model and the
    # static synopsis built from pre-drift data.
    assert result.series["ade_decayed"][-1] <= result.series["ade_landmark"][-1]
    assert result.series["ade_decayed"][-1] <= result.series["static_kde"][-1]
