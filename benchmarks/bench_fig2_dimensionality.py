"""Fig. 2 — error vs. dimensionality at a fixed space budget."""

from repro.experiments.suite import fig2_dimensionality


def test_fig2_dimensionality(report):
    result = report(fig2_dimensionality, rows=15_000, queries=120, max_dimensions=5)
    # Shape check: for correlated data at d >= 2 the kernel models beat the
    # independence baseline, and the gap does not close as d grows.
    for index, d in enumerate(result.x_values):
        if d < 2:
            continue
        assert result.series["ade_streaming"][index] < result.series["independence"][index]
        assert result.series["ade_adaptive"][index] < result.series["independence"][index]
