"""Typed predicate overhead: lowered categorical/string workloads vs. numeric.

The typed surface lowers IN sets and string prefixes onto the numeric
estimator core as disjoint code-range boxes, so a mixed workload pays for
dictionary lookups, run merging and the per-query box expansion that a pure
numeric workload never sees.  This benchmark quantifies that overhead on one
equi-depth synopsis over a mixed-type table:

* **throughput** (queries/sec through ``Catalog.estimate_batch``) of a pure
  numeric workload and of a mixed typed workload (intervals + IN sets +
  prefixes) at the same query count and dimensionality — the numeric baseline
  ranges over the *same four columns in code space*, so both workloads drive
  identical estimator work per column and the ratio isolates the typed
  surface itself (lowering + disjoint-box expansion).  The acceptance gate
  requires the mixed workload to reach ≥ 0.9x the numeric throughput;
* **accuracy** (mean absolute error vs. exact selectivities) of both
  workloads — lowering must not cost accuracy, so the typed error gate is
  enforced in every mode.

Set ``BENCH_TYPED_SMOKE=1`` for the reduced CI smoke configuration (the
throughput gate is reported but not enforced on shared hardware).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.baselines.histogram import EquiDepthHistogram
from repro.data.generators import mixed_type_table
from repro.engine.catalog import Catalog
from repro.experiments.runner import TableResult
from repro.workload.generators import TypedWorkload, UniformWorkload

from report import bench_report

SMOKE = os.environ.get("BENCH_TYPED_SMOKE") == "1"

#: Acceptance gate: mixed typed workload throughput vs. pure numeric.
MIN_THROUGHPUT_RATIO = 0.9

#: Accuracy gate: mean absolute error vs. exact selectivities.
MAX_MEAN_ABS_ERROR = 0.05


def typed_predicate_overhead(
    rows: int = 40_000,
    queries: int = 400,
    buckets: int = 32,
    estimate_repeats: int = 15,
    seed: int = 13,
) -> TableResult:
    """Throughput/accuracy table: numeric vs. mixed typed workloads."""
    table = mixed_type_table(rows, seed=seed)
    catalog = Catalog()
    catalog.add_table(table)
    columns = ["amount", "score", "region", "product"]
    catalog.attach_estimator(
        table.name, EquiDepthHistogram(buckets=buckets), columns=columns
    )

    # Same columns (code space), same per-query dimensionality: the numeric
    # baseline differs from the typed workload only in the predicate surface.
    numeric = UniformWorkload(
        table,
        attributes=columns,
        query_dimensions=2,
        volume_fraction=0.15,
        seed=seed + 1,
    ).generate(queries)
    typed = TypedWorkload(
        table, attributes=columns, query_dimensions=2, seed=seed + 2
    ).generate(queries)

    rows_out = []
    throughput = {}
    workloads = (("numeric", numeric), ("typed", typed))
    for label, workload in workloads:
        catalog.estimate_batch(table.name, workload)  # warm-up
    # Best-of-N per-batch timing, interleaved across workloads, so scheduler
    # noise and frequency scaling hit both paths alike.
    best = {label: float("inf") for label, _ in workloads}
    for _ in range(estimate_repeats):
        for label, workload in workloads:
            start = time.perf_counter()
            catalog.estimate_batch(table.name, workload)
            best[label] = min(best[label], time.perf_counter() - start)
    for label, workload in workloads:
        seconds = best[label]
        qps = len(workload) / max(seconds, 1e-9)
        throughput[label] = qps
        estimates = catalog.estimate_batch(table.name, workload)
        exact = table.true_selectivities(workload)
        mean_abs_error = float(np.mean(np.abs(estimates - exact)))
        rows_out.append([label, qps, seconds * 1e3, mean_abs_error])

    ratio = throughput["typed"] / max(throughput["numeric"], 1e-9)
    return TableResult(
        "Typed predicate overhead: lowered mixed workload vs. pure numeric",
        ["workload", "estimate_qps", "batch_ms", "mean_abs_error"],
        rows_out,
        notes=(
            f"{rows}-row mixed-type table, {queries} queries/workload, "
            f"equi-depth histogram ({buckets} buckets) over {len(columns)} "
            f"columns; typed/numeric throughput ratio {ratio:.2f} "
            f"(gate ≥ {MIN_THROUGHPUT_RATIO}), mean abs error gate ≤ "
            f"{MAX_MEAN_ABS_ERROR}"
        ),
    )


def test_typed_predicate_overhead(report):
    kwargs = (
        dict(rows=6_000, queries=60, estimate_repeats=2) if SMOKE else {}
    )
    with bench_report("typed_predicates", smoke=SMOKE) as rep:
        result = report(typed_predicate_overhead, **kwargs)
        by_workload = {row[0]: row for row in result.rows}
        for label, row in by_workload.items():
            rep.metric(f"{label}_estimate_qps", row[1])
            rep.metric(f"{label}_mean_abs_error", row[3])
        ratio = by_workload["typed"][1] / max(by_workload["numeric"][1], 1e-9)
        rep.metric("throughput_ratio", ratio)
        rep.note(f"smoke={SMOKE}")
        # Accuracy is data-, not hardware-dependent: enforced in every mode.
        for label in ("numeric", "typed"):
            error = by_workload[label][3]
            assert rep.gate(
                f"{label}_mean_abs_error_le_5pct",
                error <= MAX_MEAN_ABS_ERROR,
                detail=error,
            ), f"{label} workload mean abs error {error:.4f} above gate"
        ok = rep.gate(
            "typed_throughput_ge_0_9x_numeric",
            ratio >= MIN_THROUGHPUT_RATIO,
            detail=ratio,
            enforced=not SMOKE,
        )
        if not SMOKE:
            assert ok, (
                f"typed workload throughput ratio {ratio:.2f} < "
                f"{MIN_THROUGHPUT_RATIO}"
            )
